//! samoa-lint: the whole-stack static safety pass as a command-line tool.
//!
//! ```text
//! samoa-lint [--stack proto|defective] [--format text|json]
//!            [--deny error|warn|info] [--infer]
//! ```
//!
//! Runs every static analysis the runtime's strict constructors gate on —
//! the stack linter (`SA00x`), the Rule-2 admission-deadlock pass
//! (`SA040`, with its witness cycle in the message), and the conflict
//! matrix reachability pass (`SA05x`) — over a stack and reports the
//! merged diagnostics.
//!
//! * `--stack proto` (default) lints the paper's §3 group-communication
//!   stack from `samoa-proto`; `--stack defective` lints a small stack
//!   with deliberate mistakes, to demonstrate the error diagnostics.
//! * `--format json` emits one machine-readable JSON document on stdout
//!   (stable keys: `stack`, `clean`, `counts`, `diagnostics[]` with
//!   `code`/`severity`/`message` and optional `handler`/`protocol`/
//!   `event` anchors) — what CI archives as its lint artifact.
//! * `--deny <level>` sets the exit threshold: any diagnostic at or above
//!   the level makes the process exit 1 (default `error`).
//! * `--infer` (text mode) additionally prints the minimal isolation
//!   declaration the analyzer infers per external event.

use std::process::ExitCode;

use samoa::core::analysis::{
    analyze_deadlocks, infer_bounds, infer_m, infer_route, lint_stack, ConflictMatrix, Report,
    Severity,
};
use samoa::prelude::*;

/// Parsed command line.
struct Opts {
    stack: StackChoice,
    json: bool,
    deny: Severity,
    infer: bool,
}

enum StackChoice {
    Proto,
    Defective,
}

fn usage() -> ! {
    eprintln!(
        "usage: samoa-lint [--stack proto|defective] [--format text|json] \
         [--deny error|warn|info] [--infer]"
    );
    std::process::exit(2)
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        stack: StackChoice::Proto,
        json: false,
        deny: Severity::Error,
        infer: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| usage_missing(name));
        match arg.as_str() {
            "--stack" => {
                opts.stack = match value("--stack").as_str() {
                    "proto" => StackChoice::Proto,
                    "defective" => StackChoice::Defective,
                    _ => usage(),
                }
            }
            "--format" => {
                opts.json = match value("--format").as_str() {
                    "text" => false,
                    "json" => true,
                    _ => usage(),
                }
            }
            "--deny" => {
                opts.deny = match value("--deny").as_str() {
                    "error" => Severity::Error,
                    "warn" | "warning" => Severity::Warning,
                    "info" => Severity::Info,
                    _ => usage(),
                }
            }
            "--infer" => opts.infer = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    opts
}

fn usage_missing(name: &str) -> ! {
    eprintln!("samoa-lint: {name} needs a value");
    std::process::exit(2)
}

fn main() -> ExitCode {
    let opts = parse_args();
    match opts.stack {
        StackChoice::Proto => {
            // Timers stay off: the lint pass only needs the stack shape,
            // not a running cluster.
            let cfg = NodeConfig {
                enable_timers: false,
                ..NodeConfig::default()
            };
            let cluster = Cluster::new(3, NetConfig::fast(1), cfg);
            let node = cluster.node(0);
            let ev = node.events();
            let external = [
                ("RcData", ev.rc_data),
                ("RcAck", ev.rc_ack),
                ("FdBeat", ev.fd_beat),
                ("Bcast", ev.bcast),
                ("ABcast", ev.abcast),
                ("JoinLeave", ev.join_leave),
                ("RetransmitTick", ev.retransmit_tick),
                ("FdTick", ev.fd_tick),
            ];
            run("proto", node.runtime().stack(), &external, &opts)
        }
        StackChoice::Defective => {
            let mut b = StackBuilder::new();
            let parser = b.protocol("Parser");
            let _idle = b.protocol("Idle"); // SA003: no handlers
            let ingest = b.event("Ingest");
            let parsed = b.event("Parsed"); // SA001: never bound
            b.bind_with_triggers(ingest, parser, "parse", &[parsed], |_, _| Ok(()));
            let stack = b.build();
            run("defective", &stack, &[("Ingest", ingest)], &opts)
        }
    }
}

/// Run the merged static pass over one stack and report. Returns the
/// process exit code per the `--deny` threshold.
fn run(name: &str, stack: &Stack, external: &[(&str, EventType)], opts: &Opts) -> ExitCode {
    let events: Vec<EventType> = external.iter().map(|&(_, e)| e).collect();
    let mut report = lint_stack(stack, &events);
    report.merge(analyze_deadlocks(stack, &events));
    let (_, conflicts) = ConflictMatrix::analyze(stack, &events);
    report.merge(conflicts);

    if opts.json {
        println!("{}", to_json(name, stack, &report));
    } else {
        println!("== {name} stack ==");
        println!(
            "{} microprotocols, {} events, {} handlers, full trigger metadata: {}",
            stack.protocol_count(),
            stack.event_count(),
            stack.handler_count(),
            stack.has_full_trigger_metadata()
        );
        println!("\n{report}");
        if opts.infer {
            print_inferred(stack, external);
        }
    }

    let denied = report.diagnostics().iter().any(|d| d.severity >= opts.deny);
    if denied {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The minimal isolation declarations the analyzer infers per external
/// event — the original `samoa_lint` example's summary, behind `--infer`.
fn print_inferred(stack: &Stack, external: &[(&str, EventType)]) {
    println!("\ninferred minimal declarations per external event:");
    for &(name, e) in external {
        let m = infer_m(stack, e);
        let names: Vec<&str> = m.iter().map(|&p| stack.protocol_name(p)).collect();
        let (bounds, rep) = infer_bounds(stack, e);
        let bound_note = if rep.is_clean() {
            let parts: Vec<String> = bounds
                .iter()
                .map(|&(p, b)| format!("{}\u{2264}{b}", stack.protocol_name(p)))
                .collect();
            format!("bounds {}", parts.join(" "))
        } else {
            "bounds: cyclic, fallback".to_string()
        };
        let route = infer_route(stack, e);
        println!(
            "  {name:>14}: M = {{{}}}; {bound_note}; route touches {} handlers",
            names.join(", "),
            route.vertices().len()
        );
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The machine-readable form CI archives: everything the text report
/// carries, with anchors resolved to names.
fn to_json(name: &str, stack: &Stack, report: &Report) -> String {
    let mut diags = Vec::new();
    for d in report.diagnostics() {
        let mut fields = vec![
            format!("\"code\":\"{}\"", d.code),
            format!("\"severity\":\"{}\"", d.severity),
            format!("\"message\":\"{}\"", json_escape(&d.message)),
        ];
        if let Some(h) = d.handler {
            fields.push(format!(
                "\"handler\":\"{}\"",
                json_escape(stack.handler_name(h))
            ));
        }
        if let Some(p) = d.protocol {
            fields.push(format!(
                "\"protocol\":\"{}\"",
                json_escape(stack.protocol_name(p))
            ));
        }
        if let Some(e) = d.event {
            fields.push(format!(
                "\"event\":\"{}\"",
                json_escape(stack.event_name(e))
            ));
        }
        diags.push(format!("{{{}}}", fields.join(",")));
    }
    format!(
        "{{\"stack\":\"{}\",\"protocols\":{},\"events\":{},\"handlers\":{},\
         \"clean\":{},\"counts\":{{\"error\":{},\"warning\":{},\"info\":{}}},\
         \"diagnostics\":[{}]}}",
        json_escape(name),
        stack.protocol_count(),
        stack.event_count(),
        stack.handler_count(),
        report.is_clean(),
        report.count(Severity::Error),
        report.count(Severity::Warning),
        report.count(Severity::Info),
        diags.join(",")
    )
}
