//! # samoa — Synchronisation Augmented Microprotocol Approach
//!
//! A Rust reproduction of *“SAMOA: Framework for Synchronisation Augmented
//! Microprotocol Approach”* (Wojciechowski, Rütti, Schiper; IPDPS 2004):
//! a protocol-composition framework in which the handling of every external
//! event runs as an *isolated computation* — the runtime's versioning
//! concurrency control guarantees that concurrent computations are
//! equivalent to some serial execution, with no programmer-written locks.
//!
//! This meta-crate re-exports the workspace:
//!
//! * [`samoa_core`] — events, microprotocols, computations, and the
//!   three versioning algorithms (`VCAbasic`, `VCAbound`, `VCAroute`) plus
//!   the Appia-style serial, Cactus-style unsynchronised, and two-phase
//!   locking comparators.
//! * [`samoa_net`] — the simulated distributed substrate (sites,
//!   latency, loss, crashes, partitions).
//! * [`samoa_proto`] — the paper's §3 group-communication stack:
//!   RelComm, RelCast, failure detection, consensus, atomic broadcast,
//!   membership.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the reproduced evaluation.
//!
//! ```
//! use samoa::prelude::*;
//!
//! let mut b = StackBuilder::new();
//! let counter = b.protocol("Counter");
//! let bump = b.event("Bump");
//! let count = ProtocolState::new(counter, 0u64);
//! {
//!     let count = count.clone();
//!     b.bind(bump, counter, "on_bump", move |ctx, _| {
//!         count.with(ctx, |c| *c += 1);
//!         Ok(())
//!     });
//! }
//! let rt = Runtime::new(b.build());
//! let handles: Vec<_> = (0..8)
//!     .map(|_| rt.spawn_isolated(&[counter], move |ctx| ctx.trigger(bump, EventData::empty())))
//!     .collect();
//! for h in handles {
//!     h.join().unwrap();
//! }
//! assert_eq!(count.snapshot(), 8);
//! ```

pub use samoa_core as core;
pub use samoa_net as net;
pub use samoa_proto as proto;
pub use samoa_transport as transport;

/// One-stop imports for applications.
pub mod prelude {
    pub use samoa_core::prelude::*;
    pub use samoa_net::{
        NetConfig, NetHandle, SimNet, SiteId, TcpConfig, TcpMesh, TcpNet, Transport,
    };
    pub use samoa_proto::{
        Cluster, GroupView, KvReply, Node, NodeConfig, StackPolicy, TcpCluster, ViewOp,
    };
    pub use samoa_transport::{TransportConfig, TransportNet, TransportPolicy};
}
