//! Regression tests for the *shapes* of the reproduced experiments
//! (EXPERIMENTS.md): who wins, by roughly what factor, and where the
//! qualitative boundaries fall. Absolute numbers vary with the machine;
//! these assertions use generous margins.

use std::time::Duration;

use samoa_bench::gc::{abcast_run, view_race_run};
use samoa_bench::synth::{
    flat_stack, flat_workload, pipeline_stack, run_flat, run_pipeline, BenchPolicy, WorkKind,
};
use samoa_proto::StackPolicy;

/// E2: every isolating policy delivers all messages with agreement, and the
/// versioning overhead stays within a small factor of unsync.
#[test]
fn e2_shape_agreement_and_bounded_overhead() {
    let msgs = 12;
    let base = abcast_run(3, msgs, StackPolicy::Unsync, 5);
    assert_eq!(base.delivered, msgs);
    for policy in [StackPolicy::Serial, StackPolicy::Basic, StackPolicy::Route] {
        let o = abcast_run(3, msgs, policy, 5);
        assert!(o.agreement, "{policy:?} diverged");
        assert_eq!(o.delivered, msgs, "{policy:?} lost messages");
        // "Relatively low" overhead: well under an order of magnitude.
        assert!(
            o.wall < base.wall * 8 + Duration::from_millis(200),
            "{policy:?} overhead too high: {:?} vs {:?}",
            o.wall,
            base.wall
        );
    }
}

/// E3 shape: with coarse-grained I/O work and zero conflicts, VCAbasic
/// beats the Appia-style serial baseline clearly.
#[test]
fn e3_shape_versioning_beats_serial_on_coarse_grain() {
    let work = Duration::from_millis(1);
    let wl = flat_workload(8, 24, 1, 0.0, 3);
    let serial = {
        let stack = flat_stack(8, work, WorkKind::Io);
        run_flat(&stack, &wl, BenchPolicy::Serial, 4)
    };
    let basic = {
        let stack = flat_stack(8, work, WorkKind::Io);
        run_flat(&stack, &wl, BenchPolicy::Basic, 4)
    };
    assert!(
        basic.as_secs_f64() * 1.5 < serial.as_secs_f64(),
        "expected ≥1.5x: serial {serial:?}, basic {basic:?}"
    );
}

/// E4 shape: on a 4-stage pipeline with asynchronous hand-off, bound and
/// route clearly beat basic (early release pipelines the computations).
#[test]
fn e4_shape_bound_and_route_pipeline() {
    let stages = 4;
    let basic = {
        let stack = pipeline_stack(stages, Duration::from_millis(1), WorkKind::Io);
        run_pipeline(&stack, 12, BenchPolicy::Basic, 2)
    };
    for policy in [BenchPolicy::Bound, BenchPolicy::Route] {
        let stack = pipeline_stack(stages, Duration::from_millis(1), WorkKind::Io);
        let t = run_pipeline(&stack, 12, policy, 2);
        assert!(
            t.as_secs_f64() * 1.5 < basic.as_secs_f64(),
            "{policy:?} expected ≥1.5x over basic: {t:?} vs {basic:?}"
        );
    }
}

/// E5 shape: the §3 race is observable without isolation and impossible
/// with it.
#[test]
fn e5_shape_race_only_without_isolation() {
    let mut unsync_races = 0u64;
    for seed in 0..5 {
        unsync_races += view_race_run(StackPolicy::Unsync, seed, 6).stale_discards;
    }
    assert!(
        unsync_races > 0,
        "unsync never exhibited the §3 race in 5 trials"
    );
    for policy in [StackPolicy::Basic, StackPolicy::Serial] {
        for seed in 0..3 {
            let o = view_race_run(policy, seed, 6);
            assert_eq!(
                o.stale_discards, 0,
                "{policy:?} exhibited the race (seed {seed})"
            );
        }
    }
}

/// E6 shape: at zero conflicts versioning approaches unsync (within a small
/// factor) while serial pays the full sum of work.
#[test]
fn e6_shape_versioning_approaches_unsync_without_conflicts() {
    let work = Duration::from_millis(1);
    let wl = flat_workload(16, 24, 1, 0.0, 9);
    let run = |p: BenchPolicy| {
        let stack = flat_stack(16, work, WorkKind::Io);
        run_flat(&stack, &wl, p, 4)
    };
    let unsync = run(BenchPolicy::Unsync);
    let basic = run(BenchPolicy::Basic);
    let serial = run(BenchPolicy::Serial);
    assert!(
        basic.as_secs_f64() < unsync.as_secs_f64() * 6.0 + 0.05,
        "basic too far from unsync: {basic:?} vs {unsync:?}"
    );
    assert!(
        serial.as_secs_f64() > basic.as_secs_f64() * 1.5,
        "serial should be the floor: {serial:?} vs {basic:?}"
    );
}

/// E12-metrics shape: a metered fleet commits the same workload as an
/// unmetered one, snapshots a health report accounting for every apply,
/// and the unmetered run reports no health at all.
#[test]
fn e12_metrics_shape_metered_fleet_health_accounts_for_all_applies() {
    use samoa_bench::cluster::{kv_fleet_run, Backend, FleetConfig};

    let cfg = FleetConfig::new(Backend::Sim, 3, 2, 4, StackPolicy::Basic);
    let plain = kv_fleet_run(&cfg);
    let metered = kv_fleet_run(&cfg.clone().metered());
    assert!(plain.health.is_none(), "unmetered run grew a registry");
    assert_eq!(plain.committed, metered.committed);
    assert!(metered.converged, "metered fleet diverged");
    let health = metered.health.expect("metered fleet must snapshot health");
    for site in 0..3 {
        assert_eq!(
            health
                .metrics
                .counters
                .get(&format!("site{site}.kv.applies"))
                .copied(),
            Some(8),
            "site {site} apply counter wrong"
        );
    }
    // Transport counters ride along under the canonical names.
    assert!(health.to_json().contains("\"delivered\""));
}

/// E13 shape: across a seed sweep, trace-guided PCT needs no more
/// schedules in total than plain PCT to hit the §3 view-change race, and
/// both find it within budget on every seed.
#[test]
fn e13_shape_guided_pct_never_loses_to_plain_pct() {
    use samoa_check::{Explorer, ExplorerConfig, ScenarioPolicy, Strategy, ViewChangeScenario};

    let (mut pct_total, mut guided_total) = (0usize, 0usize);
    for seed in 1..=3 {
        let mut cfg = ExplorerConfig::new(500, Strategy::Pct { seed, depth: 2 });
        cfg.minimise = false;
        let pct = Explorer::explore(&ViewChangeScenario::new(ScenarioPolicy::Unsync, 9), &cfg)
            .violation
            .unwrap_or_else(|| panic!("plain PCT missed the race (seed {seed})"));
        cfg.strategy = Strategy::Guided { seed, depth: 2 };
        let guided =
            Explorer::explore(&ViewChangeScenario::traced(ScenarioPolicy::Unsync, 9), &cfg)
                .violation
                .unwrap_or_else(|| panic!("guided PCT missed the race (seed {seed})"));
        pct_total += pct.schedule_index + 1;
        guided_total += guided.schedule_index + 1;
    }
    assert!(
        guided_total <= pct_total,
        "guidance regressed: guided {guided_total} vs pct {pct_total} schedules"
    );
}
