//! Cross-crate integration tests through the `samoa` meta-crate's public
//! API: the framework, the simulated network, and the group-communication
//! stack working together.

use samoa::prelude::*;

#[test]
fn prelude_exposes_the_whole_surface() {
    // Core
    let mut b = StackBuilder::new();
    let p = b.protocol("P");
    let e = b.event("E");
    let state = ProtocolState::new(p, 0u64);
    {
        let state = state.clone();
        b.bind(e, p, "h", move |ctx, _| {
            state.with(ctx, |v| *v += 1);
            Ok(())
        });
    }
    let rt = Runtime::new(b.build());
    rt.isolated(&[p], |ctx| ctx.trigger(e, EventData::empty()))
        .unwrap();
    assert_eq!(state.snapshot(), 1);

    // Net
    let net = SimNet::new(2, NetConfig::fast(0));
    assert_eq!(net.sites(), vec![SiteId(0), SiteId(1)]);

    // Proto types
    let v = GroupView::of_first(3).apply(ViewOp::Leave, SiteId(2));
    assert_eq!(v.len(), 2);
}

#[test]
fn paper_walkthrough_fig1_to_stack() {
    // Fig. 1 semantics through the meta-crate...
    let mut b = StackBuilder::new();
    let p = b.protocol("P");
    let r = b.protocol("R");
    let a0 = b.event("a0");
    let a1 = b.event("a1");
    b.bind(a0, p, "P", move |ctx, ev| ctx.trigger(a1, ev.clone()));
    let hits = ProtocolState::new(r, 0u32);
    {
        let hits = hits.clone();
        b.bind(a1, r, "R", move |ctx, _| {
            hits.with(ctx, |h| *h += 1);
            Ok(())
        });
    }
    let rt = Runtime::with_config(b.build(), RuntimeConfig::recording());
    rt.isolated(&[p, r], |ctx| ctx.trigger(a0, EventData::empty()))
        .unwrap();
    assert_eq!(hits.snapshot(), 1);
    rt.check_isolation().unwrap();

    // ...and the §3 stack end to end.
    let cluster = Cluster::new(3, NetConfig::fast(1), NodeConfig::default());
    cluster.node(0).abcast("a");
    cluster.node(1).abcast("b");
    cluster.settle();
    let order = cluster.node(0).ab_delivered();
    assert_eq!(order.len(), 2);
    assert_eq!(cluster.node(2).ab_delivered(), order);
}

#[test]
fn all_policies_run_the_stack() {
    for policy in [
        StackPolicy::Unsync,
        StackPolicy::Serial,
        StackPolicy::Basic,
        StackPolicy::Bound,
        StackPolicy::Route,
        StackPolicy::TwoPhase,
    ] {
        let cluster = Cluster::new(3, NetConfig::fast(2), NodeConfig::with_policy(policy));
        cluster.node(0).rbcast("ping");
        cluster.settle();
        for i in 0..3 {
            assert_eq!(
                cluster.node(i).rb_delivered().len(),
                1,
                "{policy:?}: site {i} missed the broadcast"
            );
        }
    }
}
