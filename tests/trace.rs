//! Acceptance tests for the tracing layer (the `samoa_trace` example's
//! workload, asserted): on a staggered pipeline `VCAbasic` must show
//! admission-wait spans while `VCAroute` shows fewer and shorter ones, and
//! the exported Chrome `trace_event` JSON must round-trip through
//! `serde_json`.

use std::time::Duration;

use samoa::prelude::*;
use samoa_bench::synth::{pipeline_stack_with_sink, run_pipeline_staggered, BenchPolicy, WorkKind};
use samoa_core::ChromeTrace;

const STAGES: usize = 4;
const COMPS: usize = 6;
const STAGE_WORK: Duration = Duration::from_millis(3);
const STAGGER: Duration = Duration::from_millis(6);

/// Run the example's staggered pipeline workload under `policy` and drain
/// the trace. One computation spawns every `STAGGER`; a whole chain takes
/// `STAGES × STAGE_WORK`, so the basic construct (which holds stage 0 until
/// Rule 3) blocks every later spawn, while route (which releases stage 0
/// after one visit, well inside the stagger window) admits them instantly.
fn traced_run(policy: BenchPolicy) -> (Vec<TraceEvent>, Stack) {
    let sink = TraceBuffer::new();
    let stack = pipeline_stack_with_sink(STAGES, STAGE_WORK, WorkKind::Io, sink.clone());
    run_pipeline_staggered(&stack, COMPS, policy, STAGGER);
    (sink.drain(), stack.rt.stack().clone())
}

#[test]
fn basic_blocks_where_route_releases_and_chrome_json_round_trips() {
    let (basic_events, stack) = traced_run(BenchPolicy::Basic);
    let (route_events, _) = traced_run(BenchPolicy::Route);

    let basic = ContentionProfile::from_events(&basic_events, &stack);
    let route = ContentionProfile::from_events(&route_events, &stack);

    // VCAbasic serialises the staggered spawns at stage 0.
    let basic_waits: u64 = basic.protocols.iter().map(|p| p.waits).sum();
    let route_waits: u64 = route.protocols.iter().map(|p| p.waits).sum();
    assert!(
        basic_waits > 0,
        "staggered pipeline under vca-basic must produce admission waits"
    );
    assert!(
        route_waits < basic_waits,
        "vca-route must wait fewer times than vca-basic \
         (route {route_waits} vs basic {basic_waits})"
    );
    let basic_blocked: Duration = basic.protocols.iter().map(|p| p.wait_total).sum();
    let route_blocked: Duration = route.protocols.iter().map(|p| p.wait_total).sum();
    assert!(
        route_blocked < basic_blocked,
        "vca-route must block for less total time than vca-basic \
         ({route_blocked:?} vs {basic_blocked:?})"
    );
    // Route's Rule 4 actually fired; basic has no early-release mechanism.
    assert!(route.protocols.iter().any(|p| p.route_releases > 0));
    assert!(basic.protocols.iter().all(|p| p.route_releases == 0));

    // Export both runs into one comparative Chrome trace document.
    let mut chrome = ChromeTrace::new();
    chrome.add_process(1, "vca-basic", &basic_events, &stack);
    chrome.add_process(2, "vca-route", &route_events, &stack);
    let text = chrome.render();

    // The document parses, and the admission-wait spans of the profile are
    // visible per process.
    let doc = serde_json::from_str(&text).expect("chrome trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let wait_spans = |pid: u64| {
        events
            .iter()
            .filter(|e| {
                e.get("cat").and_then(|c| c.as_str()) == Some("admission-wait")
                    && e.get("pid").and_then(|p| p.as_u64()) == Some(pid)
            })
            .count() as u64
    };
    assert_eq!(wait_spans(1), basic_waits, "one span per recorded wait");
    assert_eq!(wait_spans(2), route_waits);
    // Wait spans name the computation that held the microprotocol. (A span
    // may rarely lack a blocker if the holder completed in the instant
    // between the failed admission check and the registry lookup, so this
    // asserts existence, not universality.)
    assert!(events
        .iter()
        .filter(|e| e.get("cat").and_then(|c| c.as_str()) == Some("admission-wait"))
        .any(|e| e.get("args").and_then(|a| a.get("blocked_by")).is_some()));

    // Round trip: serialize the parsed document and parse it again — the
    // values must be identical.
    let doc2 = serde_json::from_str(&serde_json::to_string(&doc)).expect("re-parse");
    assert_eq!(doc, doc2, "chrome trace must round-trip through serde_json");
}

#[test]
fn waiters_snapshot_is_empty_after_quiescence() {
    let sink = TraceBuffer::new();
    let stack = pipeline_stack_with_sink(STAGES, Duration::ZERO, WorkKind::Cpu, sink.clone());
    run_pipeline_staggered(&stack, 4, BenchPolicy::Basic, Duration::ZERO);
    let g = stack.rt.waiters();
    assert!(g.is_empty());
    assert!(!g.has_cycle());
}
