//! Offline drop-in replacement for the subset of `criterion` used by the
//! workspace benches: `benchmark_group` / `bench_with_input` /
//! `bench_function`, `Throughput`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `criterion` to this path crate. Measurement is deliberately
//! simple: one warm-up call, then `sample_size` timed iterations; the mean
//! wall-clock time (and derived throughput, when declared) is printed as a
//! plain-text line. No statistics, plots, or baselines.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver; one per `criterion_group!`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 100,
            throughput: None,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        report(&name, 100, None, &mut f);
        self
    }
}

/// A named group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration throughput so the report shows a rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        report(&label, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Run one benchmark with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        report(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// End the group (accepted for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Units processed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A benchmark label, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` label.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Label from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// Timing harness passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters: usize,
}

impl Bencher {
    /// Time `iters` calls of `f` (after one untimed warm-up call).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std_black_box(f());
        for _ in 0..self.iters {
            let t0 = Instant::now();
            std_black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn report(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters: sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let rate = throughput.map(|t| {
        let secs = mean.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => format!("  {:>12.0} elem/s", n as f64 / secs),
            Throughput::Bytes(n) => format!("  {:>12.0} B/s", n as f64 / secs),
        }
    });
    println!(
        "{label:<40} {mean:>12?}/iter ({} samples){}",
        b.samples.len(),
        rate.unwrap_or_default()
    );
}

/// Collect benchmark functions into a runner function named `$group`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(10).throughput(Throughput::Elements(4));
        let mut calls = 0usize;
        group.bench_with_input(BenchmarkId::new("case", 4), &4u32, |b, &n| {
            b.iter(|| {
                calls += 1;
                n * 2
            })
        });
        group.finish();
        // one warm-up + 10 timed samples
        assert_eq!(calls, 11);
    }

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("solo", |b| {
            b.iter(|| {
                ran = true;
            })
        });
        assert!(ran);
    }
}
