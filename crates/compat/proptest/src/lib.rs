//! Offline drop-in replacement for the subset of `proptest` used by this
//! workspace: the `proptest!` macro, composable [`Strategy`] values
//! (integer ranges, tuples, `collection::vec`, [`any`], [`Just`],
//! `prop_oneof!`, `prop_map`), and `prop_assert!`/`prop_assert_eq!`.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `proptest` to this path crate. Differences from real proptest:
//! **no shrinking** (a failing case reports its seed and case number
//! instead of a minimised input) and **deterministic seeding** derived from
//! the test's module path, so failures reproduce across runs.

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — strategies for collections.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};

    /// A strategy for `Vec`s whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// `proptest::sample` — strategies for sampling.
pub mod sample {
    /// An abstract index into a collection of (then-)unknown size; resolve
    /// with [`Index::index`].
    #[derive(Debug, Clone, Copy)]
    pub struct Index(pub(crate) u64);

    impl Index {
        /// Resolve to a concrete index uniformly below `len`.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl crate::strategy::Arbitrary for Index {
        fn arbitrary(rng: &mut crate::test_runner::TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

/// Everything the `proptest!` tests import.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Assert inside a `proptest!` body; failure fails the current case with
/// the formatted message (no panic unwinding through the runner).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!(
                "{} ({:?} != {:?})",
                format!($($fmt)*),
                l,
                r
            ));
        }
    }};
}

/// Choose uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define property tests: each `#[test] fn name(arg in strategy, ..) {..}`
/// becomes a test that runs the body over `config.cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let seed0 = $crate::test_runner::seed_for(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(seed0, case as u64);
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $crate::__proptest_bindings!(rng; $($params)*);
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "proptest {} failed at case {case} (seed {seed0:#x}): {msg}",
                        stringify!($name)
                    );
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bindings {
    ($rng:ident;) => {};
    ($rng:ident; mut $arg:ident in $strat:expr) => {
        let mut $arg = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident; mut $arg:ident in $strat:expr, $($rest:tt)*) => {
        let mut $arg = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bindings!($rng; $($rest)*);
    };
    ($rng:ident; $arg:ident in $strat:expr) => {
        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident; $arg:ident in $strat:expr, $($rest:tt)*) => {
        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bindings!($rng; $($rest)*);
    };
}
