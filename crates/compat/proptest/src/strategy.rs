//! Composable value-generation strategies (no shrinking).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type. Unlike real proptest there
/// is no value tree: `sample` draws a concrete value directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase for heterogeneous composition (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// Types with a canonical full-range strategy, produced by [`any`].
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (`any::<u32>()`, `any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as u128 - lo as u128 + 1).min(u64::MAX as u128);
                lo + rng.below(span as u64) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.clone().sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/0);
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
    (A/0, B/1, C/2, D/3, E/4);
    (A/0, B/1, C/2, D/3, E/4, F/5);
}

/// Type-erased strategy, as returned by [`Strategy::boxed`].
pub struct BoxedStrategy<V> {
    inner: Rc<dyn DynStrategy<V>>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> BoxedStrategy<V> {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.inner.sample_dyn(rng)
    }
}

trait DynStrategy<V> {
    fn sample_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// Uniform choice among boxed strategies; built by `prop_oneof!`.
#[derive(Clone)]
pub struct OneOf<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    /// Build from at least one arm.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> OneOf<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}
