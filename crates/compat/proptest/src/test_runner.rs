//! Deterministic case generation for the `proptest!` macro.

/// Per-test configuration; only `cases` is honoured by this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 256 cases, overridable via `PROPTEST_CASES` (same env knob as the
    /// real proptest crate) so CI can trade depth for wall-clock.
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .filter(|&c| c >= 1)
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Stable 64-bit hash of the test path (FNV-1a) — the per-test base seed,
/// so failures reproduce across runs and machines.
pub fn seed_for(test_path: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The generator handed to strategies: xoshiro256++ seeded from
/// (test seed, case index) via splitmix64.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Generator for one case of one test.
    pub fn for_case(seed: u64, case: u64) -> TestRng {
        let mut x = seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut next = move || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        out
    }

    /// Uniform integer below `span` (`span >= 1`), rejection-sampled to
    /// avoid modulo bias.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span >= 1);
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % span;
            }
        }
    }
}
