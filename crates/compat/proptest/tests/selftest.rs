//! Exercises the shim through its public macro surface, the same way the
//! workspace test suites use it.

use proptest::prelude::*;

fn arb_pair() -> impl Strategy<Value = (u8, bool)> {
    (0u8..16, any::<bool>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ranges_stay_in_bounds(x in 3u32..17, y in 0u64..=5) {
        prop_assert!((3..17).contains(&x));
        prop_assert!(y <= 5, "y out of range: {}", y);
    }

    #[test]
    fn tuples_and_vec(pair in arb_pair(), v in proptest::collection::vec(any::<u16>(), 2..9)) {
        prop_assert!(pair.0 < 16);
        prop_assert!((2..9).contains(&v.len()));
    }

    #[test]
    fn mut_binding_and_index(mut v in proptest::collection::vec(0u64..100, 1..20),
                             pos in any::<proptest::sample::Index>()) {
        v.push(7);
        let i = pos.index(v.len());
        prop_assert!(i < v.len());
    }

    #[test]
    fn oneof_and_map(tag in prop_oneof![
        Just(0u8),
        (1u8..4).prop_map(|x| x * 10),
        any::<bool>().prop_map(|b| if b { 100 } else { 200 }),
    ]) {
        prop_assert!(
            tag == 0 || (10..40).contains(&tag) || tag == 100 || tag == 200,
            "unexpected value {tag}"
        );
        prop_assert_eq!(tag, tag);
    }
}

mod nested {
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn nested_module_block(n in 1usize..5) {
            prop_assert!(n >= 1);
        }
    }
}

#[test]
fn failing_case_panics_with_seed() {
    let caught = std::panic::catch_unwind(|| {
        let config = proptest::test_runner::ProptestConfig::with_cases(8);
        let seed0 = proptest::test_runner::seed_for("selftest::doomed");
        for case in 0..config.cases {
            let mut rng = proptest::test_runner::TestRng::for_case(seed0, case as u64);
            let outcome: Result<(), String> = (|| {
                let x = proptest::strategy::Strategy::sample(&(0u8..10), &mut rng);
                proptest::prop_assert!(x > 100, "x was {}", x);
                Ok(())
            })();
            if let Err(msg) = outcome {
                panic!("proptest doomed failed at case {case} (seed {seed0:#x}): {msg}");
            }
        }
    });
    let msg = *caught
        .expect_err("property must fail")
        .downcast::<String>()
        .unwrap();
    assert!(msg.contains("seed"), "panic message lacks seed: {msg}");
    assert!(msg.contains("x was"), "panic message lacks detail: {msg}");
}

#[test]
fn deterministic_across_runs() {
    use proptest::strategy::Strategy;
    let seed = proptest::test_runner::seed_for("selftest::det");
    let strat = proptest::collection::vec(0u64..1000, 5..6);
    let mut a = proptest::test_runner::TestRng::for_case(seed, 3);
    let mut b = proptest::test_runner::TestRng::for_case(seed, 3);
    assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
}
