//! Offline drop-in for the `serde_json` API subset SAMOA uses.
//!
//! The workspace builds with no registry access, so — like the sibling
//! `parking_lot`/`bytes`/`proptest` shims — this crate re-implements just
//! what the repository needs: a self-describing [`Value`] tree,
//! [`from_str`] (a strict recursive-descent JSON parser), and serialisation
//! via [`std::fmt::Display`] / [`to_string`]. There is no serde data model
//! and no derive support; callers parse into `Value` and navigate with
//! [`Value::get`] / [`Value::pointer`]-style helpers.
//!
//! Parsing and re-serialising a document is lossless for everything the
//! tooling emits (objects, arrays, strings, bools, null, and numbers that
//! fit `f64`), which is what the trace round-trip tests rely on.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like `serde_json`'s arbitrary
    /// precision disabled default for untyped reads).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Keys are sorted (BTreeMap), which only affects
    /// re-serialisation order, not equality.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member access: `get("key")` on objects, `get(index)` via
    /// [`Value::idx`] on arrays. Returns `None` for missing members or
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Array element access; `None` out of range or for non-arrays.
    pub fn idx(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Array(v) => v.get(i),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The members if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64` if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64` if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Is this `null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// A parse error: what went wrong and the byte offset it went wrong at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for Error {}

/// Parse a complete JSON document. Trailing non-whitespace is an error, as
/// in `serde_json::from_str::<Value>`.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Serialise a value to its compact JSON text.
pub fn to_string(v: &Value) -> String {
    v.to_string()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("recursion depth exceeded"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                            // hex4 leaves pos past the digits; skip the
                            // shared `pos += 1` below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // encoding is already valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_at = |p: &Self| p.peek().is_some_and(|c| c.is_ascii_digit());
        if !digits_at(self) {
            return Err(self.err("expected digit"));
        }
        while digits_at(self) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits_at(self) {
                return Err(self.err("expected digit after '.'"));
            }
            while digits_at(self) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits_at(self) {
                return Err(self.err("expected exponent digit"));
            }
            while digits_at(self) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::String(s) => write_escaped(f, s),
            Value::Array(v) => {
                f.write_str("[")?;
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str("]")
            }
            Value::Object(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("false").unwrap(), Value::Bool(false));
        assert_eq!(from_str("42").unwrap(), Value::Number(42.0));
        assert_eq!(from_str("-2.5e2").unwrap(), Value::Number(-250.0));
        assert_eq!(from_str("\"hi\"").unwrap(), Value::String("hi".to_string()));
    }

    #[test]
    fn containers_and_nesting() {
        let v = from_str(r#"{"a": [1, {"b": null}, "x"], "c": true}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Bool(true)));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert!(arr[1].get("b").unwrap().is_null());
        assert_eq!(arr[2].as_str(), Some("x"));
    }

    #[test]
    fn string_escapes() {
        let v = from_str(r#""a\"b\\c\nd\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA\u{e9}"));
        // Surrogate pair: U+1F600.
        let v = from_str(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("{\"a\" 1}").is_err());
        assert!(from_str("nul").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("\"\\ud800\"").is_err(), "unpaired surrogate");
    }

    #[test]
    fn round_trip() {
        let src = r#"{"name": "wait P (\u2190 k2)", "ts": 12.5, "args": {"blocked_by": "k2"}, "list": [1, true, null, "x\n"]}"#;
        let v1 = from_str(src).unwrap();
        let text = to_string(&v1);
        let v2 = from_str(&text).unwrap();
        assert_eq!(v1, v2);
    }

    #[test]
    fn deep_nesting_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(from_str(&deep).is_err(), "must not overflow the stack");
    }
}
