//! Offline drop-in replacement for the subset of `rand` used by this
//! workspace: `StdRng::seed_from_u64`, `gen_range` over integer ranges,
//! `gen_bool`, and `gen::<f64>()`.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `rand` to this path crate. The generator is xoshiro256++
//! seeded via splitmix64 — deterministic for a given seed, which is all the
//! simulator and tests require (they always seed explicitly).

/// Integer-range abstraction for [`Rng::gen_range`]; implemented for
/// `Range` and `RangeInclusive` over the integer types the workspace uses.
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range using the given generator.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Core entropy source: 64 uniformly random bits per call.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Uniform sampling helpers layered over [`RngCore`] (the `rand::Rng`
/// extension-trait shape).
pub trait Rng: RngCore + Sized {
    /// Uniform sample from an integer range (`gen_range(0..n)`,
    /// `gen_range(0..=n)`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        gen_f64(self) < p
    }

    /// A uniform sample of type `T` (`f64` in `[0, 1)`, or any full-range
    /// integer type covered by [`Uniform`]).
    fn gen<T: Uniform>(&mut self) -> T {
        T::uniform(self)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Full-range uniform generation for [`Rng::gen`].
pub trait Uniform {
    /// Draw one uniform value.
    fn uniform(rng: &mut impl RngCore) -> Self;
}

fn gen_f64(rng: &mut impl RngCore) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Uniform for f64 {
    fn uniform(rng: &mut impl RngCore) -> f64 {
        gen_f64(rng)
    }
}

impl Uniform for bool {
    fn uniform(rng: &mut impl RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl Uniform for $t {
            fn uniform(rng: &mut impl RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types usable with [`Rng::gen_range`]. One blanket
/// `SampleRange<T> for Range<T>` impl (like the real crate) keeps literal
/// inference working: `v[rng.gen_range(0..n)]` unifies the literal with
/// `usize` instead of defaulting to `i32`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Lossless widening for span arithmetic.
    fn to_i128(self) -> i128;
    /// Narrow back after sampling (value is always in range).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> $t {
                v as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        let lo = self.start.to_i128();
        let span = (self.end.to_i128() - lo) as u128;
        T::from_i128(lo + uniform_below(rng, span) as i128)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty inclusive range in gen_range");
        let lo = lo.to_i128();
        let span = (hi.to_i128() - lo + 1) as u128;
        T::from_i128(lo + uniform_below(rng, span) as i128)
    }
}

/// Uniform integer below `span` (`span >= 1`), Lemire-style rejection to
/// avoid modulo bias.
fn uniform_below(rng: &mut dyn RngCore, span: u128) -> u64 {
    debug_assert!(span >= 1);
    if span == 0 || span > u64::MAX as u128 {
        return rng.next_u64();
    }
    let span = span as u64;
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Deterministic seeding (the only construction the workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Namespaced generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via splitmix64 — the workspace's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // splitmix64 expansion, per the xoshiro authors' guidance.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(0u64..=2);
            assert!(w <= 2);
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..1000).filter(|_| r.gen_bool(0.5)).count();
        assert!((300..700).contains(&hits), "suspicious bias: {hits}");
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
