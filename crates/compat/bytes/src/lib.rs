//! Offline drop-in replacement for the subset of the `bytes` crate used by
//! this workspace: a cheaply cloneable, sliceable byte buffer ([`Bytes`]), a
//! growable builder ([`BytesMut`]), and little-endian cursor traits
//! ([`Buf`], [`BufMut`]).
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `bytes` to this path crate. `Bytes` shares one allocation across
//! clones and slices (an `Arc<[u8]>` plus a window), like the real crate;
//! only the API surface the workspace exercises is provided.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer: a shared allocation plus a
/// `[start, end)` window.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Borrow a `'static` slice without copying.
    pub fn from_static(s: &'static [u8]) -> Bytes {
        // One copy into the Arc; the real crate avoids it, but behaviour is
        // identical and the workspace only uses this for tiny literals.
        Bytes::from(s.to_vec())
    }

    /// Copy a slice into a fresh buffer.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// Length of the visible window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Is the visible window empty?
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-window sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice {lo}..{hi} out of range {len}");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off and return the first `at` bytes, advancing `self` past
    /// them. Shares the allocation.
    ///
    /// # Panics
    ///
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(
            at <= self.len(),
            "split_to {at} out of range {}",
            self.len()
        );
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Copy the visible window out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self[..] == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self[..].iter()
    }
}

/// Growable byte builder; [`BytesMut::freeze`] converts to [`Bytes`]
/// without copying.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Nothing written yet?
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    /// Convert to an immutable [`Bytes`] (no copy).
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.data.len())
    }
}

/// Read cursor over a byte source (little-endian getters as used by the
/// workspace codecs). Getters panic when under-running, like the real
/// crate; callers bounds-check with [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance {n} past end {}", self.len());
        self.start += n;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Write cursor (little-endian putters as used by the workspace codecs).
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, s: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut out = BytesMut::with_capacity(16);
        out.put_u8(7);
        out.put_u16_le(0x0102);
        out.put_u32_le(0x03040506);
        out.put_u64_le(0x0708090a0b0c0d0e);
        out.put_slice(b"xy");
        let mut b = out.freeze();
        assert_eq!(b.len(), 17);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 0x0102);
        assert_eq!(b.get_u32_le(), 0x03040506);
        assert_eq!(b.get_u64_le(), 0x0708090a0b0c0d0e);
        assert_eq!(&b[..], b"xy");
    }

    #[test]
    fn slice_and_split_share_window() {
        let b = Bytes::from_static(b"hello world");
        let w = b.slice(6..);
        assert_eq!(&w[..], b"world");
        let mut rest = b.clone();
        let head = rest.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&rest[..], b" world");
        assert_eq!(b.len(), 11, "original untouched");
    }

    #[test]
    fn eq_and_ord_on_window_not_backing() {
        let a = Bytes::from_static(b"xab");
        let b = Bytes::from_static(b"yab");
        assert_eq!(a.slice(1..), b.slice(1..));
        assert!(a < b);
    }

    #[test]
    #[should_panic(expected = "split_to")]
    fn split_past_end_panics() {
        Bytes::from_static(b"ab").split_to(3);
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from_static(b"a\x00");
        assert_eq!(format!("{b:?}"), "b\"a\\x00\"");
    }
}
