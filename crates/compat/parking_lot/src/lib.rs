//! Offline drop-in replacement for the subset of `parking_lot` used by this
//! workspace, implemented over `std::sync` primitives.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `parking_lot` to this path crate. Semantics match parking_lot's
//! for the covered API: non-poisoning `Mutex`/`RwLock` (poison is swallowed:
//! a panicking critical section does not poison the lock for later users),
//! guards that borrow the lock, a `Condvar` that works with our guards, and
//! a `ReentrantMutex` keyed on thread id.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

// ---------------------------------------------------------------- Mutex ----

/// Non-poisoning mutex with the `parking_lot::Mutex` API subset.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a mutex.
    pub const fn new(t: T) -> Self {
        Mutex(std::sync::Mutex::new(t))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during wait")
    }
}

impl<T: std::fmt::Debug + ?Sized> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Mutex").finish()
    }
}

// -------------------------------------------------------------- Condvar ----

/// Result of a timed wait: did it time out?
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable compatible with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken during wait");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        let inner = guard.0.take().expect("guard taken during wait");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

// --------------------------------------------------------------- RwLock ----

/// Non-poisoning reader-writer lock with the `parking_lot::RwLock` subset.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a reader-writer lock.
    pub const fn new(t: T) -> Self {
        RwLock(std::sync::RwLock::new(t))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

// ------------------------------------------------------- ReentrantMutex ----

/// Recursive mutex: the owning thread may lock again without deadlocking.
///
/// Matches `parking_lot::ReentrantMutex`: the guard only grants shared
/// access (`Deref`), so interior mutability (e.g. `RefCell`) supplies
/// mutation, exactly as the real crate requires.
pub struct ReentrantMutex<T: ?Sized> {
    /// Thread id of the current owner (0 = unowned).
    owner: AtomicU64,
    /// Recursion depth of the owner.
    depth: AtomicUsize,
    lock: std::sync::Mutex<()>,
    cv: std::sync::Condvar,
    data: UnsafeCell<T>,
}

// Safety: access to `data` is serialised on the owning thread; `T` crossing
// threads needs the usual Send bound. No `Sync` requirement on `T` because
// only one thread at a time can observe `&T` (same contract as parking_lot).
unsafe impl<T: Send + ?Sized> Send for ReentrantMutex<T> {}
unsafe impl<T: Send + ?Sized> Sync for ReentrantMutex<T> {}

/// Guard returned by [`ReentrantMutex::lock`].
pub struct ReentrantMutexGuard<'a, T: ?Sized> {
    m: &'a ReentrantMutex<T>,
}

fn thread_id() -> u64 {
    // Stable `ThreadId::as_u64` is not const-stable to extract; hash the
    // debug formatting-free route instead: addr_of a thread-local.
    thread_local! {
        static MARKER: u8 = const { 0 };
    }
    MARKER.with(|m| m as *const u8 as u64)
}

impl<T> ReentrantMutex<T> {
    /// Create a reentrant mutex.
    pub const fn new(t: T) -> Self {
        ReentrantMutex {
            owner: AtomicU64::new(0),
            depth: AtomicUsize::new(0),
            lock: std::sync::Mutex::new(()),
            cv: std::sync::Condvar::new(),
            data: UnsafeCell::new(t),
        }
    }
}

impl<T: ?Sized> ReentrantMutex<T> {
    /// Acquire the mutex; recursive acquisition by the owner succeeds.
    pub fn lock(&self) -> ReentrantMutexGuard<'_, T> {
        let me = thread_id();
        if self.owner.load(Ordering::Acquire) == me {
            self.depth.fetch_add(1, Ordering::Relaxed);
            return ReentrantMutexGuard { m: self };
        }
        let mut g = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        while self.owner.load(Ordering::Acquire) != 0 {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        self.owner.store(me, Ordering::Release);
        self.depth.store(1, Ordering::Relaxed);
        ReentrantMutexGuard { m: self }
    }
}

impl<T: ?Sized> Deref for ReentrantMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: we hold the lock, so no other thread dereferences.
        unsafe { &*self.m.data.get() }
    }
}

impl<T: ?Sized> Drop for ReentrantMutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.m.depth.fetch_sub(1, Ordering::Relaxed) == 1 {
            let _g = self.m.lock.lock().unwrap_or_else(|e| e.into_inner());
            self.m.owner.store(0, Ordering::Release);
            self.m.cv.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn rwlock_shared_then_exclusive() {
        let l = RwLock::new(7);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 14);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn reentrant_same_thread() {
        let m = ReentrantMutex::new(std::cell::RefCell::new(0));
        let a = m.lock();
        let b = m.lock();
        *b.borrow_mut() += 1;
        drop(b);
        *a.borrow_mut() += 1;
        drop(a);
        assert_eq!(*m.lock().borrow(), 2);
    }

    #[test]
    fn reentrant_excludes_other_threads() {
        let m = Arc::new(ReentrantMutex::new(std::cell::RefCell::new(0)));
        let m2 = Arc::clone(&m);
        let g = m.lock();
        let t = std::thread::spawn(move || {
            let g = m2.lock();
            *g.borrow_mut() += 10;
        });
        std::thread::sleep(Duration::from_millis(10));
        *g.borrow_mut() += 1;
        drop(g);
        t.join().unwrap();
        assert_eq!(*m.lock().borrow(), 11);
    }
}
