//! Cross-site causal propagation under a controlled schedule: one KV `put`
//! on a hooked 3-site cluster must export as a single causally-linked tree
//! — every abcast delivery and KV apply traces back through the wire-level
//! context events (`CtxSend`/`CtxRecv`) to the originating client submit —
//! and the causal event set must be identical across two replays of the
//! same deterministic schedule.

use samoa_check::{Controller, PrefixDecider};
use samoa_core::{TraceBuffer, TraceKind};
use samoa_net::NetConfig;
use samoa_proto::{Cluster, NodeConfig, Observe, StackPolicy};

/// Project a cluster trace event to a timing-free descriptor (wait/service
/// times and delivery lag are wall-clock and excluded; the causal structure
/// is what must replay identically).
fn descriptor(kind: &TraceKind) -> Option<String> {
    match *kind {
        TraceKind::ClientSubmit { site, op } => Some(format!("submit s{site} op{op}")),
        TraceKind::CtxSend {
            from,
            to,
            origin,
            op,
            hop,
        } => Some(format!("ctx-send {from}->{to} o{origin}/{op} h{hop}")),
        TraceKind::CtxRecv {
            site,
            origin,
            op,
            hop,
        } => Some(format!("ctx-recv @{site} o{origin}/{op} h{hop}")),
        TraceKind::AbDeliver {
            site, origin, op, ..
        } => Some(format!("deliver @{site} o{origin}/{op}")),
        TraceKind::KvApply { site, origin, op } => Some(format!("apply @{site} o{origin}/{op}")),
        TraceKind::Retransmit { site, to, .. } => Some(format!("rtx s{site}->{to}")),
        TraceKind::ClusterViewChange { site, view_id, .. } => {
            Some(format!("view @{site} v{view_id}"))
        }
        _ => None,
    }
}

/// One fully controlled traced run: first-ready schedule, manual network,
/// one `put` from site 0, pumped to quiescence. Returns the cluster-level
/// trace events.
fn traced_put_run() -> Vec<TraceKind> {
    let ctrl = Controller::new(Box::new(PrefixDecider::new(Vec::new())), 500_000);
    ctrl.register_main();
    let sink = TraceBuffer::new();
    let cfg = NodeConfig {
        enable_timers: false,
        ..NodeConfig::with_policy(StackPolicy::Basic)
    };
    let cluster = Cluster::new_manual_observed(
        3,
        NetConfig::fast(11),
        cfg,
        Some(ctrl.clone()),
        Observe::traced(sink.clone()),
    );
    let _pending = cluster.node(0).kv_put("k".to_string(), "v".to_string());
    let mut idle_rounds = 0;
    for round in 0.. {
        assert!(round < 10_000, "cluster never applied the put");
        for n in cluster.nodes() {
            n.runtime().quiesce();
        }
        if cluster.net().pump_all() == 0 {
            idle_rounds += 1;
        } else {
            idle_rounds = 0;
        }
        if idle_rounds >= 2 && (0..3).all(|i| cluster.node(i).kv_applied() == 1) {
            break;
        }
    }
    let d0 = cluster.node(0).kv_digest();
    assert!(
        (1..3).all(|i| cluster.node(i).kv_digest() == d0),
        "replicas diverged under the controlled schedule"
    );
    let trace = ctrl.finish();
    assert!(!trace.deadlock, "controlled cluster wedged");
    assert!(!trace.runaway, "controlled cluster ran away");
    sink.drain().iter().map(|ev| ev.kind).collect()
}

#[test]
fn one_put_propagates_causally_to_every_site_and_replays() {
    let events = traced_put_run();

    let submits: Vec<(u16, u64)> = events
        .iter()
        .filter_map(|k| match *k {
            TraceKind::ClientSubmit { site, op } => Some((site, op)),
            _ => None,
        })
        .collect();
    assert_eq!(submits, vec![(0, 1)], "exactly one client submit at site 0");

    // Every abcast delivery's parent chain reaches the originating client
    // span: the (origin, op) pair matches a recorded submit, and non-origin
    // sites first saw the causal context arrive on the wire (CtxRecv).
    let delivers: Vec<(u16, u16, u64)> = events
        .iter()
        .filter_map(|k| match *k {
            TraceKind::AbDeliver {
                site, origin, op, ..
            } => Some((site, origin, op)),
            _ => None,
        })
        .collect();
    assert_eq!(delivers.len(), 3, "the put must deliver on all 3 sites");
    for &(site, origin, op) in &delivers {
        assert!(
            submits.contains(&(origin, op)),
            "delivery @{site} of ({origin},{op}) orphaned: no client submit"
        );
        if site != origin {
            assert!(
                events.iter().any(|k| matches!(
                    *k,
                    TraceKind::CtxRecv { site: s, origin: o, op: p, .. }
                        if s == site && o == origin && p == op
                )),
                "delivery @{site} has no wire-level CtxRecv parent"
            );
        }
    }
    assert_eq!(
        delivers.iter().filter(|&&(s, o, _)| s != o).count(),
        2,
        "two cross-site delivery spans expected"
    );

    // Every KV apply hangs off its site's delivery span.
    let applies: Vec<(u16, u16, u64)> = events
        .iter()
        .filter_map(|k| match *k {
            TraceKind::KvApply { site, origin, op } => Some((site, origin, op)),
            _ => None,
        })
        .collect();
    assert_eq!(applies.len(), 3, "the put must apply on all 3 sites");
    for t in &applies {
        assert!(
            delivers.contains(t),
            "apply {t:?} without a delivery parent"
        );
    }

    // And the wire hops that carried the context are themselves recorded.
    assert!(
        events.iter().any(|k| matches!(
            *k,
            TraceKind::CtxSend {
                origin: 0,
                op: 1,
                ..
            }
        )),
        "no CtxSend recorded for the put's causal context"
    );

    // Deterministic replay: the same controlled schedule yields the same
    // causal event set (timing-free projection; buffer shard order is not
    // part of the contract, so compare as sorted multisets).
    let replay = traced_put_run();
    let project = |evs: &[TraceKind]| -> Vec<String> {
        let mut v: Vec<String> = evs.iter().filter_map(descriptor).collect();
        v.sort();
        v
    };
    assert_eq!(
        project(&events),
        project(&replay),
        "two replays of the first-ready schedule diverged causally"
    );
}
