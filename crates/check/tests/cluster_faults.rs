//! Cluster-level fault exploration: DPOR over the combined schedule ×
//! fault space of the real proto stack (ISSUE 8's acceptance suite).
//!
//! * The bounded DPOR sweep of a hooked 3-site cluster with a fault budget
//!   of one crash + one drop is **deterministic**: two runs produce
//!   identical schedule counts and failure signatures.
//! * The injected ordering bug ([`ClusterScenario::with_ab_order_bug`])
//!   yields a minimised cluster-level witness that replays
//!   deterministically — byte-identical choices on a re-exploration and
//!   the same failure on every replay.

use samoa_check::{ClusterScenario, Explorer, ExplorerConfig, FaultBudget, Strategy};
use samoa_proto::StackPolicy;

fn scenario(budget: FaultBudget) -> ClusterScenario {
    ClusterScenario::new(3, StackPolicy::Basic, 7, budget)
}

#[test]
fn dpor_sweep_with_crash_and_drop_budget_is_deterministic() {
    let cfg = ExplorerConfig::new(12, Strategy::Dpor);
    let a = Explorer::sweep(&scenario(FaultBudget::crash_and_drop()), &cfg);
    let b = Explorer::sweep(&scenario(FaultBudget::crash_and_drop()), &cfg);
    assert_eq!(a.schedules_run, b.schedules_run);
    assert!(a.schedules_run > 1, "the budgeted space must branch");
    let sigs = |s: &samoa_check::Sweep| {
        s.failures
            .iter()
            .map(|w| w.failure.signature())
            .collect::<Vec<_>>()
    };
    assert_eq!(sigs(&a), sigs(&b));
    // The healthy stack survives every explored schedule and fault mix.
    assert_eq!(sigs(&a), Vec::<String>::new());
}

/// Pinned cluster-witness regression: a fixed seed *and* a fault budget.
/// The search over the combined schedule × fault space finds a witness for
/// the injected ordering bug, the same seed finds the byte-identical
/// choice trace again, and the witness replays to the same failure.
#[test]
fn pinned_witness_with_fault_budget_replays_byte_identically() {
    let cfg = ExplorerConfig::new(192, Strategy::Random { seed: 3 });
    let s = scenario(FaultBudget::crash_and_drop()).with_ab_order_bug();
    let witness = Explorer::explore(&s, &cfg)
        .violation
        .expect("ordering bug must surface within the budgeted space");
    let again = Explorer::explore(&s, &cfg)
        .violation
        .expect("the search is deterministic");
    assert_eq!(again.choices, witness.choices);
    assert_eq!(again.failure.signature(), witness.failure.signature());
    let replay = Explorer::replay(&s, &witness).expect("witness must replay");
    assert_eq!(replay.signature(), witness.failure.signature());
}

#[test]
fn ab_order_bug_yields_minimised_replayable_witness() {
    let cfg = ExplorerConfig::new(64, Strategy::Random { seed: 3 });
    let s = scenario(FaultBudget::none()).with_ab_order_bug();
    let got = Explorer::explore(&s, &cfg);
    let witness = got
        .violation
        .expect("arrival-order delivery must violate prefix agreement under some schedule");
    assert!(
        witness.failure.signature().contains("prefix agreement"),
        "unexpected failure: {:?}",
        witness.failure
    );
    // Pinned regression in the style of the OCC witness test: the same
    // seed finds the same witness, and it replays byte-identically.
    let again = Explorer::explore(&s, &cfg)
        .violation
        .expect("the search is deterministic");
    assert_eq!(again.choices, witness.choices);
    assert_eq!(again.schedule_index, witness.schedule_index);
    let replay1 = Explorer::replay(&s, &witness).expect("witness must replay");
    let replay2 = Explorer::replay(&s, &witness).expect("witness must replay twice");
    assert_eq!(replay1.signature(), witness.failure.signature());
    assert_eq!(replay2.signature(), witness.failure.signature());
}
