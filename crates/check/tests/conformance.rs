//! DPOR conformance: on every bounded scenario, the reduced search must
//! find *exactly* the failures exhaustive enumeration finds — no more, no
//! fewer — while running at most as many schedules. The reduction claim
//! itself (≤ 1/5 of exhaustive on a ≥ 10k-schedule space) is pinned by
//! `dpor_reduction_on_the_wide_diamond`.

use std::collections::BTreeSet;

use samoa_check::{
    ClusterScenario, DiamondScenario, DisjointClustersScenario, Explorer, ExplorerConfig, Failure,
    FaultBudget, OccScenario, Scenario, ScenarioPolicy, Strategy, Sweep, ViewChangeScenario,
};

fn signatures(sweep: &Sweep) -> BTreeSet<String> {
    sweep
        .failures
        .iter()
        .map(|w| w.failure.signature())
        .collect()
}

/// Sweep `scenario` to exhaustion under both strategies and demand
/// identical failure sets with DPOR running no more schedules. Returns
/// (exhaustive runs, dpor runs) for reduction assertions.
fn conforms(scenario: &dyn Scenario, budget: usize) -> (usize, usize) {
    let mut cfg = ExplorerConfig::new(budget, Strategy::Exhaustive);
    cfg.minimise = false;
    let ex = Explorer::sweep(scenario, &cfg);
    assert!(
        ex.exhausted,
        "{}: exhaustive budget {budget} too small ({} runs)",
        scenario.name(),
        ex.schedules_run
    );
    cfg.strategy = Strategy::Dpor;
    let dp = Explorer::sweep(scenario, &cfg);
    assert!(
        dp.exhausted,
        "{}: DPOR did not exhaust within the exhaustive budget ({} runs)",
        scenario.name(),
        dp.schedules_run
    );
    assert_eq!(
        signatures(&ex),
        signatures(&dp),
        "{}: DPOR failure set differs from exhaustive",
        scenario.name()
    );
    assert!(
        dp.schedules_run <= ex.schedules_run,
        "{}: DPOR ran more schedules ({}) than exhaustive ({})",
        scenario.name(),
        dp.schedules_run,
        ex.schedules_run
    );
    (ex.schedules_run, dp.schedules_run)
}

// Schedule-count ceilings measured at PR-5 (before the static-independence
// relation was wired into DPOR). Static pruning must never push a count
// *above* these: statically-independent pairs pruned from backtrack sets
// can only shrink the search.
const PR5_DIAMOND_UNSYNC: usize = 48;
const PR5_DIAMOND_VCA: usize = 35;
const PR5_VIEW_CHANGE_UNSYNC: usize = 23;
const PR5_OCC_TWO_WRITERS: usize = 55;

#[test]
fn diamond_conformance_buggy_and_isolating() {
    let (_, dp) = conforms(&DiamondScenario::new(ScenarioPolicy::Unsync), 1_000);
    assert!(
        dp <= PR5_DIAMOND_UNSYNC,
        "diamond/unsync DPOR count regressed past PR-5: {dp} > {PR5_DIAMOND_UNSYNC}"
    );
    let (_, dp) = conforms(&DiamondScenario::new(ScenarioPolicy::VcaBasic), 1_000);
    assert!(
        dp <= PR5_DIAMOND_VCA,
        "diamond/vca-basic DPOR count regressed past PR-5: {dp} > {PR5_DIAMOND_VCA}"
    );
    let (_, _) = conforms(&DiamondScenario::new(ScenarioPolicy::Serial), 1_000);
    let (_, _) = conforms(&DiamondScenario::new(ScenarioPolicy::TwoPhase), 1_000);
}

#[test]
fn view_change_conformance() {
    let (_, dp) = conforms(&ViewChangeScenario::new(ScenarioPolicy::Unsync, 7), 1_000);
    assert!(
        dp <= PR5_VIEW_CHANGE_UNSYNC,
        "view-change/unsync DPOR count regressed past PR-5: {dp} > {PR5_VIEW_CHANGE_UNSYNC}"
    );
    let (_, _) = conforms(&ViewChangeScenario::new(ScenarioPolicy::Serial, 7), 1_000);
}

#[test]
fn occ_conformance_two_writers() {
    // The buggy variant loses an update on some schedule; DPOR must find
    // the same (single) invariant signature.
    let (ex, dp) = conforms(&OccScenario::lost_update(2), 2_000);
    assert!(ex > 0 && dp > 0);
    assert!(
        dp <= PR5_OCC_TWO_WRITERS,
        "occ/lost-update DPOR count regressed past PR-5: {dp} > {PR5_OCC_TWO_WRITERS}"
    );
    // The correct variant survives every schedule — including every
    // rollback/retry interleaving — under both searches.
    let (_, dp) = conforms(&OccScenario::serialised(2), 2_000);
    assert!(
        dp <= PR5_OCC_TWO_WRITERS,
        "occ/serialised DPOR count regressed past PR-5: {dp} > {PR5_OCC_TWO_WRITERS}"
    );
}

/// The static-pruning invariant of the conflict-matrix → DPOR loop: on a
/// workload with two statically disjoint clusters (a VCAbasic diamond next
/// to an unrelated two-protocol chain), DPOR armed with the stack's
/// [`StaticIndependence`](samoa_check::StaticIndependence) relation finds
/// exactly the exhaustive failure set while the no-initiator fallback
/// demonstrably prunes statically independent threads.
#[test]
fn disjoint_clusters_static_pruning_conformance() {
    let scenario = DisjointClustersScenario::new(ScenarioPolicy::VcaBasic);
    let mut cfg = ExplorerConfig::new(40_000, Strategy::Exhaustive);
    cfg.minimise = false;
    let ex = Explorer::sweep(&scenario, &cfg);
    assert!(
        ex.exhausted,
        "exhaustive budget too small ({} runs)",
        ex.schedules_run
    );
    cfg.strategy = Strategy::Dpor;
    let dp = Explorer::sweep(&scenario, &cfg);
    assert!(
        dp.exhausted,
        "DPOR did not exhaust ({} runs)",
        dp.schedules_run
    );
    assert_eq!(
        signatures(&ex),
        signatures(&dp),
        "DPOR failure set differs from exhaustive"
    );
    assert!(
        dp.schedules_run * 10 <= ex.schedules_run,
        "static pruning lost its edge: {} DPOR runs vs {} exhaustive",
        dp.schedules_run,
        ex.schedules_run
    );
    assert!(
        dp.backtrack_pruned > 0,
        "the static relation never pruned a fallback candidate"
    );
    assert!(dp.backtrack_pruned <= dp.backtrack_candidates);

    // The buggy sibling: seeds are withheld for Unsync stacks (no admission
    // protocol to bound the future), so pruning must stay off — and the
    // isolation violation must still surface.
    let buggy = DisjointClustersScenario::new(ScenarioPolicy::Unsync);
    cfg.schedules = 60_000;
    let dp = Explorer::sweep(&buggy, &cfg);
    assert!(dp.exhausted, "buggy sweep did not exhaust");
    assert_eq!(dp.backtrack_pruned, 0, "unsync stacks must not be pruned");
    assert!(
        signatures(&dp).iter().any(|s| s.starts_with("isolation")),
        "unsync disjoint clusters must violate isolation"
    );
}

/// Fast-path conformance: the lock-free admission core (atomic
/// `VersionCell` + gate-bit Rule-1 sweep + sharded 2PL table) must be
/// *semantically invisible* to DPOR. These literal failure sets were
/// captured by the same sweeps on the pre-rewrite core (Mutex+Condvar
/// cells, global spawn lock) and are pinned byte-for-byte: any divergence
/// — a new signature, a lost signature, a changed victim set — means the
/// rewrite changed observable interleaving semantics, not just its cost.
/// Schedule counts are pinned too (pre-rewrite values; may only shrink).
#[test]
fn fast_path_failure_sets_byte_identical_to_pre_rewrite() {
    let iso12: BTreeSet<String> = ["isolation:[1, 2]".to_string()].into();
    let lost: BTreeSet<String> =
        ["invariant:lost update: 2 increments committed 1".to_string()].into();
    let none = BTreeSet::new();

    // (scenario, budget, pre-rewrite DPOR schedule count, pinned set)
    type Case<'a> = (Box<dyn Scenario>, usize, usize, &'a BTreeSet<String>);
    let cases: Vec<Case> = vec![
        (
            Box::new(DiamondScenario::new(ScenarioPolicy::Unsync)),
            1_000,
            48,
            &iso12,
        ),
        (
            Box::new(DiamondScenario::new(ScenarioPolicy::VcaBasic)),
            1_000,
            35,
            &none,
        ),
        (
            Box::new(ViewChangeScenario::new(ScenarioPolicy::Unsync, 7)),
            1_000,
            23,
            &iso12,
        ),
        (Box::new(OccScenario::lost_update(2)), 2_000, 55, &lost),
        (Box::new(OccScenario::serialised(2)), 2_000, 55, &none),
        (
            Box::new(DisjointClustersScenario::new(ScenarioPolicy::VcaBasic)),
            40_000,
            331,
            &none,
        ),
        (
            Box::new(DisjointClustersScenario::new(ScenarioPolicy::Unsync)),
            60_000,
            847,
            &iso12,
        ),
    ];
    for (scenario, budget, pre_rewrite_runs, pinned) in cases {
        let mut cfg = ExplorerConfig::new(budget, Strategy::Dpor);
        cfg.minimise = false;
        let dp = Explorer::sweep(scenario.as_ref(), &cfg);
        assert!(
            dp.exhausted,
            "{}: DPOR did not exhaust within {budget}",
            scenario.name()
        );
        assert_eq!(
            &signatures(&dp),
            pinned,
            "{}: failure set diverged from the pre-rewrite core",
            scenario.name()
        );
        assert!(
            dp.schedules_run <= pre_rewrite_runs,
            "{}: schedule count grew past the pre-rewrite core: {} > {pre_rewrite_runs}",
            scenario.name(),
            dp.schedules_run
        );
    }
}

/// The ISSUE acceptance bar: a diamond sized so exhaustive enumeration
/// explores ≥ 10 000 schedules, where DPOR must explore ≤ 1/5 as many and
/// still produce the identical violation set. Expensive (exhaustive alone
/// is > 100k runs), so ignored by default; CI runs it in release via
/// `--include-ignored`.
#[test]
#[ignore = "slow acceptance sweep; run in release via --include-ignored"]
fn dpor_reduction_on_the_wide_diamond() {
    let scenario = DiamondScenario::sized(ScenarioPolicy::Unsync, 3);
    let (ex, dp) = conforms(&scenario, 150_000);
    assert!(
        ex >= 10_000,
        "width-3 diamond space unexpectedly small: {ex} schedules"
    );
    assert!(
        dp * 5 <= ex,
        "DPOR reduction regressed: {dp} runs vs exhaustive {ex} (need ≤ 1/5)"
    );
}

/// OCC lost-update witness regression: the DPOR search deterministically
/// pins the same minimised witness every time, and that witness replays
/// to the same failure.
#[test]
fn occ_lost_update_witness_is_pinned() {
    let scenario = OccScenario::lost_update(2);
    let cfg = ExplorerConfig::new(2_000, Strategy::Dpor);
    let first = Explorer::explore(&scenario, &cfg)
        .violation
        .expect("DPOR must find the lost update");
    assert!(
        matches!(first.failure, Failure::Invariant(_)),
        "expected an invariant violation, got {}",
        first.failure
    );
    // Deterministic search: a second exploration finds the identical
    // minimised witness.
    let second = Explorer::explore(&scenario, &cfg)
        .violation
        .expect("second search must also find it");
    assert_eq!(first.choices, second.choices, "witness not deterministic");
    assert_eq!(first.failure, second.failure);
    assert_eq!(first.schedule_index, second.schedule_index);
    // And it replays: twice, to the same failure.
    let r1 = Explorer::replay(&scenario, &first).expect("witness must replay");
    let r2 = Explorer::replay(&scenario, &first).expect("witness must replay again");
    assert_eq!(r1, first.failure);
    assert_eq!(r1, r2);
}

/// With a **zero fault budget** the cluster explorer degenerates to pure
/// schedule exploration of a healthy stack — exactly the regime the
/// [`ViewChangeScenario`] family already pins. A bounded DPOR sweep of the
/// hooked 3-site cluster must report the same failure set (none) as the
/// clean view-change scenario: fault promotion must not manufacture
/// failures the schedule-only search would not see.
#[test]
fn cluster_zero_budget_conforms_to_view_change_family() {
    let cluster = ClusterScenario::new(3, samoa_proto::StackPolicy::Basic, 7, FaultBudget::none());
    let cfg = ExplorerConfig::new(8, Strategy::Dpor);
    let cl = Explorer::sweep(&cluster, &cfg);
    assert!(cl.schedules_run > 0);
    let vc = Explorer::sweep(
        &ViewChangeScenario::new(ScenarioPolicy::Serial, 7),
        &ExplorerConfig::new(1_000, Strategy::Dpor),
    );
    assert_eq!(
        signatures(&cl),
        signatures(&vc),
        "zero-budget cluster sweep diverged from the view-change family"
    );
    assert_eq!(signatures(&cl), BTreeSet::new());
}

/// The correct OCC variant's retry bound (the livelock probe) holds on
/// every schedule: exhaustive search certifies it at 2 writers.
#[test]
fn occ_serialised_never_livelocks() {
    let got = Explorer::explore(
        &OccScenario::serialised(2),
        &ExplorerConfig::new(2_000, Strategy::Exhaustive),
    );
    assert!(
        got.exhausted,
        "space not exhausted in {}",
        got.schedules_run
    );
    assert!(
        got.violation.is_none(),
        "unexpected failure: {}",
        got.violation.unwrap()
    );
}

/// Witness minimisation memoises replays on the controller's effective
/// decision log: minimising a diamond witness must replay the scenario
/// strictly fewer times than the un-memoised bound (one run per deletion
/// candidate), and the result must still fail.
#[test]
fn minimisation_replays_fewer_runs_than_candidates() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Wraps a scenario, counting runs.
    struct Counting<S> {
        inner: S,
        runs: Arc<AtomicUsize>,
    }
    impl<S: Scenario> Scenario for Counting<S> {
        fn name(&self) -> &'static str {
            self.inner.name()
        }
        fn run(&self, hook: Arc<dyn samoa_core::SchedHook>) -> samoa_check::RunReport {
            self.runs.fetch_add(1, Ordering::Relaxed);
            self.inner.run(hook)
        }
    }

    // First: same seed with minimisation off, to learn the raw witness
    // length. Greedy deletion tries one candidate per index of that
    // trace, so an un-memoised minimiser replays exactly that many times.
    let raw_len = {
        let mut cfg = ExplorerConfig::new(500, Strategy::Random { seed: 3 });
        cfg.minimise = false;
        Explorer::explore(&DiamondScenario::new(ScenarioPolicy::Unsync), &cfg)
            .violation
            .expect("unsync diamond must fail")
            .choices
            .len()
    };

    let runs = Arc::new(AtomicUsize::new(0));
    let scenario = Counting {
        inner: DiamondScenario::new(ScenarioPolicy::Unsync),
        runs: Arc::clone(&runs),
    };
    // Same walk with minimisation on (the default).
    let cfg = ExplorerConfig::new(500, Strategy::Random { seed: 3 });
    let got = Explorer::explore(&scenario, &cfg);
    let witness = got.violation.expect("unsync diamond must fail");
    let minimisation_replays = runs.load(Ordering::Relaxed) - got.schedules_run;
    assert!(
        Explorer::replay(&scenario, &witness).is_some(),
        "minimised witness must still fail"
    );
    assert!(
        minimisation_replays > 0,
        "minimisation did not run at all — test is vacuous"
    );
    assert!(witness.choices.len() < raw_len, "nothing was shrunk");
    // The memoisation claim: candidates settled by the canonical /
    // effective-decision-log cache are not replayed, so minimisation
    // replays strictly fewer schedules than the one-per-candidate bound
    // an un-memoised greedy pass would pay.
    assert!(
        minimisation_replays < raw_len,
        "memoisation regressed: {minimisation_replays} replays for a \
         {raw_len}-choice trace (un-memoised bound)"
    );
}
