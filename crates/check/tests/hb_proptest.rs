//! Property tests for the DPOR happens-before relation over *real*
//! controller traces: it must be a strict partial order that refines the
//! per-resource (and per-thread) total orders of the replayed schedule,
//! and the trace itself must be deterministic under replay.

use std::sync::Arc;

use proptest::prelude::*;
use samoa_check::{
    dpor, Controller, DiamondScenario, HappensBefore, OccScenario, PrefixDecider, RandomDecider,
    Scenario, ScenarioPolicy, ScheduleTrace, StepRecord, ViewChangeScenario,
};
use samoa_core::sched::SchedResource;

/// Run `scenario` once under a fresh controller driven by `decider`.
fn trace_of(scenario: &dyn Scenario, decider: Box<dyn samoa_check::Decider>) -> ScheduleTrace {
    let ctrl = Controller::new(decider, 50_000);
    ctrl.register_main();
    let hook: Arc<dyn samoa_core::SchedHook> = ctrl.clone();
    let _report = scenario.run(hook);
    ctrl.finish()
}

fn scenario_for(pick: u8) -> Box<dyn Scenario> {
    match pick % 4 {
        0 => Box::new(DiamondScenario::new(ScenarioPolicy::Unsync)),
        1 => Box::new(DiamondScenario::new(ScenarioPolicy::Serial)),
        2 => Box::new(ViewChangeScenario::new(ScenarioPolicy::Unsync, 7)),
        _ => Box::new(OccScenario::lost_update(2)),
    }
}

/// The segment-level units the relation is computed over: one per
/// recorded decision, carrying the chosen thread and aggregate footprint.
fn units_of(records: &[StepRecord]) -> Vec<(u32, Vec<SchedResource>)> {
    records.iter().map(|r| (r.chosen, r.footprint())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Happens-before over a real trace is a strict partial order:
    /// it only points forward in the trace (which gives irreflexivity
    /// and antisymmetry for free) and is transitively closed.
    #[test]
    fn happens_before_is_a_strict_partial_order(seed in 0u64..1_000, pick in 0u8..4) {
        let scenario = scenario_for(pick);
        let trace = trace_of(scenario.as_ref(), Box::new(RandomDecider::new(seed)));
        let hb = HappensBefore::of_run(&trace.records);
        let n = hb.len();
        prop_assert_eq!(n, trace.records.len());
        for i in 0..n {
            for j in 0..n {
                if hb.ordered(i, j) {
                    prop_assert!(i < j, "hb points backward: {} -> {}", i, j);
                    prop_assert!(!hb.ordered(j, i), "hb not antisymmetric: {} <-> {}", i, j);
                    for k in 0..n {
                        if hb.ordered(j, k) {
                            prop_assert!(
                                hb.ordered(i, k),
                                "hb not transitive: {} -> {} -> {} but not {} -> {}",
                                i, j, k, i, k
                            );
                        }
                    }
                }
            }
        }
    }

    /// Happens-before refines the schedule's per-thread and per-resource
    /// total orders: any two decisions by the same thread, or whose
    /// footprints touch a common resource, are ordered exactly as the
    /// schedule ran them. (This is the soundness half DPOR leans on: a
    /// pair it treats as unordered really is independent.)
    #[test]
    fn happens_before_refines_resource_total_orders(seed in 0u64..1_000, pick in 0u8..4) {
        let scenario = scenario_for(pick);
        let trace = trace_of(scenario.as_ref(), Box::new(RandomDecider::new(seed)));
        let hb = HappensBefore::of_run(&trace.records);
        let units = units_of(&trace.records);
        for j in 0..units.len() {
            for i in 0..j {
                let (ti, ref ri) = units[i];
                let (tj, ref rj) = units[j];
                let shares = ri.iter().any(|r| rj.contains(r));
                if ti == tj || shares {
                    prop_assert!(
                        hb.ordered(i, j),
                        "dependent pair unordered: #{} (tid {}, {:?}) vs #{} (tid {}, {:?})",
                        i, ti, ri, j, tj, rj
                    );
                    let a = dpor::HbUnit { tid: ti, resources: ri.clone() };
                    let b = dpor::HbUnit { tid: tj, resources: rj.clone() };
                    prop_assert!(dpor::dependent(&a, &b));
                }
            }
        }
    }

    /// Replaying a trace's effective decision log reproduces the exact
    /// same step records — ready sets, footprints, chosen threads, and
    /// per-segment events. DPOR's prefix-replay restarts rely on this.
    #[test]
    fn step_records_replay_deterministically(seed in 0u64..1_000, pick in 0u8..3) {
        // OCC excluded: its cell identities come from a global counter,
        // so footprints differ textually (not structurally) across runs.
        let scenario = scenario_for(pick);
        let first = trace_of(scenario.as_ref(), Box::new(RandomDecider::new(seed)));
        let log: Vec<u32> = first.choices.iter().map(|c| c.chosen).collect();
        let second = trace_of(scenario.as_ref(), Box::new(PrefixDecider::new(log)));
        prop_assert_eq!(&first.records, &second.records);
        prop_assert_eq!(first.steps, second.steps);
    }
}
