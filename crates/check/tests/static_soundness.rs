//! Soundness of the static conflict analysis against dynamic traces: on
//! random schedules of the bundled scenarios, everything the [`Controller`]
//! actually records must be *covered* by what the static pass promised.
//! Three properties, each of which the DPOR pruning
//! (`DporSearch::with_independence`) depends on:
//!
//! 1. **Seed coverage** — a thread spawned with a static seed
//!    ([`SchedHook::on_thread_spawn_with`]) never touches a resource
//!    outside that seed. The seed is the upper bound that licenses
//!    pruning the thread from no-initiator backtrack fallbacks.
//! 2. **Dynamic conflicts stay dependent** — any resource two distinct
//!    threads both touch is never declared self-independent by the
//!    [`StaticIndependence`] relation (the conflict-matrix diagonal
//!    over-approximates observed contention).
//! 3. **Footprint coupling** — when two seeded threads dynamically share
//!    a protocol, *every* cross pair of the protocols they touched is
//!    matrix-dependent: the static footprints that contain the shared
//!    protocol couple everything else those threads do.
//!
//! [`Controller`]: samoa_check::Controller
//! [`StaticIndependence`]: samoa_check::StaticIndependence
//! [`SchedHook::on_thread_spawn_with`]: samoa_core::SchedHook::on_thread_spawn_with

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use proptest::prelude::*;
use samoa_check::{
    Controller, DiamondScenario, DisjointClustersScenario, RandomDecider, Scenario, ScenarioPolicy,
    ScheduleTrace, StaticIndependence, ViewChangeScenario,
};
use samoa_core::sched::SchedResource;

/// One controlled run of `scenario` under a seeded random walk.
fn random_trace(scenario: &dyn Scenario, seed: u64) -> ScheduleTrace {
    let ctrl = Controller::new(Box::new(RandomDecider::new(seed)), 100_000);
    ctrl.register_main();
    let hook: Arc<dyn samoa_core::SchedHook> = ctrl.clone();
    let _report = scenario.run(hook);
    ctrl.finish()
}

/// Per-thread view of a trace: the spawn-time static seed (empty when the
/// thread had none) and every resource the thread's recorded accesses
/// touched.
fn per_thread(
    trace: &ScheduleTrace,
) -> BTreeMap<u32, (Vec<SchedResource>, BTreeSet<SchedResource>)> {
    let mut out: BTreeMap<u32, (Vec<SchedResource>, BTreeSet<SchedResource>)> = BTreeMap::new();
    for rec in &trace.records {
        for (i, &tid) in rec.ready.iter().enumerate() {
            let entry = out.entry(tid).or_default();
            if entry.0.is_empty() && !rec.seeds[i].is_empty() {
                entry.0 = rec.seeds[i].clone();
            }
        }
        for ev in &rec.events {
            let entry = out.entry(ev.tid).or_default();
            entry.1.extend(ev.resources.iter().copied());
        }
    }
    out
}

fn protocols_of(touched: &BTreeSet<SchedResource>) -> BTreeSet<u32> {
    touched
        .iter()
        .filter_map(|r| match r {
            SchedResource::Version(p) | SchedResource::Lock(p) => Some(*p),
            _ => None,
        })
        .collect()
}

/// The three soundness properties on one trace. Returns the number of
/// seeded threads observed so callers can reject vacuous runs.
fn assert_sound(name: &str, trace: &ScheduleTrace, relation: &StaticIndependence) -> usize {
    let threads = per_thread(trace);

    // 1. Seed coverage: the seed over-approximates everything the thread
    //    ever did.
    for (tid, (seed, touched)) in &threads {
        if seed.is_empty() {
            continue;
        }
        for r in touched {
            assert!(
                seed.contains(r),
                "{name}: thread {tid} touched {r:?} outside its static seed {seed:?}"
            );
        }
    }

    // 2. Observed contention is never statically independent.
    let ids: Vec<u32> = threads.keys().copied().collect();
    for (ai, &a) in ids.iter().enumerate() {
        for &b in &ids[ai + 1..] {
            let ta = &threads[&a].1;
            let tb = &threads[&b].1;
            for r in ta.intersection(tb) {
                assert!(
                    !relation.resources_independent(*r, *r),
                    "{name}: threads {a} and {b} both touched {r:?}, \
                     yet the relation calls it independent of itself"
                );
            }
        }
    }

    // 3. Dynamically coupled seeded threads: all cross protocol pairs are
    //    matrix-dependent.
    for (ai, &a) in ids.iter().enumerate() {
        for &b in &ids[ai + 1..] {
            let (seed_a, ta) = &threads[&a];
            let (seed_b, tb) = &threads[&b];
            if seed_a.is_empty() || seed_b.is_empty() {
                continue;
            }
            let pa = protocols_of(ta);
            let pb = protocols_of(tb);
            if pa.intersection(&pb).next().is_none() {
                continue;
            }
            for &p in &pa {
                for &q in &pb {
                    assert!(
                        !relation.resources_independent(
                            SchedResource::Version(p),
                            SchedResource::Version(q)
                        ),
                        "{name}: threads {a} and {b} share a protocol dynamically, \
                         but the matrix calls protocols {p} and {q} independent"
                    );
                }
            }
        }
    }

    threads.values().filter(|(s, _)| !s.is_empty()).count()
}

fn scenario_under_test(kind: usize) -> Box<dyn Scenario> {
    match kind {
        0 => Box::new(DiamondScenario::new(ScenarioPolicy::Unsync)),
        1 => Box::new(DiamondScenario::new(ScenarioPolicy::VcaBasic)),
        2 => Box::new(ViewChangeScenario::new(ScenarioPolicy::Unsync, 7)),
        3 => Box::new(ViewChangeScenario::new(ScenarioPolicy::VcaBasic, 7)),
        4 => Box::new(DisjointClustersScenario::new(ScenarioPolicy::VcaBasic)),
        _ => Box::new(DisjointClustersScenario::new(ScenarioPolicy::TwoPhase)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The static conflict matrix over-approximates every dynamic
    /// footprint conflict the controller records, on random schedules of
    /// every bundled scenario shape.
    #[test]
    fn static_relation_over_approximates_dynamic_traces(
        kind in 0usize..6,
        seed in any::<u64>(),
    ) {
        let scenario = scenario_under_test(kind);
        let relation = scenario
            .static_independence()
            .expect("bundled scenarios ship a static relation");
        let trace = random_trace(scenario.as_ref(), seed);
        prop_assert!(!trace.runaway, "runaway schedule in soundness probe");
        let seeded = assert_sound(scenario.name(), &trace, &relation);
        // Admission-based policies announce static seeds at spawn; a run
        // that never sees one would make the coverage property vacuous.
        if matches!(kind, 1 | 3 | 4 | 5) {
            prop_assert!(
                seeded > 0,
                "{}: no seeded thread observed — vacuous soundness case",
                scenario.name()
            );
        }
    }
}
