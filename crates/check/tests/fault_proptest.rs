//! Property test for fault-schedule replay determinism: any random walk
//! through the combined schedule × fault space of the hooked cluster can be
//! replayed from its logged decision prefix, reproducing the exact same
//! [`RunReport`] verdict *and* the same end state — per-site KV digests and
//! atomic-broadcast delivery sequences ([`ClusterProbe`]). This is the
//! substrate both witness replay and DPOR's prefix-restarts stand on: if a
//! logged prefix could diverge, every cluster-level witness would be
//! unreproducible.

use std::sync::Arc;

use proptest::prelude::*;
use samoa_check::{
    ClusterProbe, ClusterScenario, Controller, FaultBudget, PrefixDecider, RandomDecider, Scenario,
};
use samoa_proto::StackPolicy;

/// Run the scenario once under `decider`; return the invariant verdict,
/// the end-state probe, and the effective decision log.
fn run_once(
    scenario: &ClusterScenario,
    decider: Box<dyn samoa_check::Decider>,
) -> (Option<String>, ClusterProbe, Vec<u32>) {
    let ctrl = Controller::new(decider, 50_000);
    ctrl.register_main();
    let hook: Arc<dyn samoa_core::SchedHook> = ctrl.clone();
    let report = scenario.run(hook);
    let trace = ctrl.finish();
    let log: Vec<u32> = trace.choices.iter().map(|c| c.chosen).collect();
    (report.invariant_violation, scenario.probe(), log)
}

fn budget_for(pick: u8) -> FaultBudget {
    match pick % 3 {
        0 => FaultBudget::none(),
        1 => FaultBudget::crash_and_drop(),
        _ => FaultBudget {
            crashes: 0,
            drops: 1,
            duplicates: 1,
            partitions: 1,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A logged random walk — healthy or with the injected ordering bug,
    /// under varying fault budgets — replays to the identical verdict and
    /// end state.
    #[test]
    fn fault_schedule_replay_is_deterministic(
        seed in 0u64..10_000,
        pick in 0u8..3,
        bug in any::<bool>(),
    ) {
        let mut scenario = ClusterScenario::new(3, StackPolicy::Basic, 7, budget_for(pick));
        if bug {
            scenario = scenario.with_ab_order_bug();
        }
        let (v1, p1, log) = run_once(&scenario, Box::new(RandomDecider::new(seed)));
        let (v2, p2, log2) = run_once(&scenario, Box::new(PrefixDecider::new(log.clone())));
        prop_assert_eq!(v1, v2, "verdict diverged under prefix replay");
        prop_assert_eq!(p1, p2, "cluster end state diverged under prefix replay");
        prop_assert_eq!(log, log2, "the replayed run recorded a different decision log");
    }
}
