//! End-to-end exploration tests: the explorer must find the paper's run r3
//! in the unsynchronised diamond, produce deterministic replayable
//! witnesses, and certify the isolating policies clean over thousands of
//! schedules.

use samoa_check::{
    DiamondScenario, Explorer, ExplorerConfig, Failure, ScenarioPolicy, Strategy,
    TransportWindowScenario, ViewChangeScenario,
};
use samoa_transport::TransportPolicy;

#[test]
fn random_walk_finds_unsync_diamond_violation_within_500() {
    let scenario = DiamondScenario::new(ScenarioPolicy::Unsync);
    let got = Explorer::explore(
        &scenario,
        &ExplorerConfig::new(500, Strategy::Random { seed: 42 }),
    );
    let w = got
        .violation
        .expect("unsync diamond must violate isolation");
    assert!(got.schedules_run <= 500);
    match &w.failure {
        Failure::Isolation(v) => {
            let mut cyc = v.cycle.clone();
            cyc.sort_unstable();
            assert_eq!(cyc, vec![1, 2], "the r3 cycle is between ka and kb");
        }
        other => panic!("expected an isolation violation, got {other}"),
    }
}

#[test]
fn pct_finds_unsync_diamond_violation() {
    let scenario = DiamondScenario::new(ScenarioPolicy::Unsync);
    let got = Explorer::explore(
        &scenario,
        &ExplorerConfig::new(500, Strategy::Pct { seed: 7, depth: 3 }),
    );
    assert!(
        got.violation.is_some(),
        "PCT(depth 3) must find the depth-2 diamond bug in 500 schedules"
    );
}

#[test]
fn exhaustive_search_finds_unsync_diamond_violation() {
    let scenario = DiamondScenario::new(ScenarioPolicy::Unsync);
    let got = Explorer::explore(&scenario, &ExplorerConfig::new(5_000, Strategy::Exhaustive));
    assert!(
        got.violation.is_some(),
        "DFS over the bounded choice tree must hit run r3 (ran {} schedules)",
        got.schedules_run
    );
}

#[test]
fn witness_replays_to_the_same_violation_deterministically() {
    let scenario = DiamondScenario::new(ScenarioPolicy::Unsync);
    let got = Explorer::explore(
        &scenario,
        &ExplorerConfig::new(500, Strategy::Random { seed: 42 }),
    );
    let w = got.violation.expect("violation expected");
    // Replay twice: both must reproduce the exact same failure (same
    // precedence cycle, not just "some" violation).
    let r1 = Explorer::replay(&scenario, &w).expect("witness must replay");
    let r2 = Explorer::replay(&scenario, &w).expect("witness must replay");
    assert_eq!(r1, w.failure);
    assert_eq!(r1, r2);
}

/// Pinned-seed regression: the recorded witness for the Unsync figure-1
/// violation. If controller, runtime instrumentation, or scenario change
/// the schedule semantics, this fails and the constants below need
/// re-recording (run the explorer with seed 42 and print the witness).
#[test]
fn pinned_witness_for_unsync_diamond_is_stable() {
    let scenario = DiamondScenario::new(ScenarioPolicy::Unsync);
    let got = Explorer::explore(
        &scenario,
        &ExplorerConfig::new(500, Strategy::Random { seed: 42 }),
    );
    let w = got.violation.expect("violation expected");
    let fresh = Explorer::explore(
        &scenario,
        &ExplorerConfig::new(500, Strategy::Random { seed: 42 }),
    )
    .violation
    .expect("violation expected");
    // Same seed, same code: the exploration itself is deterministic.
    assert_eq!(w.schedule_index, fresh.schedule_index);
    assert_eq!(w.choices, fresh.choices);
    assert_eq!(w.failure, fresh.failure);
    // And the checker's cycle witness is stable across replays.
    match (
        Explorer::replay(&scenario, &w),
        Explorer::replay(&scenario, &fresh),
    ) {
        (Some(Failure::Isolation(a)), Some(Failure::Isolation(b))) => {
            assert_eq!(a.cycle, b.cycle)
        }
        other => panic!("expected isolation failures, got {other:?}"),
    }
}

#[test]
fn minimised_witness_still_replays() {
    let scenario = DiamondScenario::new(ScenarioPolicy::Unsync);
    let cfg = ExplorerConfig::new(500, Strategy::Random { seed: 11 });
    let w = Explorer::explore(&scenario, &cfg)
        .violation
        .expect("violation expected");
    assert!(Explorer::replay(&scenario, &w).is_some());
    // Minimisation is on by default; an un-minimised run of the same seed
    // can only be at least as long.
    let raw = Explorer::explore(
        &scenario,
        &ExplorerConfig {
            minimise: false,
            ..cfg
        },
    )
    .violation
    .expect("violation expected");
    assert!(w.choices.len() <= raw.choices.len());
}

/// The acceptance sweep: ≥ 2000 schedules across the isolating policies,
/// zero violations. 500 random walks per policy × 4 policies.
#[test]
fn sweep_isolating_policies_find_no_violation() {
    for policy in [
        ScenarioPolicy::VcaBasic,
        ScenarioPolicy::VcaBound,
        ScenarioPolicy::VcaRoute,
        ScenarioPolicy::Serial,
    ] {
        let scenario = DiamondScenario::new(policy);
        let got = Explorer::explore(
            &scenario,
            &ExplorerConfig::new(500, Strategy::Random { seed: 1 }),
        );
        assert_eq!(got.schedules_run, 500, "{policy:?} sweep cut short");
        assert!(
            got.violation.is_none(),
            "{policy:?} violated isolation: {}",
            got.violation.unwrap()
        );
    }
}

#[test]
fn two_phase_locking_survives_exploration() {
    let scenario = DiamondScenario::new(ScenarioPolicy::TwoPhase);
    let got = Explorer::explore(
        &scenario,
        &ExplorerConfig::new(200, Strategy::Random { seed: 3 }),
    );
    assert!(got.violation.is_none(), "{}", got.violation.unwrap());
}

#[test]
fn view_change_race_is_found_and_isolating_policy_fixes_it() {
    // Unsync: some schedule lets the broadcast observe view != epoch (the
    // §3 inconsistency) — caught either as a stale message on the wire or
    // as a precedence cycle.
    let buggy = ViewChangeScenario::new(ScenarioPolicy::Unsync, 9);
    let got = Explorer::explore(
        &buggy,
        &ExplorerConfig::new(500, Strategy::Random { seed: 5 }),
    );
    let w = got.violation.expect("unsync view change must misbehave");
    assert_eq!(
        Explorer::replay(&buggy, &w).expect("witness must replay"),
        w.failure
    );

    // VCAbasic: same workload, no schedule misbehaves.
    let fixed = ViewChangeScenario::new(ScenarioPolicy::VcaBasic, 9);
    let got = Explorer::explore(
        &fixed,
        &ExplorerConfig::new(500, Strategy::Random { seed: 5 }),
    );
    assert!(got.violation.is_none(), "{}", got.violation.unwrap());
}

#[test]
fn guided_pct_finds_view_change_race_with_replayable_witness() {
    // The traced scenario feeds each run's contention back into the
    // generator; the guided strategy must still find the §3 race and pin
    // it to a witness that replays — guidance may steer placement, but
    // witnesses stay pure functions of the choice sequence.
    let scenario = ViewChangeScenario::traced(ScenarioPolicy::Unsync, 9);
    let got = Explorer::explore(
        &scenario,
        &ExplorerConfig::new(500, Strategy::Guided { seed: 5, depth: 2 }),
    );
    let w = got
        .violation
        .expect("guided PCT must find the view-change race");
    assert_eq!(
        Explorer::replay(&scenario, &w).expect("witness must replay"),
        w.failure
    );
}

#[test]
fn guided_pct_without_trace_buffer_matches_plain_pct() {
    // An untraced scenario gives the guided generator nothing to drain, so
    // it must degrade to byte-identical plain PCT: same seed, same
    // schedule count to first violation.
    let seed = 7;
    let plain = Explorer::explore(
        &DiamondScenario::new(ScenarioPolicy::Unsync),
        &ExplorerConfig::new(500, Strategy::Pct { seed, depth: 3 }),
    );
    let guided = Explorer::explore(
        &DiamondScenario::new(ScenarioPolicy::Unsync),
        &ExplorerConfig::new(500, Strategy::Guided { seed, depth: 3 }),
    );
    assert_eq!(plain.schedules_run, guided.schedules_run);
    assert_eq!(
        plain.violation.map(|w| w.choices),
        guided.violation.map(|w| w.choices)
    );
}

#[test]
fn view_change_exhaustive_certifies_serial() {
    // The serial policy's choice tree is small enough to exhaust: a real
    // (bounded) proof of isolation rather than a sample.
    let scenario = ViewChangeScenario::new(ScenarioPolicy::Serial, 2);
    let got = Explorer::explore(
        &scenario,
        &ExplorerConfig::new(20_000, Strategy::Exhaustive),
    );
    assert!(got.violation.is_none(), "{}", got.violation.unwrap());
    assert!(
        got.exhausted,
        "serial view-change space not exhausted in {} schedules",
        got.schedules_run
    );
}

#[test]
fn proto_node_runs_hooked_under_a_controlled_schedule() {
    // Full §3 protocol stack (RelComm/RelCast/...) under the controller: a
    // reliable broadcast between two hooked nodes over a manual network,
    // with the first-ready deterministic schedule. Exercises the hooked
    // `Node` constructor end to end; full exploration of this stack is a
    // ROADMAP item.
    use samoa_check::{Controller, PrefixDecider};
    use samoa_net::{NetConfig, SimNet, SiteId};
    use samoa_proto::{Node, NodeConfig};

    let ctrl = Controller::new(Box::new(PrefixDecider::new(Vec::new())), 500_000);
    ctrl.register_main();
    let net = SimNet::new_manual(2, NetConfig::fast(3));
    let cfg = NodeConfig {
        enable_timers: false,
        record_history: true,
        ..NodeConfig::default()
    };
    let n0 = Node::new_hooked(net.handle(), SiteId(0), cfg.clone(), ctrl.clone());
    let n1 = Node::new_hooked(net.handle(), SiteId(1), cfg, ctrl.clone());
    n0.rbcast(b"hello".to_vec());
    loop {
        n0.runtime().quiesce();
        n1.runtime().quiesce();
        if net.handle().pump_all() == 0 {
            break;
        }
    }
    let delivered = n1.rb_delivered();
    let trace = ctrl.finish();
    assert!(!trace.deadlock, "controlled broadcast wedged");
    assert!(!trace.runaway, "controlled broadcast ran away");
    assert!(
        delivered.iter().any(|(_, b)| &b[..] == b"hello"),
        "site 1 never delivered the broadcast: {delivered:?}"
    );
    n0.runtime().check_isolation().unwrap();
    n1.runtime().check_isolation().unwrap();
}

#[test]
fn transport_window_explores_clean_under_basic_policy() {
    // Exploration-only (the transport stack hashes internally, so pinned
    // replay is not asserted here): the sliding window must deliver both
    // messages and stay serializable on every schedule tried.
    let scenario = TransportWindowScenario::new(TransportPolicy::Basic, 4);
    let got = Explorer::explore(
        &scenario,
        &ExplorerConfig::new(50, Strategy::Random { seed: 8 }),
    );
    assert_eq!(got.schedules_run, 50);
    assert!(got.violation.is_none(), "{}", got.violation.unwrap());
}
