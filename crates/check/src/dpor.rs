//! Dynamic partial-order reduction: explore one schedule per Mazurkiewicz
//! trace instead of every interleaving.
//!
//! Exhaustive enumeration ([`Strategy::Exhaustive`](crate::Strategy))
//! visits every choice sequence, but most of them are equivalent: two
//! adjacent steps whose resource footprints are disjoint commute, so
//! swapping them reaches the same state. DPOR (Flanagan & Godefroid,
//! POPL 2005) exploits this at runtime: after each execution it looks for
//! *races* — pairs of dependent accesses by different threads that were
//! adjacent in the happens-before order — and schedules just enough
//! backtrack points to cover the other side of each race. Combined with
//! sleep sets, the search covers every reachable failure of the bounded
//! scenario *with respect to the dependence relation* while running a
//! fraction of the schedules.
//!
//! ## The dependence relation
//!
//! The unit of analysis is the [`SegEvent`]: one thread's contiguous
//! resource accesses within a segment (segments bundle the chosen thread's
//! action with any *forced moves* that followed it, so a segment can carry
//! several threads' events). Two events are **dependent** iff they belong
//! to the same thread or their resources intersect — the same
//! microprotocol version or lock ([`SchedResource::Version`]/
//! [`SchedResource::Lock`], which also stand for the protocol's local
//! state via [`SchedHook::note`](samoa_core::sched::SchedHook::note)),
//! the same task queue, or an overlapping OCC validation set
//! ([`SchedResource::OccCell`]). Threads whose next action is not yet
//! announced (empty pending footprint) are conservatively treated as
//! conflicting with everything — over-approximating dependence costs
//! reduction, never soundness.
//!
//! ## Stateless search
//!
//! The runtime cannot checkpoint mid-schedule, so the search is
//! stateless-restart: each run replays a prefix of recorded choices via
//! [`PrefixDecider`](crate::strategy::PrefixDecider) (first-ready beyond
//! it), then [`DporSearch::record`] folds the observed trace into the
//! exploration stack and [`DporSearch::advance`] picks the deepest node
//! with an unexplored backtrack candidate.

use std::collections::BTreeSet;

use samoa_core::sched::SchedResource;

use crate::controller::{ScheduleTrace, StepRecord};
use crate::independence::StaticIndependence;

/// One unit of the happens-before analysis: a thread and the resources
/// one of its access runs touched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HbUnit {
    /// The acting thread.
    pub tid: u32,
    /// The resources it touched.
    pub resources: Vec<SchedResource>,
}

/// Are two units dependent — same thread, or overlapping resources?
/// Reordering *independent* units cannot change the outcome, so schedules
/// differing only in their order are equivalent.
pub fn dependent(a: &HbUnit, b: &HbUnit) -> bool {
    a.tid == b.tid || intersects(&a.resources, &b.resources)
}

fn intersects(a: &[SchedResource], b: &[SchedResource]) -> bool {
    a.iter().any(|r| b.contains(r))
}

/// Is thread `q`'s announced next action *known* to commute with a segment
/// that touched `footprint`? Unknown announcements (`None` or empty — a
/// thread that has not reached its first annotated yield) are
/// conservatively treated as conflicting.
fn known_independent(pending: Option<&[SchedResource]>, footprint: &[SchedResource]) -> bool {
    match pending {
        Some(p) if !p.is_empty() => !intersects(p, footprint),
        _ => false,
    }
}

/// The happens-before relation of one execution, closed transitively over
/// the dependence relation: `i →hb j` iff a chain of pairwise-dependent
/// units leads from unit `i` to unit `j`.
///
/// Stored as one bitset per unit (`hb[j]` = the set of `i` with
/// `i →hb j`), built in a single forward pass:
/// `hb[j] = ⋃ { hb[i] ∪ {i} : i < j, dependent(i, j) }`.
pub struct HappensBefore {
    n: usize,
    words: usize,
    bits: Vec<u64>,
}

impl HappensBefore {
    /// Compute the happens-before closure of a sequence of units.
    pub fn compute(units: &[HbUnit]) -> HappensBefore {
        let n = units.len();
        let words = n.div_ceil(64).max(1);
        let mut bits = vec![0u64; n * words];
        for j in 0..n {
            for i in 0..j {
                if dependent(&units[i], &units[j]) {
                    for w in 0..words {
                        let v = bits[i * words + w];
                        bits[j * words + w] |= v;
                    }
                    bits[j * words + i / 64] |= 1u64 << (i % 64);
                }
            }
        }
        HappensBefore { n, words, bits }
    }

    /// The happens-before closure of a recorded run, at segment
    /// granularity: one unit per recorded decision, carrying the chosen
    /// thread and the whole segment footprint. Coarser than the per-event
    /// relation the search uses internally, but a sound over-approximation
    /// — convenient for asserting ordering properties of a trace.
    pub fn of_run(steps: &[StepRecord]) -> HappensBefore {
        let units: Vec<HbUnit> = steps
            .iter()
            .map(|s| HbUnit {
                tid: s.chosen,
                resources: s.footprint(),
            })
            .collect();
        HappensBefore::compute(&units)
    }

    /// Number of units in the underlying sequence.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the sequence was empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Does unit `i` happen before unit `j`?
    pub fn ordered(&self, i: usize, j: usize) -> bool {
        debug_assert!(i < self.n && j < self.n);
        self.bits[j * self.words + i / 64] & (1u64 << (i % 64)) != 0
    }
}

/// One node of the exploration stack: the state reached after replaying
/// the choices above it, plus the DPOR bookkeeping for the decision taken
/// there.
#[derive(Debug, Clone)]
struct DporNode {
    /// Sorted ready set at this decision (from the [`StepRecord`]).
    ready: Vec<u32>,
    /// Thread chosen by the run currently being explored through here.
    chosen: u32,
    /// Threads a detected race demands be tried from this state.
    backtrack: BTreeSet<u32>,
    /// Threads whose subtree from this state is fully explored.
    done: BTreeSet<u32>,
    /// Threads whose next action was explored on a sibling branch and is
    /// independent of everything since — re-exploring them here would
    /// revisit a covered equivalence class.
    sleep: BTreeSet<u32>,
}

/// Backtrack-set DPOR with sleep sets over
/// [`Controller`](crate::Controller) traces.
///
/// Drive it restart-style:
///
/// 1. run the scenario with
///    [`PrefixDecider::new(search.prefix())`](crate::strategy::PrefixDecider),
/// 2. feed the resulting trace to [`record`](DporSearch::record),
/// 3. ask [`advance`](DporSearch::advance) for the next prefix; `None`
///    means the reduced space is exhausted.
pub struct DporSearch {
    stack: Vec<DporNode>,
    next: Vec<u32>,
    schedules_run: usize,
    exhausted: bool,
    /// Statically-known independence from the stack's conflict matrix;
    /// `None` disables static pruning (classic DPOR).
    independence: Option<StaticIndependence>,
    /// Ready threads considered by the no-initiator fallback, total.
    fallback_candidates: usize,
    /// Of those, threads statically proven independent of their race
    /// window and therefore *not* inserted as backtrack points.
    fallback_pruned: usize,
}

impl Default for DporSearch {
    fn default() -> Self {
        DporSearch::new()
    }
}

impl DporSearch {
    /// A fresh search; the first run uses the empty prefix.
    pub fn new() -> DporSearch {
        DporSearch::with_independence(None)
    }

    /// A search that prunes with a [`StaticIndependence`] relation: in the
    /// no-ready-initiator fallback of the race analysis, ready threads
    /// whose spawn-time static seed is independent of
    /// the entire race window never seed backtrack points. `None` is
    /// exactly [`DporSearch::new`].
    pub fn with_independence(independence: Option<StaticIndependence>) -> DporSearch {
        DporSearch {
            stack: Vec::new(),
            next: Vec::new(),
            schedules_run: 0,
            exhausted: false,
            independence,
            fallback_candidates: 0,
            fallback_pruned: 0,
        }
    }

    /// Ready threads the no-initiator fallback has considered so far.
    pub fn fallback_candidates(&self) -> usize {
        self.fallback_candidates
    }

    /// Fallback candidates suppressed by static independence — the
    /// numerator of the *pruned ratio* the benchmarks report.
    pub fn fallback_pruned(&self) -> usize {
        self.fallback_pruned
    }

    /// The replay prefix for the next run (indices into each decision's
    /// sorted ready set, the [`PrefixDecider`](crate::strategy::PrefixDecider)
    /// encoding).
    pub fn prefix(&self) -> Vec<u32> {
        self.next.clone()
    }

    /// Runs recorded so far.
    pub fn schedules_run(&self) -> usize {
        self.schedules_run
    }

    /// Has the reduced space been fully explored?
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// Fold one finished run into the search: extend the stack along the
    /// run's free suffix (computing sleep sets as we descend), then add
    /// backtrack points for every reversible race the run exhibited.
    pub fn record(&mut self, trace: &ScheduleTrace) {
        self.schedules_run += 1;
        let steps = &trace.records;
        debug_assert!(
            steps.len() >= self.stack.len(),
            "replayed run diverged from its prefix ({} decisions, stack depth {})",
            steps.len(),
            self.stack.len(),
        );
        for (i, step) in steps.iter().enumerate() {
            if let Some(node) = self.stack.get(i) {
                debug_assert_eq!(node.chosen, step.chosen, "replay diverged at decision {i}");
                continue;
            }
            // A fresh node below the replayed prefix. Its sleep set: every
            // thread explored (or asleep) at the parent whose announced
            // action is independent of the entire parent segment — running
            // it here reaches a state a sibling branch already covered.
            let sleep = match i.checked_sub(1) {
                None => BTreeSet::new(),
                Some(pi) => {
                    let pstep = &steps[pi];
                    let pnode = &self.stack[pi];
                    let pfp = pstep.footprint();
                    pnode
                        .sleep
                        .iter()
                        .chain(pnode.done.iter())
                        .filter(|&&q| {
                            q != pstep.chosen && known_independent(pstep.announced_or_seed(q), &pfp)
                        })
                        .copied()
                        .collect()
                }
            };
            self.stack.push(DporNode {
                ready: step.ready.clone(),
                chosen: step.chosen,
                backtrack: BTreeSet::from([step.chosen]),
                done: BTreeSet::new(),
                sleep,
            });
        }
        self.add_backtracks(steps);
    }

    /// Flanagan–Godefroid race analysis at event granularity: for every
    /// reversible race `(e, f)`, make sure the decision that opened `e`'s
    /// segment will also try a thread that leads to `f`'s side of the
    /// race.
    fn add_backtracks(&mut self, steps: &[StepRecord]) {
        // Flatten the run into (decision index, unit) pairs — forced moves
        // bundle several threads' events into one segment, and races must
        // see each thread's accesses separately.
        let mut decision: Vec<usize> = Vec::new();
        let mut units: Vec<HbUnit> = Vec::new();
        for (d, step) in steps.iter().enumerate() {
            for ev in &step.events {
                decision.push(d);
                units.push(HbUnit {
                    tid: ev.tid,
                    resources: ev.resources.clone(),
                });
            }
        }
        let hb = HappensBefore::compute(&units);
        for f in 0..units.len() {
            for e in 0..f {
                if units[e].tid == units[f].tid || !dependent(&units[e], &units[f]) {
                    continue;
                }
                // Reversible: no intermediate unit already orders e → f —
                // otherwise swapping them is impossible and the race is
                // covered by the (e, g) and (g, f) pairs.
                if (e + 1..f).any(|g| hb.ordered(e, g) && hb.ordered(g, f)) {
                    continue;
                }
                // The schedulable state for e is the decision that opened
                // its segment; try a thread that initiates f's side there:
                // f's own thread, or any thread whose unit between e and f
                // happens-before f.
                let d = decision[e];
                let ready = &steps[d].ready;
                let mut cand: BTreeSet<u32> = BTreeSet::new();
                if ready.contains(&units[f].tid) {
                    cand.insert(units[f].tid);
                }
                for (g, unit) in units.iter().enumerate().take(f).skip(e + 1) {
                    if hb.ordered(g, f) && ready.contains(&unit.tid) {
                        cand.insert(unit.tid);
                    }
                }
                if cand.is_empty() {
                    // No initiator is ready at the decision: conservatively
                    // try everything (the classic fallback) — minus threads
                    // the static relation proves independent of the whole
                    // race window. Only the *spawn-time seed* licenses this
                    // prune: it bounds everything the thread will ever
                    // touch, so the thread commutes with the window and
                    // cannot flip the race or enable its initiator. An
                    // announced pending is not enough — it describes only
                    // the next action, and a later one could interfere.
                    let window: Vec<SchedResource> = units[e..=f]
                        .iter()
                        .flat_map(|u| u.resources.iter().copied())
                        .collect();
                    let mut keep: Vec<u32> = Vec::new();
                    for &q in ready {
                        self.fallback_candidates += 1;
                        let pruned = match (self.independence.as_ref(), steps[d].seed_of(q)) {
                            (Some(si), Some(seed)) => si.sets_independent(seed, &window),
                            _ => false,
                        };
                        if pruned {
                            self.fallback_pruned += 1;
                        } else {
                            keep.push(q);
                        }
                    }
                    self.stack[d].backtrack.extend(keep);
                    continue;
                }
                let node = &mut self.stack[d];
                if cand
                    .iter()
                    .all(|t| !node.backtrack.contains(t) && !node.done.contains(t))
                {
                    node.backtrack.insert(*cand.iter().next().unwrap());
                }
            }
        }
    }

    /// Retire the just-explored branch and pick the next one: the deepest
    /// node with a backtrack candidate that is neither done nor asleep.
    /// Returns the replay prefix for the next run, or `None` when the
    /// reduced space is exhausted.
    pub fn advance(&mut self) -> Option<Vec<u32>> {
        while let Some(node) = self.stack.last_mut() {
            node.done.insert(node.chosen);
            let next = node
                .backtrack
                .iter()
                .find(|t| !node.done.contains(t) && !node.sleep.contains(t))
                .copied();
            match next {
                Some(t) => {
                    node.chosen = t;
                    self.next = self
                        .stack
                        .iter()
                        .map(|n| {
                            n.ready
                                .iter()
                                .position(|&r| r == n.chosen)
                                .expect("backtrack candidate drawn from the ready set")
                                as u32
                        })
                        .collect();
                    return Some(self.next.clone());
                }
                None => {
                    self.stack.pop();
                }
            }
        }
        self.exhausted = true;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::SegEvent;

    fn step(chosen: u32, ready: &[u32], fp: &[SchedResource]) -> StepRecord {
        StepRecord {
            ready: ready.to_vec(),
            pending: ready.iter().map(|_| Vec::new()).collect(),
            seeds: ready.iter().map(|_| Vec::new()).collect(),
            chosen,
            step: 0,
            events: vec![SegEvent {
                tid: chosen,
                resources: fp.to_vec(),
            }],
        }
    }

    fn trace_of(steps: Vec<StepRecord>) -> ScheduleTrace {
        use crate::controller::ChoiceRecord;
        ScheduleTrace {
            choices: steps
                .iter()
                .map(|s| ChoiceRecord {
                    chosen: s.ready.iter().position(|&r| r == s.chosen).unwrap() as u32,
                    alternatives: s.ready.len() as u32,
                })
                .collect(),
            records: steps,
            steps: 0,
            deadlock: false,
            runaway: false,
        }
    }

    const V0: SchedResource = SchedResource::Version(0);
    const V1: SchedResource = SchedResource::Version(1);

    fn unit(tid: u32, rs: &[SchedResource]) -> HbUnit {
        HbUnit {
            tid,
            resources: rs.to_vec(),
        }
    }

    #[test]
    fn dependence_is_resource_overlap_or_same_thread() {
        let a = unit(0, &[V0]);
        let b = unit(1, &[V0]);
        let c = unit(1, &[V1]);
        assert!(dependent(&a, &b), "shared Version(0)");
        assert!(!dependent(&a, &c), "disjoint resources, distinct threads");
        assert!(dependent(&b, &c), "same thread");
    }

    #[test]
    fn happens_before_is_transitive() {
        // 0 —V0→ 1 —V1→ 2, but 0 and 2 share nothing directly.
        let units = vec![unit(0, &[V0]), unit(1, &[V0, V1]), unit(2, &[V1])];
        let hb = HappensBefore::compute(&units);
        assert!(hb.ordered(0, 1));
        assert!(hb.ordered(1, 2));
        assert!(hb.ordered(0, 2), "transitive closure");
        assert!(!hb.ordered(2, 0));
    }

    #[test]
    fn race_schedules_a_backtrack_point() {
        // Two threads touch V0 with nothing ordering them: a race. The
        // search must want to try thread 1 first at decision 0.
        let mut s = DporSearch::new();
        s.record(&trace_of(vec![
            step(0, &[0, 1], &[V0]),
            step(1, &[0, 1], &[V0]),
        ]));
        let next = s.advance().expect("race demands a second run");
        assert_eq!(next, vec![1], "try ready index 1 at the root");
    }

    #[test]
    fn forced_move_races_are_still_detected() {
        // Thread 1's conflicting access happened as a forced move folded
        // into thread 0's segment — the race must still surface.
        let mut s = DporSearch::new();
        let mut only = step(0, &[0, 1], &[V0]);
        only.events.push(SegEvent {
            tid: 1,
            resources: vec![V0],
        });
        s.record(&trace_of(vec![only]));
        let next = s.advance().expect("race demands a second run");
        assert_eq!(next, vec![1]);
    }

    /// Two clusters that never meet: e1 -> a(P), e2 -> c(R). Protocol
    /// indices: P = 0, R = 1.
    fn disjoint_relation() -> StaticIndependence {
        let mut bld = samoa_core::StackBuilder::new();
        let pp = bld.protocol("P");
        let pr = bld.protocol("R");
        let e1 = bld.event("e1");
        let e2 = bld.event("e2");
        bld.bind_with_triggers(e1, pp, "a", &[], |_, _| Ok(()));
        bld.bind_with_triggers(e2, pr, "c", &[], |_, _| Ok(()));
        let s = bld.build();
        let (m, _) = samoa_core::analysis::ConflictMatrix::analyze(&s, &[e1, e2]);
        StaticIndependence::from_matrix(&m)
    }

    #[test]
    fn static_independence_prunes_the_no_initiator_fallback() {
        // Race on V0 between threads 0 and 1, but thread 1 is not ready at
        // the decision that opened the race: the classic fallback schedules
        // every ready thread there, including bystander thread 2. With the
        // static relation and 2's seed naming only the other cluster, the
        // bystander is pruned and the reduced space is already exhausted.
        let vr = SchedResource::Version(1);
        let seeded = |chosen: u32, ready: &[u32], fp: &[SchedResource]| {
            let mut s = step(chosen, ready, fp);
            if let Some(i) = s.ready.iter().position(|&t| t == 2) {
                s.seeds[i] = vec![vr];
            }
            s
        };
        let steps = vec![seeded(0, &[0, 2], &[V0]), seeded(1, &[1, 2], &[V0])];

        let mut classic = DporSearch::new();
        classic.record(&trace_of(steps.clone()));
        assert_eq!(
            classic.advance(),
            Some(vec![1]),
            "classic fallback must still try the bystander"
        );
        assert_eq!(classic.fallback_pruned(), 0);

        let mut reduced = DporSearch::with_independence(Some(disjoint_relation()));
        reduced.record(&trace_of(steps));
        assert!(reduced.fallback_pruned() > 0, "bystander must be pruned");
        assert!(reduced.advance().is_none(), "nothing left to backtrack");
        assert!(reduced.exhausted());
    }

    #[test]
    fn independent_threads_need_one_run() {
        let mut s = DporSearch::new();
        s.record(&trace_of(vec![
            step(0, &[0, 1], &[V0]),
            step(1, &[0, 1], &[V1]),
        ]));
        assert!(s.advance().is_none(), "no race, nothing to backtrack");
        assert!(s.exhausted());
    }
}
