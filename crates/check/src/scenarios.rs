//! Ready-made exploration scenarios: the paper's Figure 1 diamond stack,
//! the §3 view-change race, and the transport sliding window.
//!
//! A [`Scenario`] builds a fresh hooked runtime, runs a fixed workload under
//! the controller's schedule, and reports the recorded [`History`] plus any
//! violated scenario-specific invariant. Scenarios must be *schedule-pure*:
//! everything observable has to be a function of the controller's choice
//! sequence (fresh state per run, seeded simulated networks in manual mode,
//! no wall-clock timers), or witnesses will not replay.

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use samoa_core::analysis::ConflictMatrix;
use samoa_core::prelude::*;
use samoa_core::sched::SchedResource;
use samoa_core::{History, SchedHook};
use samoa_net::{NetConfig, SimNet, SiteId};
use samoa_transport::{Endpoint, TransportConfig, TransportPolicy};

use crate::independence::StaticIndependence;

/// Build the [`StaticIndependence`] relation of a stack *shape*: run the
/// conflict analysis with the given roots and export the matrix. Scenario
/// shapes must register protocols in the same order as their `run` stacks,
/// so the raw indices in [`SchedResource`] seeds line up.
fn relation_of(stack: &Stack, roots: &[EventType]) -> StaticIndependence {
    let (m, _) = ConflictMatrix::analyze(stack, roots);
    StaticIndependence::from_matrix(&m)
}

/// What one controlled run of a scenario produced.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// The recorded run and state accesses, ready for
    /// [`History::check_isolation`].
    pub history: History,
    /// A violated scenario-specific invariant, if any (isolation is checked
    /// separately by the explorer).
    pub invariant_violation: Option<String>,
}

/// A workload the explorer can run under many schedules.
pub trait Scenario {
    /// Stable name, recorded in witnesses.
    fn name(&self) -> &'static str;

    /// Run the workload once under `hook`'s schedule and report.
    ///
    /// Called from the controller's main thread (thread 0, holding the
    /// turn); must quiesce all spawned computations before returning.
    fn run(&self, hook: Arc<dyn SchedHook>) -> RunReport;

    /// The scenario stack's [`StaticIndependence`] relation, derived from
    /// its conflict matrix, for DPOR pruning
    /// ([`DporSearch::with_independence`]). `None` (the default) runs
    /// classic DPOR. Implementations must keep the analyzed stack's
    /// protocol order identical to the stack `run` builds, so raw protocol
    /// indices agree.
    ///
    /// [`DporSearch::with_independence`]: crate::dpor::DporSearch::with_independence
    fn static_independence(&self) -> Option<StaticIndependence> {
        None
    }

    /// The trace buffer this scenario's runtime emits into, when it runs
    /// traced. [`Strategy::Guided`](crate::explorer::Strategy::Guided)
    /// drains it between schedules and steers PCT change points toward the
    /// microprotocols where the drained events concentrate; the default
    /// (`None`) leaves guided search running as plain PCT.
    fn trace_buffer(&self) -> Option<Arc<samoa_core::TraceBuffer>> {
        None
    }
}

/// Synchronisation policy a scenario runs its computations under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioPolicy {
    /// Cactus-style, no isolation — the buggy baseline the explorer should
    /// catch.
    Unsync,
    /// `isolated M e` (VCAbasic).
    VcaBasic,
    /// `isolated (M, bounds) e` (VCAbound) — bounds set to each
    /// computation's true visit counts.
    VcaBound,
    /// `isolated pattern e` (VCAroute).
    VcaRoute,
    /// Appia-style serial execution.
    Serial,
    /// Conservative two-phase locking.
    TwoPhase,
}

impl ScenarioPolicy {
    /// All policies that guarantee isolation (everything except `Unsync`).
    pub fn isolating() -> [ScenarioPolicy; 5] {
        [
            ScenarioPolicy::VcaBasic,
            ScenarioPolicy::VcaBound,
            ScenarioPolicy::VcaRoute,
            ScenarioPolicy::Serial,
            ScenarioPolicy::TwoPhase,
        ]
    }
}

/// The Figure 1 diamond: handlers P, Q, R, S; computation `ka` routes
/// P → R → S, `kb` routes Q → R → S; R and S record writer order.
///
/// Under [`ScenarioPolicy::Unsync`] the explorer can drive the execution
/// into the paper's run `r3` (`ka` before `kb` on R, `kb` before `ka` on S)
/// — a precedence cycle. Under any isolating policy no schedule produces a
/// violation.
pub struct DiamondScenario {
    policy: ScenarioPolicy,
    width: usize,
}

impl DiamondScenario {
    /// The paper's two-computation diamond under `policy`.
    pub fn new(policy: ScenarioPolicy) -> DiamondScenario {
        DiamondScenario::sized(policy, 2)
    }

    /// A diamond with `width` concurrent computations, alternating the
    /// `a0` (via P) and `b0` (via Q) roots. The schedule space grows
    /// exponentially in `width`, which is what makes it the reduction
    /// benchmark: at `width ≥ 3` exhaustive enumeration runs tens of
    /// thousands of schedules where DPOR needs a fraction of them.
    pub fn sized(policy: ScenarioPolicy, width: usize) -> DiamondScenario {
        assert!(width >= 1, "diamond needs at least one computation");
        DiamondScenario { policy, width }
    }

    /// The diamond stack's *shape* — same protocol/event registration
    /// order as [`Scenario::run`]'s stack, noop handlers — plus its root
    /// events, for static analysis.
    fn shape() -> (Stack, [EventType; 2]) {
        let mut b = StackBuilder::new();
        let p = b.protocol("P");
        let q = b.protocol("Q");
        let r = b.protocol("R");
        let s = b.protocol("S");
        let a0 = b.event("a0");
        let b0 = b.event("b0");
        let to_r = b.event("r");
        let to_s = b.event("s");
        b.bind_with_triggers(a0, p, "P", &[to_r], |_, _| Ok(()));
        b.bind_with_triggers(b0, q, "Q", &[to_r], |_, _| Ok(()));
        b.bind_with_triggers(to_r, r, "R", &[to_s], |_, _| Ok(()));
        b.bind_with_triggers(to_s, s, "S", &[], |_, _| Ok(()));
        (b.build(), [a0, b0])
    }
}

impl Scenario for DiamondScenario {
    fn name(&self) -> &'static str {
        match self.policy {
            ScenarioPolicy::Unsync => "diamond/unsync",
            ScenarioPolicy::VcaBasic => "diamond/vca-basic",
            ScenarioPolicy::VcaBound => "diamond/vca-bound",
            ScenarioPolicy::VcaRoute => "diamond/vca-route",
            ScenarioPolicy::Serial => "diamond/serial",
            ScenarioPolicy::TwoPhase => "diamond/two-phase",
        }
    }

    fn run(&self, hook: Arc<dyn SchedHook>) -> RunReport {
        let mut b = StackBuilder::new();
        let p = b.protocol("P");
        let q = b.protocol("Q");
        let r = b.protocol("R");
        let s = b.protocol("S");
        let a0 = b.event("a0");
        let b0 = b.event("b0");
        let to_r = b.event("r");
        let to_s = b.event("s");
        let r_trace = ProtocolState::new(r, Vec::<u64>::new());
        let s_trace = ProtocolState::new(s, Vec::<u64>::new());

        let h_p = b.bind_with_triggers(a0, p, "P", &[to_r], move |ctx, ev| {
            ctx.trigger(to_r, ev.clone())
        });
        let h_q = b.bind_with_triggers(b0, q, "Q", &[to_r], move |ctx, ev| {
            ctx.trigger(to_r, ev.clone())
        });
        let h_r = {
            let tr = r_trace.clone();
            b.bind_with_triggers(to_r, r, "R", &[to_s], move |ctx, ev| {
                tr.with(ctx, |t| t.push(ctx.comp_id()));
                ctx.trigger(to_s, ev.clone())
            })
        };
        let h_s = {
            let ts = s_trace.clone();
            b.bind_with_triggers(to_s, s, "S", &[], move |ctx, _| {
                ts.with(ctx, |t| t.push(ctx.comp_id()));
                Ok(())
            })
        };

        let rt = Runtime::with_hook(b.build(), RuntimeConfig::recording(), hook);
        let policy = self.policy;
        let spawn_one = |ev: EventType, own: ProtocolId, root| {
            let body = move |ctx: &Ctx| ctx.trigger(ev, EventData::empty());
            match policy {
                ScenarioPolicy::Unsync => rt.spawn(Decl::Unsync, body),
                ScenarioPolicy::VcaBasic => rt.spawn(Decl::Basic(&[own, r, s]), body),
                ScenarioPolicy::VcaBound => {
                    rt.spawn(Decl::Bound(&[(own, 1), (r, 1), (s, 1)]), body)
                }
                ScenarioPolicy::VcaRoute => {
                    let pat = RoutePattern::new()
                        .root(root)
                        .edge(root, h_r)
                        .edge(h_r, h_s);
                    rt.spawn(Decl::Route(&pat), body)
                }
                ScenarioPolicy::Serial => rt.spawn(Decl::Serial, body),
                ScenarioPolicy::TwoPhase => rt.spawn(Decl::TwoPhase(&[own, r, s]), body),
            }
        };
        for i in 0..self.width {
            if i % 2 == 0 {
                spawn_one(a0, p, h_p);
            } else {
                spawn_one(b0, q, h_q);
            }
        }
        rt.quiesce();

        RunReport {
            history: rt.history(),
            invariant_violation: None,
        }
    }

    fn static_independence(&self) -> Option<StaticIndependence> {
        let (stack, roots) = DiamondScenario::shape();
        Some(relation_of(&stack, &roots))
    }
}

/// Two statically disjoint clusters sharing one runtime: the Figure 1
/// diamond (P, Q, R, S; computations `ka` via P and `kb` via Q) next to an
/// independent two-protocol chain (X → Y; computation `kc`).
///
/// The conflict matrix proves every diamond protocol independent of the
/// chain, so a DPOR search armed with the scenario's
/// [`StaticIndependence`] relation never seeds backtrack points that
/// merely reorder `kc` against the diamond: the chain multiplies the
/// exhaustive schedule space but (mostly) not the reduced one. Under
/// [`ScenarioPolicy::Unsync`] the diamond still hides the paper's run
/// `r3`; the chain itself is race-free under every policy.
pub struct DisjointClustersScenario {
    policy: ScenarioPolicy,
}

impl DisjointClustersScenario {
    /// The diamond-plus-chain workload under `policy`.
    pub fn new(policy: ScenarioPolicy) -> DisjointClustersScenario {
        DisjointClustersScenario { policy }
    }

    /// The stack *shape* (registration order matches [`Scenario::run`]'s
    /// stack) plus the three root events, for static analysis.
    fn shape() -> (Stack, [EventType; 3]) {
        let mut b = StackBuilder::new();
        let p = b.protocol("P");
        let q = b.protocol("Q");
        let r = b.protocol("R");
        let s = b.protocol("S");
        let x = b.protocol("X");
        let y = b.protocol("Y");
        let a0 = b.event("a0");
        let b0 = b.event("b0");
        let to_r = b.event("r");
        let to_s = b.event("s");
        let x0 = b.event("x0");
        let to_y = b.event("y");
        b.bind_with_triggers(a0, p, "P", &[to_r], |_, _| Ok(()));
        b.bind_with_triggers(b0, q, "Q", &[to_r], |_, _| Ok(()));
        b.bind_with_triggers(to_r, r, "R", &[to_s], |_, _| Ok(()));
        b.bind_with_triggers(to_s, s, "S", &[], |_, _| Ok(()));
        b.bind_with_triggers(x0, x, "X", &[to_y], |_, _| Ok(()));
        b.bind_with_triggers(to_y, y, "Y", &[], |_, _| Ok(()));
        (b.build(), [a0, b0, x0])
    }
}

impl Scenario for DisjointClustersScenario {
    fn name(&self) -> &'static str {
        match self.policy {
            ScenarioPolicy::Unsync => "disjoint-clusters/unsync",
            ScenarioPolicy::VcaBasic => "disjoint-clusters/vca-basic",
            ScenarioPolicy::VcaBound => "disjoint-clusters/vca-bound",
            ScenarioPolicy::VcaRoute => "disjoint-clusters/vca-route",
            ScenarioPolicy::Serial => "disjoint-clusters/serial",
            ScenarioPolicy::TwoPhase => "disjoint-clusters/two-phase",
        }
    }

    fn run(&self, hook: Arc<dyn SchedHook>) -> RunReport {
        let mut b = StackBuilder::new();
        let p = b.protocol("P");
        let q = b.protocol("Q");
        let r = b.protocol("R");
        let s = b.protocol("S");
        let x = b.protocol("X");
        let y = b.protocol("Y");
        let a0 = b.event("a0");
        let b0 = b.event("b0");
        let to_r = b.event("r");
        let to_s = b.event("s");
        let x0 = b.event("x0");
        let to_y = b.event("y");
        let r_trace = ProtocolState::new(r, Vec::<u64>::new());
        let s_trace = ProtocolState::new(s, Vec::<u64>::new());
        let x_count = ProtocolState::new(x, 0u64);
        let y_count = ProtocolState::new(y, 0u64);

        let h_p = b.bind_with_triggers(a0, p, "P", &[to_r], move |ctx, ev| {
            ctx.trigger(to_r, ev.clone())
        });
        let h_q = b.bind_with_triggers(b0, q, "Q", &[to_r], move |ctx, ev| {
            ctx.trigger(to_r, ev.clone())
        });
        let h_r = {
            let tr = r_trace.clone();
            b.bind_with_triggers(to_r, r, "R", &[to_s], move |ctx, ev| {
                tr.with(ctx, |t| t.push(ctx.comp_id()));
                ctx.trigger(to_s, ev.clone())
            })
        };
        let h_s = {
            let ts = s_trace.clone();
            b.bind_with_triggers(to_s, s, "S", &[], move |ctx, _| {
                ts.with(ctx, |t| t.push(ctx.comp_id()));
                Ok(())
            })
        };
        let h_x = {
            let xc = x_count.clone();
            b.bind_with_triggers(x0, x, "X", &[to_y], move |ctx, _| {
                xc.with(ctx, |c| *c += 1);
                ctx.trigger(to_y, EventData::empty())
            })
        };
        let h_y = {
            let yc = y_count.clone();
            b.bind_with_triggers(to_y, y, "Y", &[], move |ctx, _| {
                yc.with(ctx, |c| *c += 1);
                Ok(())
            })
        };

        let rt = Runtime::with_hook(b.build(), RuntimeConfig::recording(), hook);
        let policy = self.policy;
        let spawn_one = |ev: EventType, decl: &[ProtocolId], pat: &RoutePattern| {
            let body = move |ctx: &Ctx| ctx.trigger(ev, EventData::empty());
            match policy {
                ScenarioPolicy::Unsync => rt.spawn(Decl::Unsync, body),
                ScenarioPolicy::VcaBasic => rt.spawn(Decl::Basic(decl), body),
                ScenarioPolicy::VcaBound => {
                    let bounds: Vec<(ProtocolId, u64)> = decl.iter().map(|&pr| (pr, 1)).collect();
                    rt.spawn(Decl::Bound(&bounds), body)
                }
                ScenarioPolicy::VcaRoute => rt.spawn(Decl::Route(pat), body),
                ScenarioPolicy::Serial => rt.spawn(Decl::Serial, body),
                ScenarioPolicy::TwoPhase => rt.spawn(Decl::TwoPhase(decl), body),
            }
        };
        let a_pat = RoutePattern::new().root(h_p).edge(h_p, h_r).edge(h_r, h_s);
        let b_pat = RoutePattern::new().root(h_q).edge(h_q, h_r).edge(h_r, h_s);
        let c_pat = RoutePattern::new().root(h_x).edge(h_x, h_y);
        spawn_one(a0, &[p, r, s], &a_pat);
        spawn_one(b0, &[q, r, s], &b_pat);
        spawn_one(x0, &[x, y], &c_pat);
        rt.quiesce();

        let chain_ok = x_count.snapshot() == 1 && y_count.snapshot() == 1;
        RunReport {
            history: rt.history(),
            invariant_violation: (!chain_ok).then(|| "chain cluster lost a write".to_string()),
        }
    }

    fn static_independence(&self) -> Option<StaticIndependence> {
        let (stack, roots) = DisjointClustersScenario::shape();
        Some(relation_of(&stack, &roots))
    }
}

/// The OCC rollback search: `threads` computations each increment one
/// shared [`OccCell`](samoa_core::optimistic::OccCell) through the
/// optimistic runtime, with validation, commit, and retry exposed as
/// controlled yield points — the explorer steers which transaction
/// validates first, driving conflicting attempts down the abort/retry
/// path.
///
/// Two variants:
///
/// * **buggy** (`OccScenario::lost_update`): the increment reads the
///   committed value *outside* the transaction and writes `v + 1` inside
///   it. A retry re-runs only the transaction body, so the stale read
///   survives rollback and a schedule that aborts one writer loses its
///   update — the final count comes up short. The invariant
///   `final == threads` catches it.
/// * **correct** (`OccScenario::serialised`): the read happens inside the
///   transaction, so every retry re-reads. No schedule loses an update,
///   and backward validation guarantees global progress: an attempt only
///   aborts because some *other* transaction committed, so per-computation
///   retries are bounded by `threads − 1`. The scenario checks that bound
///   too — a livelock probe on the rollback path.
pub struct OccScenario {
    threads: usize,
    buggy: bool,
}

impl OccScenario {
    /// The buggy variant: stale read outside the transaction.
    pub fn lost_update(threads: usize) -> OccScenario {
        assert!(threads >= 2, "a lost update needs at least two writers");
        OccScenario {
            threads,
            buggy: true,
        }
    }

    /// The correct variant: read inside the transaction, retries bounded.
    pub fn serialised(threads: usize) -> OccScenario {
        assert!(threads >= 2, "contention needs at least two writers");
        OccScenario {
            threads,
            buggy: false,
        }
    }
}

/// Resource the OCC workers signal completion on (disjoint from any real
/// computation id).
const OCC_JOIN: SchedResource = SchedResource::Done(u64::MAX);

impl Scenario for OccScenario {
    fn name(&self) -> &'static str {
        if self.buggy {
            "occ/lost-update"
        } else {
            "occ/serialised"
        }
    }

    fn run(&self, hook: Arc<dyn SchedHook>) -> RunReport {
        use samoa_core::optimistic::{OccCell, OccRuntime};
        use std::sync::atomic::{AtomicU64, Ordering};

        let rt = OccRuntime::with_hook(hook.clone());
        let cell = OccCell::new(0u64);
        let finished = Arc::new(AtomicU64::new(0));
        let max_retries = Arc::new(AtomicU64::new(0));

        let mut handles = Vec::with_capacity(self.threads);
        for _ in 0..self.threads {
            let token = hook.on_thread_spawn();
            let hook = Arc::clone(&hook);
            let rt = rt.clone();
            let cell = cell.clone();
            let finished = Arc::clone(&finished);
            let max_retries = Arc::clone(&max_retries);
            let buggy = self.buggy;
            handles.push(std::thread::spawn(move || {
                hook.on_thread_start(token);
                let (_, report) = if buggy {
                    // Stale read: taken once, outside the transaction, so
                    // a rollback re-runs the write against an old value.
                    let v = cell.read_committed(|c| *c);
                    rt.execute(|tx| {
                        cell.write(tx, |c| *c = v + 1);
                        Ok(())
                    })
                } else {
                    rt.execute(|tx| {
                        let v = cell.read(tx, |c| *c);
                        cell.write(tx, |c| *c = v + 1);
                        Ok(())
                    })
                }
                .expect("occ increment cannot fail");
                max_retries.fetch_max(report.retries, Ordering::Relaxed);
                finished.fetch_add(1, Ordering::Relaxed);
                // Wake the main thread; we still hold the turn, so the
                // count is visible before anyone re-checks it.
                hook.signal(OCC_JOIN);
                hook.on_thread_exit();
            }));
        }
        // Cooperative join: re-check then park. Workers only run while
        // this thread is blocked, so check-then-block cannot lose a
        // wake-up.
        while finished.load(Ordering::Relaxed) < self.threads as u64 {
            hook.block(OCC_JOIN);
        }
        for h in handles {
            h.join().expect("occ worker panicked");
        }

        let total = cell.read_committed(|c| *c);
        let mut bad = None;
        if total != self.threads as u64 {
            bad = Some(format!(
                "lost update: {} increments committed {total}",
                self.threads
            ));
        } else if max_retries.load(Ordering::Relaxed) >= self.threads as u64 {
            bad = Some(format!(
                "livelock: a transaction retried {} times with only {} writers",
                max_retries.load(Ordering::Relaxed),
                self.threads
            ));
        }
        RunReport {
            history: History::default(),
            invariant_violation: bad,
        }
    }
}

/// The §3 view-change race over a manual [`SimNet`]: a broadcast
/// computation reads the current view, then stamps the channel epoch into
/// the outgoing message, while a concurrent view-change computation
/// increments both. Consistency requires every message on the wire to carry
/// `view == epoch`; without isolation the broadcast can read the old view
/// and the *new* epoch.
///
/// Delivery is folded into the controlled schedule: the manual network is
/// pumped from the scenario's own (controlled) thread, so the whole run —
/// including what site 1 receives — is a pure function of the choice
/// sequence and the network seed.
pub struct ViewChangeScenario {
    policy: ScenarioPolicy,
    net_seed: u64,
    trace: Option<Arc<TraceBuffer>>,
}

impl ViewChangeScenario {
    /// A view-change race under `policy`, network delays drawn from
    /// `net_seed`.
    pub fn new(policy: ScenarioPolicy, net_seed: u64) -> ViewChangeScenario {
        ViewChangeScenario {
            policy,
            net_seed,
            trace: None,
        }
    }

    /// Like [`new`](ViewChangeScenario::new), but each run's runtime also
    /// emits into a shared [`TraceBuffer`] — the feedback channel
    /// [`Strategy::Guided`](crate::explorer::Strategy::Guided) drains to
    /// steer the next schedule.
    pub fn traced(policy: ScenarioPolicy, net_seed: u64) -> ViewChangeScenario {
        ViewChangeScenario {
            policy,
            net_seed,
            trace: Some(TraceBuffer::new()),
        }
    }

    /// The stack *shape* (registration order matches [`Scenario::run`]'s
    /// stack) plus the root events, for static analysis.
    fn shape() -> (Stack, [EventType; 2]) {
        let mut b = StackBuilder::new();
        let p_view = b.protocol("View");
        let p_chan = b.protocol("Chan");
        let bcast = b.event("bcast");
        let send = b.event("send");
        let vchange = b.event("vchange");
        b.bind_with_triggers(bcast, p_view, "bcast", &[send], |_, _| Ok(()));
        b.bind_with_triggers(send, p_chan, "chan.send", &[], |_, _| Ok(()));
        let echange = b.event("echange");
        b.bind_with_triggers(vchange, p_view, "vchange", &[echange], |_, _| Ok(()));
        b.bind_with_triggers(echange, p_chan, "echange", &[], |_, _| Ok(()));
        (b.build(), [bcast, vchange])
    }
}

impl Scenario for ViewChangeScenario {
    fn name(&self) -> &'static str {
        match self.policy {
            ScenarioPolicy::Unsync => "view-change/unsync",
            ScenarioPolicy::VcaBasic => "view-change/vca-basic",
            ScenarioPolicy::VcaBound => "view-change/vca-bound",
            ScenarioPolicy::VcaRoute => "view-change/vca-route",
            ScenarioPolicy::Serial => "view-change/serial",
            ScenarioPolicy::TwoPhase => "view-change/two-phase",
        }
    }

    fn run(&self, hook: Arc<dyn SchedHook>) -> RunReport {
        let net = SimNet::new_manual(2, NetConfig::fast(self.net_seed));
        let received: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        {
            let received = Arc::clone(&received);
            net.handle().register(SiteId(1), move |dg| {
                let b = &dg.payload;
                if b.len() == 16 {
                    let view = u64::from_be_bytes(b[0..8].try_into().unwrap());
                    let epoch = u64::from_be_bytes(b[8..16].try_into().unwrap());
                    received.lock().push((view, epoch));
                }
            });
        }

        let mut b = StackBuilder::new();
        let p_view = b.protocol("View");
        let p_chan = b.protocol("Chan");
        let bcast = b.event("bcast");
        let send = b.event("send");
        let vchange = b.event("vchange");
        let view = ProtocolState::new(p_view, 0u64);
        let chan = ProtocolState::new(p_chan, 0u64);

        // Broadcast: read the view under View, then hand off to the channel
        // layer which stamps the epoch and emits the datagram.
        let h_b = {
            let view = view.clone();
            b.bind_with_triggers(bcast, p_view, "bcast", &[send], move |ctx, _| {
                let v = view.read_with(ctx, |v| *v);
                ctx.trigger(send, v)
            })
        };
        let h_s = {
            let chan = chan.clone();
            let handle = net.handle();
            b.bind_with_triggers(send, p_chan, "chan.send", &[], move |ctx, ev| {
                let v: &u64 = ev.expect(send)?;
                let e = chan.read_with(ctx, |e| *e);
                let mut payload = Vec::with_capacity(16);
                payload.extend_from_slice(&v.to_be_bytes());
                payload.extend_from_slice(&e.to_be_bytes());
                handle.send(SiteId(0), SiteId(1), Bytes::from(payload));
                Ok(())
            })
        };
        // View change: bump the view, then (next handler down) the channel
        // epoch — the window between the two writes is the race.
        let echange = b.event("echange");
        let h_v = {
            let view = view.clone();
            b.bind_with_triggers(vchange, p_view, "vchange", &[echange], move |ctx, _| {
                view.with(ctx, |v| *v += 1);
                ctx.trigger(echange, EventData::empty())
            })
        };
        let h_e = {
            let chan = chan.clone();
            b.bind_with_triggers(echange, p_chan, "echange", &[], move |ctx, _| {
                chan.with(ctx, |e| *e += 1);
                Ok(())
            })
        };

        let rt = match &self.trace {
            Some(sink) => Runtime::with_hook_and_trace(
                b.build(),
                RuntimeConfig::recording(),
                hook,
                sink.clone(),
            ),
            None => Runtime::with_hook(b.build(), RuntimeConfig::recording(), hook),
        };
        let policy = self.policy;
        let spawn_one = |ev: EventType, decl: &[ProtocolId], pat: &RoutePattern| {
            let body = move |ctx: &Ctx| ctx.trigger(ev, EventData::empty());
            match policy {
                ScenarioPolicy::Unsync => rt.spawn(Decl::Unsync, body),
                ScenarioPolicy::VcaBasic => rt.spawn(Decl::Basic(decl), body),
                ScenarioPolicy::VcaBound => {
                    let bounds: Vec<(ProtocolId, u64)> = decl.iter().map(|&p| (p, 1)).collect();
                    rt.spawn(Decl::Bound(&bounds), body)
                }
                ScenarioPolicy::VcaRoute => rt.spawn(Decl::Route(pat), body),
                ScenarioPolicy::Serial => rt.spawn(Decl::Serial, body),
                ScenarioPolicy::TwoPhase => rt.spawn(Decl::TwoPhase(decl), body),
            }
        };
        let bcast_pat = RoutePattern::new().root(h_b).edge(h_b, h_s);
        let vc_pat = RoutePattern::new().root(h_v).edge(h_v, h_e);
        let _kb = spawn_one(bcast, &[p_view, p_chan], &bcast_pat);
        let _kv = spawn_one(vchange, &[p_view, p_chan], &vc_pat);
        rt.quiesce();
        // Deliver on the controlled thread; callbacks only append to the
        // collector, so ordering beyond the seed does not matter here.
        net.handle().pump_all();

        let bad = received
            .lock()
            .iter()
            .find(|(v, e)| v != e)
            .map(|(v, e)| format!("message on the wire with view {v} != epoch {e}"));
        RunReport {
            history: rt.history(),
            invariant_violation: bad,
        }
    }

    fn static_independence(&self) -> Option<StaticIndependence> {
        let (stack, roots) = ViewChangeScenario::shape();
        Some(relation_of(&stack, &roots))
    }

    fn trace_buffer(&self) -> Option<Arc<TraceBuffer>> {
        self.trace.clone()
    }
}

/// The transport sliding window under a controlled schedule: two concurrent
/// sends from site 0 to site 1 over a manual network, with timers off and
/// delivery pumped from the controlled main thread. Invariants: the
/// endpoint histories stay serializable (checked by the explorer) and both
/// messages are delivered intact.
pub struct TransportWindowScenario {
    policy: TransportPolicy,
    net_seed: u64,
}

impl TransportWindowScenario {
    /// A two-message window workload under `policy`.
    pub fn new(policy: TransportPolicy, net_seed: u64) -> TransportWindowScenario {
        TransportWindowScenario { policy, net_seed }
    }
}

impl Scenario for TransportWindowScenario {
    fn name(&self) -> &'static str {
        match self.policy {
            TransportPolicy::Unsync => "transport-window/unsync",
            TransportPolicy::Serial => "transport-window/serial",
            TransportPolicy::Basic => "transport-window/basic",
        }
    }

    fn run(&self, hook: Arc<dyn SchedHook>) -> RunReport {
        let net = SimNet::new_manual(2, NetConfig::fast(self.net_seed));
        let cfg = TransportConfig {
            policy: self.policy,
            mtu: 16,
            window: 4,
            enable_timers: false,
            ..TransportConfig::default()
        };
        let e0 = Endpoint::new_hooked(net.handle(), SiteId(0), cfg.clone(), hook.clone(), true);
        let e1 = Endpoint::new_hooked(net.handle(), SiteId(1), cfg, hook, false);

        let msg_a: Vec<u8> = (0u8..40).collect();
        let msg_b: Vec<u8> = (100u8..140).collect();
        e0.send(SiteId(1), msg_a.clone());
        e0.send(SiteId(1), msg_b.clone());
        // Settle: drain both runtimes, pump deliveries (which spawn new
        // computations), repeat until nothing is in flight.
        loop {
            e0.runtime().quiesce();
            e1.runtime().quiesce();
            if net.handle().pump_all() == 0 {
                break;
            }
        }

        let delivered = e1.delivered();
        let payloads: Vec<Vec<u8>> = delivered.iter().map(|(_, b)| b.to_vec()).collect();
        let mut bad = None;
        if !payloads.contains(&msg_a) || !payloads.contains(&msg_b) {
            bad = Some(format!(
                "expected both messages delivered, got {} messages",
                payloads.len()
            ));
        }
        RunReport {
            history: e0.runtime().history(),
            invariant_violation: bad,
        }
    }
}
