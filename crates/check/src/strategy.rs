//! Schedule-selection strategies: how the [`Controller`] picks among ready
//! threads at each recorded decision point.
//!
//! Three families, mirroring the systematic-concurrency-testing literature:
//!
//! * [`RandomDecider`] — a seeded uniform random walk over the schedule
//!   space. Cheap, surprisingly effective, trivially replayable via the
//!   recorded trace.
//! * [`PctDecider`] — Probabilistic Concurrency Testing (Burckhardt et al.,
//!   ASPLOS 2010): threads get random priorities, the scheduler always runs
//!   the highest-priority ready thread, and `depth − 1` randomly placed
//!   priority-*change points* demote the running thread. For a bug of depth
//!   `d` this gives a provable detection probability `≥ 1/(n·k^(d−1))`.
//! * [`PrefixDecider`] — deterministic: follow a recorded choice list, then
//!   always pick index 0. This is both the witness-replay mechanism and the
//!   engine of exhaustive bounded search (the explorer advances prefixes in
//!   depth-first order).
//!
//! [`Controller`]: crate::controller::Controller

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Chooses which ready thread runs at a recorded decision point.
///
/// `ready` is the sorted list of ready thread ids (always `len() ≥ 2`);
/// `step` is the number of decisions recorded so far. The return value is an
/// *index into `ready`*, not a thread id; out-of-range returns are clamped
/// by the controller.
pub trait Decider: Send {
    /// Pick `ready[return]` to run next.
    fn choose(&mut self, ready: &[usize], step: usize) -> usize;

    /// One scheduling step is about to happen — *recorded or forced*. The
    /// controller calls this on every step (before any [`choose`]), giving
    /// step-indexed strategies the same clock the step budget counts: PCT's
    /// depth bound is over yield points, not just decisions with ≥ 2 ready
    /// threads, so its change points must be placed on this clock. The
    /// default does nothing.
    ///
    /// [`choose`]: Decider::choose
    fn note_step(&mut self) {}
}

/// Seeded uniform random walk.
pub struct RandomDecider {
    rng: StdRng,
}

impl RandomDecider {
    /// A random walk reproducible from `seed`.
    pub fn new(seed: u64) -> RandomDecider {
        RandomDecider {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Decider for RandomDecider {
    fn choose(&mut self, ready: &[usize], _step: usize) -> usize {
        self.rng.gen_range(0..ready.len())
    }
}

/// Probabilistic Concurrency Testing: priority scheduling with `depth − 1`
/// random priority-change points.
pub struct PctDecider {
    rng: StdRng,
    /// Priority per thread id; higher runs first. Indexed lazily — threads
    /// get a random priority the first time they appear ready.
    prio: Vec<Option<u64>>,
    /// Scheduling steps (the [`Decider::note_step`] clock — *all* yield
    /// points, forced moves included) at which the running thread's
    /// priority drops.
    change_points: Vec<usize>,
    /// Scheduling steps seen so far; `steps − 1` is the 0-based index of
    /// the step currently being decided.
    steps: usize,
}

impl PctDecider {
    /// A PCT schedule with `depth` (`d ≥ 1`): `d − 1` change points placed
    /// uniformly over the first `horizon` decision steps.
    pub fn new(seed: u64, depth: usize, horizon: usize) -> PctDecider {
        let mut rng = StdRng::seed_from_u64(seed);
        let horizon = horizon.max(1);
        let change_points = (0..depth.saturating_sub(1))
            .map(|_| rng.gen_range(0..horizon))
            .collect();
        PctDecider {
            rng,
            prio: Vec::new(),
            change_points,
            steps: 0,
        }
    }

    /// A *trace-guided* PCT schedule: identical priority/demotion
    /// mechanics, but the `depth − 1` change points are drawn from `hot` —
    /// scheduling steps a previous run's trace showed touching the most
    /// contended microprotocol — instead of uniformly over the horizon.
    /// With no hot steps yet (the first run, or a trace with no admission
    /// activity) this degenerates to plain [`PctDecider::new`].
    ///
    /// PCT's detection bound holds because change-point *placement* is
    /// arbitrary in the proof; steering it toward steps that touch the
    /// contended protocol spends the same budget where reorderings can
    /// actually matter.
    pub fn guided(seed: u64, depth: usize, horizon: usize, hot: &[usize]) -> PctDecider {
        let mut rng = StdRng::seed_from_u64(seed);
        let horizon = horizon.max(1);
        let change_points = (0..depth.saturating_sub(1))
            .map(|_| {
                if hot.is_empty() {
                    rng.gen_range(0..horizon)
                } else {
                    hot[rng.gen_range(0..hot.len())]
                }
            })
            .collect();
        PctDecider {
            rng,
            prio: Vec::new(),
            change_points,
            steps: 0,
        }
    }

    fn prio_of(&mut self, tid: usize) -> u64 {
        if tid >= self.prio.len() {
            self.prio.resize(tid + 1, None);
        }
        // Initial priorities live in the upper half so change-point demotions
        // (lower half) always rank below every undemoted thread.
        *self.prio[tid].get_or_insert_with(|| (1 << 32) | self.rng.gen_range(0u64..(1 << 31)))
    }
}

impl Decider for PctDecider {
    fn choose(&mut self, ready: &[usize], _step: usize) -> usize {
        let best = (0..ready.len())
            .max_by_key(|&i| self.prio_of(ready[i]))
            .expect("ready is non-empty");
        // Change points live on the scheduling-step clock (every yield
        // point, forced moves included — see `note_step`), matching the
        // PCT depth bound; `_step` only counts recorded decisions. A point
        // passed during a forced move fires at the next real decision.
        while let Some(i) = self.change_points.iter().position(|&c| c < self.steps) {
            self.change_points.swap_remove(i);
            // Demote the thread we are about to run below all base
            // priorities; unique low values keep the order total.
            let demoted = self.rng.gen_range(0u64..(1 << 30));
            self.prio[ready[best]] = Some(demoted);
        }
        best
    }

    fn note_step(&mut self) {
        self.steps += 1;
    }
}

/// Follow a fixed choice list; pick index 0 once it runs out.
///
/// Replaying a [`Witness`](crate::explorer::Witness) and enumerating the
/// exhaustive search tree are both prefix-following: the explorer extends or
/// increments the prefix between runs, and past the prefix the schedule is
/// deterministic (first ready thread).
pub struct PrefixDecider {
    prefix: Vec<u32>,
}

impl PrefixDecider {
    /// Follow `prefix`, then always choose index 0.
    pub fn new(prefix: Vec<u32>) -> PrefixDecider {
        PrefixDecider { prefix }
    }
}

impl Decider for PrefixDecider {
    fn choose(&mut self, ready: &[usize], step: usize) -> usize {
        let want = self.prefix.get(step).copied().unwrap_or(0) as usize;
        want.min(ready.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_decider_is_seed_deterministic() {
        let ready = [0usize, 1, 2, 3];
        let seq = |seed| {
            let mut d = RandomDecider::new(seed);
            (0..32).map(|s| d.choose(&ready, s)).collect::<Vec<_>>()
        };
        assert_eq!(seq(9), seq(9));
        assert_ne!(seq(9), seq(10));
        assert!(seq(9).iter().all(|&i| i < 4));
    }

    #[test]
    fn prefix_decider_follows_then_zero() {
        let mut d = PrefixDecider::new(vec![2, 1]);
        let ready = [5usize, 6, 7];
        assert_eq!(d.choose(&ready, 0), 2);
        assert_eq!(d.choose(&ready, 1), 1);
        assert_eq!(d.choose(&ready, 2), 0);
        // Clamped when the recorded choice exceeds what's ready now.
        let mut d = PrefixDecider::new(vec![9]);
        assert_eq!(d.choose(&[1usize, 2], 0), 1);
    }

    #[test]
    fn pct_runs_highest_priority_consistently() {
        // With no change points (depth 1) PCT is a fixed priority order:
        // the same thread wins every step it is ready.
        let mut d = PctDecider::new(3, 1, 100);
        let ready = [0usize, 1, 2];
        d.note_step();
        let first = d.choose(&ready, 0);
        for s in 1..20 {
            d.note_step();
            assert_eq!(d.choose(&ready, s), first);
        }
    }

    #[test]
    fn pct_change_point_demotes() {
        // Depth 2 with a 1-step horizon forces the change point to step 0:
        // whoever ran at step 0 must lose to the other thread afterwards.
        let mut d = PctDecider::new(4, 2, 1);
        let ready = [0usize, 1];
        d.note_step();
        let first = d.choose(&ready, 0);
        d.note_step();
        let second = d.choose(&ready, 1);
        assert_ne!(first, second, "change point must demote the running thread");
        for s in 2..10 {
            d.note_step();
            assert_eq!(d.choose(&ready, s), second);
        }
    }

    #[test]
    fn guided_pct_places_change_points_on_hot_steps() {
        // All hot mass on step 0: the demotion must fire at the second
        // decision regardless of seed, like the 1-step-horizon case.
        for seed in 0..8 {
            let mut d = PctDecider::guided(seed, 2, 1000, &[0]);
            let ready = [0usize, 1];
            d.note_step();
            let first = d.choose(&ready, 0);
            d.note_step();
            let second = d.choose(&ready, 1);
            assert_ne!(first, second, "hot change point must demote (seed {seed})");
        }
    }

    #[test]
    fn guided_pct_without_hot_steps_matches_uniform() {
        // Empty hot set ⇒ byte-identical schedule to plain PCT.
        let ready = [0usize, 1, 2];
        let run = |mut d: PctDecider| {
            (0..32)
                .map(|s| {
                    d.note_step();
                    d.choose(&ready, s)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(
            run(PctDecider::guided(11, 3, 64, &[])),
            run(PctDecider::new(11, 3, 64))
        );
    }

    #[test]
    fn pct_change_point_on_forced_step_fires_at_next_decision() {
        // The change point (step 0) lands on a forced move — no decision
        // there — but it must still demote at the next real decision: the
        // depth bound is over *all* yield points, not recorded choices.
        let mut d = PctDecider::new(4, 2, 1);
        let ready = [0usize, 1];
        d.note_step(); // step 0: forced move, choose not called
        d.note_step(); // step 1: a real decision
        let first = d.choose(&ready, 0);
        d.note_step();
        let second = d.choose(&ready, 1);
        assert_ne!(first, second, "pending change point must fire");
        for s in 2..10 {
            d.note_step();
            assert_eq!(d.choose(&ready, s), second);
        }
    }
}
