//! Deterministic fault-schedule exploration of the real proto stack:
//! DPOR over the combined schedule × fault space.
//!
//! [`ClusterScenario`] boots a hooked multi-site `samoa-proto` cluster over
//! a **manual** [`SimNet`] with a shared [`ProtoClock::manual`] and all
//! wall-clock timers off, then promotes every environment move to a
//! controller decision point via
//! [`SchedHook::choose_external`](samoa_core::SchedHook::choose_external):
//!
//! * **deliver** one in-flight datagram (any of them — delivery *order* is
//!   the schedule dimension),
//! * **drop** or **duplicate** an in-flight datagram (gated by the
//!   [`FaultBudget`]),
//! * **crash** a site (budget-gated),
//! * **partition** the network / **heal** it (budget-gated),
//! * **tick** — advance virtual time past the retransmission timeout and
//!   inject a retransmit tick into every live node (the recovery path for
//!   drops and crashes, bounded by a tick allowance).
//!
//! Each move carries a [`SchedResource`] footprint, so
//! [`Strategy::Dpor`](crate::Strategy::Dpor) treats environment moves as
//! pseudo-threads and explores only non-commuting alternatives: delivering
//! two datagrams to *different* sites commutes; delivering versus dropping
//! the *same* datagram does not. Between moves every node runtime is
//! quiesced, so the protocol computations a move triggers are themselves
//! interleaved under the same controller.
//!
//! The run is **schedule-pure**: everything observable is a function of the
//! choice sequence and the network seed, which is what makes cluster-level
//! witnesses replay byte-identically. Termination is structural — every
//! move consumes an in-flight datagram, a budget token, or a tick token,
//! and with timers off the workload's traffic is finite.

use std::collections::HashSet;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use samoa_core::sched::{ExternalChoice, SchedResource};
use samoa_core::{History, SchedHook};
use samoa_net::{NetConfig, NetHandle, SimNet, SiteId};
use samoa_proto::{Node, NodeConfig, ProtoClock, StackPolicy};

use crate::scenarios::{RunReport, Scenario};

/// Pseudo-thread id of "crash site `k`" (`CRASH_BASE + k`). Pseudo-ids
/// live far above real registration indices, so they never collide with
/// the controller's thread ids.
const CRASH_BASE: u32 = 1024;
/// Pseudo-thread id of the partition move.
const PARTITION_ID: u32 = 1536;
/// Pseudo-thread id of the heal move.
const HEAL_ID: u32 = 1537;
/// Pseudo-thread id of the virtual-time tick move.
const TICK_ID: u32 = 1600;
/// Base of the per-datagram ids: datagram `seq` owns the id range
/// `MSG_BASE + 4*seq + {0 deliver, 1 drop, 2 duplicate}`. Transport
/// sequence numbers are a pure function of the send history, so these ids
/// are stable across replays.
const MSG_BASE: u32 = 4096;

/// How many of each fault the explorer may inject in one run. Every fault
/// move consumes one token; a zero budget reduces [`ClusterScenario`] to
/// pure schedule (delivery-order) exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultBudget {
    /// Site crashes (a crashed site is silenced at the network layer).
    pub crashes: u32,
    /// Targeted datagram drops.
    pub drops: u32,
    /// Targeted datagram duplications.
    pub duplicates: u32,
    /// Network partitions (the split is site 0 versus the rest; each
    /// partition move enables one budget-free heal move).
    pub partitions: u32,
}

impl FaultBudget {
    /// The zero budget: schedule exploration only.
    pub fn none() -> FaultBudget {
        FaultBudget::default()
    }

    /// One crash plus one drop — the acceptance floor for the bounded
    /// cluster sweep.
    pub fn crash_and_drop() -> FaultBudget {
        FaultBudget {
            crashes: 1,
            drops: 1,
            ..FaultBudget::default()
        }
    }

    /// Total tokens across all fault kinds.
    pub fn total(&self) -> u32 {
        self.crashes + self.drops + self.duplicates + self.partitions
    }
}

/// End-of-run cluster state captured for determinism checks: the replay
/// proptests assert that re-running a logged choice prefix reproduces this
/// probe bit-for-bit, not just the pass/fail verdict.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterProbe {
    /// Per-site KV digest ([`Node::kv_digest`]).
    pub kv_digests: Vec<u64>,
    /// Per-site abcast delivery log ([`Node::ab_delivered`]).
    pub ab_delivered: Vec<Vec<(SiteId, Bytes)>>,
    /// Which sites ended the run crashed.
    pub crashed: Vec<bool>,
    /// Environment moves taken.
    pub actions: u32,
}

/// The cluster-level fault-exploration scenario (see the module docs).
///
/// Invariants checked over the sites still live at the end of the run:
///
/// 1. **Exactly-once**: no site ab-delivers the same message twice
///    (workload payloads are unique).
/// 2. **Prefix agreement**: any two delivery logs agree on their common
///    prefix — the atomic-broadcast total order.
/// 3. **State agreement**: two sites that applied the same number of KV
///    commands have the same digest.
///
/// With the stack healthy no schedule or in-budget fault combination
/// violates these; the injected-bug constructors
/// ([`ClusterScenario::with_ab_order_bug`],
/// [`ClusterScenario::with_dedup_bug`]) re-introduce the races the stack's
/// own machinery is there to close, so the explorer can demonstrate a
/// minimised, replayable cluster-level witness.
pub struct ClusterScenario {
    sites: usize,
    policy: StackPolicy,
    net_seed: u64,
    budget: FaultBudget,
    ticks: u32,
    abcasts: usize,
    kv_puts: usize,
    ab_order_bug: bool,
    dedup_bug: bool,
    max_actions: u32,
    probe: Mutex<ClusterProbe>,
}

impl ClusterScenario {
    /// A `sites`-node cluster under `policy`, manual-network delays drawn
    /// from `net_seed`, faults limited by `budget`. Default workload: two
    /// abcasts (from sites 0 and 1) plus one KV put; two virtual-time
    /// ticks.
    pub fn new(
        sites: usize,
        policy: StackPolicy,
        net_seed: u64,
        budget: FaultBudget,
    ) -> ClusterScenario {
        assert!(sites >= 2, "a cluster scenario needs at least two sites");
        ClusterScenario {
            sites,
            policy,
            net_seed,
            budget,
            ticks: 2,
            abcasts: 2,
            kv_puts: 1,
            ab_order_bug: false,
            dedup_bug: false,
            max_actions: 600,
            probe: Mutex::new(ClusterProbe::default()),
        }
    }

    /// Override the workload: `abcasts` atomic broadcasts and `kv_puts`
    /// KV writes, round-robined over the sites.
    pub fn with_workload(mut self, abcasts: usize, kv_puts: usize) -> ClusterScenario {
        self.abcasts = abcasts;
        self.kv_puts = kv_puts;
        self
    }

    /// Override the virtual-time tick allowance (each tick advances the
    /// shared clock past the retransmission backoff cap and injects a
    /// retransmit tick into every live node).
    pub fn with_ticks(mut self, ticks: u32) -> ClusterScenario {
        self.ticks = ticks;
        self
    }

    /// Enable the injected **ordering bug**
    /// ([`NodeConfig::ab_order_enabled`] = false): abcast delivers
    /// decisions in arrival order, so a reordered `Decide` flood violates
    /// prefix agreement.
    pub fn with_ab_order_bug(mut self) -> ClusterScenario {
        self.ab_order_bug = true;
        self
    }

    /// Enable the injected **dedup knob** ([`NodeConfig::dedup_enabled`] =
    /// false): RelComm's at-most-once guarantee is off and the upper
    /// layers' uid dedup becomes load-bearing against duplicated frames.
    pub fn with_dedup_bug(mut self) -> ClusterScenario {
        self.dedup_bug = true;
        self
    }

    /// Cap on environment moves per run (backstop against pathological
    /// decider loops; well above what the default workload needs).
    pub fn with_max_actions(mut self, max_actions: u32) -> ClusterScenario {
        self.max_actions = max_actions;
        self
    }

    /// The probe captured by the most recent [`Scenario::run`].
    pub fn probe(&self) -> ClusterProbe {
        self.probe.lock().clone()
    }

    /// Enumerate the current environment moves in canonical (ascending
    /// pseudo-id) order.
    fn alternatives(
        &self,
        net: &NetHandle,
        crashed: &[bool],
        budget: &FaultBudget,
        ticks_left: u32,
        partitioned: bool,
        nodes: &[Arc<Node>],
    ) -> Vec<ExternalChoice> {
        let mut alts = Vec::new();
        let live = crashed.iter().filter(|c| !**c).count();
        if budget.crashes > 0 && live > 1 {
            for (i, c) in crashed.iter().enumerate() {
                if !*c {
                    alts.push(ExternalChoice::new(
                        CRASH_BASE + i as u32,
                        vec![SchedResource::NetSite(i as u16), SchedResource::FaultBudget],
                    ));
                }
            }
        }
        let all_sites = || {
            (0..self.sites)
                .map(|i| SchedResource::NetSite(i as u16))
                .collect::<Vec<_>>()
        };
        if partitioned {
            alts.push(ExternalChoice::new(HEAL_ID, all_sites()));
        } else if budget.partitions > 0 {
            let mut fp = all_sites();
            fp.push(SchedResource::FaultBudget);
            alts.push(ExternalChoice::new(PARTITION_ID, fp));
        }
        let retransmit_pending = nodes
            .iter()
            .enumerate()
            .any(|(i, n)| !crashed[i] && n.relcomm_pending() > 0);
        if ticks_left > 0 && retransmit_pending {
            let mut fp = vec![SchedResource::TimeWheel];
            fp.extend(
                crashed
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| !**c)
                    .map(|(i, _)| SchedResource::NetSite(i as u16)),
            );
            alts.push(ExternalChoice::new(TICK_ID, fp));
        }
        for dg in net.pending_datagrams() {
            let base = MSG_BASE + 4 * dg.seq as u32;
            alts.push(ExternalChoice::new(
                base,
                vec![SchedResource::Msg(dg.seq), SchedResource::NetSite(dg.to.0)],
            ));
            if budget.drops > 0 {
                alts.push(ExternalChoice::new(
                    base + 1,
                    vec![
                        SchedResource::Msg(dg.seq),
                        SchedResource::NetSite(dg.to.0),
                        SchedResource::FaultBudget,
                    ],
                ));
            }
            if budget.duplicates > 0 {
                alts.push(ExternalChoice::new(
                    base + 2,
                    vec![SchedResource::Msg(dg.seq), SchedResource::FaultBudget],
                ));
            }
        }
        alts
    }
}

/// Does `dg` cross the fixed partition split (site 0 versus the rest)?
fn crosses_split(from: SiteId, to: SiteId) -> bool {
    (from.0 == 0) != (to.0 == 0)
}

impl Scenario for ClusterScenario {
    fn name(&self) -> &'static str {
        if self.ab_order_bug {
            "cluster/ab-order-bug"
        } else if self.dedup_bug {
            "cluster/dedup-bug"
        } else {
            "cluster/faults"
        }
    }

    fn run(&self, hook: Arc<dyn SchedHook>) -> RunReport {
        let n = self.sites;
        let net = SimNet::new_manual(n, NetConfig::fast(self.net_seed));
        let clock = ProtoClock::manual();
        let mut cfg = NodeConfig::with_policy(self.policy);
        cfg.enable_timers = false;
        cfg.enable_fd = false;
        cfg.clock = clock.clone();
        cfg.dedup_enabled = !self.dedup_bug;
        cfg.ab_order_enabled = !self.ab_order_bug;
        let nodes: Vec<Arc<Node>> = (0..n as u16)
            .map(|i| Node::new_hooked(net.handle(), SiteId(i), cfg.clone(), Arc::clone(&hook)))
            .collect();

        // Workload: unique payloads, round-robined over the sites.
        for k in 0..self.abcasts {
            let site = k % n;
            nodes[site].abcast(format!("ab-{site}-{k}"));
        }
        for k in 0..self.kv_puts {
            let site = k % n;
            // Fire-and-forget: the pending handle would deadlock the
            // controlled thread if the command's decide gets dropped.
            drop(nodes[site].kv_put(format!("key-{k}"), format!("val-{site}-{k}")));
        }

        let h = net.handle();
        let mut crashed = vec![false; n];
        let mut budget = self.budget;
        let mut ticks_left = self.ticks;
        let mut partitioned = false;
        let mut actions = 0u32;
        // Each tick must clear RelComm's exponential backoff (rto << attempts,
        // capped at 16x) so a retransmission actually fires.
        let tick_advance = cfg.rto * 32;

        loop {
            // Let the computations triggered by the previous move finish
            // (their interleaving is explored by the same controller), so
            // the next enumeration sees a settled network.
            for node in &nodes {
                node.runtime().quiesce();
            }
            // Dead datagrams — to/from a crashed site, or across an active
            // partition — are discarded deterministically rather than
            // offered as no-op choices.
            for dg in h.pending_datagrams() {
                let dead = crashed[dg.to.index()]
                    || crashed[dg.from.index()]
                    || (partitioned && crosses_split(dg.from, dg.to));
                if dead {
                    h.drop_seq(dg.seq);
                }
            }
            if actions >= self.max_actions {
                break;
            }
            let alts = self.alternatives(&h, &crashed, &budget, ticks_left, partitioned, &nodes);
            if alts.is_empty() {
                break;
            }
            let pick = hook.choose_external(&alts).min(alts.len() - 1);
            let id = alts[pick].id;
            actions += 1;
            match id {
                PARTITION_ID => {
                    let group_a = [SiteId(0)];
                    let group_b: Vec<SiteId> = (1..n as u16).map(SiteId).collect();
                    h.partition(&[&group_a, &group_b]);
                    partitioned = true;
                    budget.partitions -= 1;
                }
                HEAL_ID => {
                    h.heal();
                    partitioned = false;
                }
                TICK_ID => {
                    clock.advance(tick_advance);
                    for (i, node) in nodes.iter().enumerate() {
                        if !crashed[i] {
                            node.inject_retransmit_tick();
                        }
                    }
                    ticks_left -= 1;
                }
                id if (CRASH_BASE..CRASH_BASE + n as u32).contains(&id) => {
                    let site = (id - CRASH_BASE) as usize;
                    h.crash(SiteId(site as u16));
                    crashed[site] = true;
                    budget.crashes -= 1;
                }
                id => {
                    let seq = ((id - MSG_BASE) / 4) as u64;
                    match (id - MSG_BASE) % 4 {
                        0 => {
                            h.pump_seq(seq);
                        }
                        1 => {
                            h.drop_seq(seq);
                            budget.drops -= 1;
                        }
                        _ => {
                            h.duplicate_seq(seq);
                            budget.duplicates -= 1;
                        }
                    }
                }
            }
        }

        // Invariants over the live sites.
        let live: Vec<usize> = (0..n).filter(|&i| !crashed[i]).collect();
        let logs: Vec<Vec<(SiteId, Bytes)>> = nodes.iter().map(|nd| nd.ab_delivered()).collect();
        let mut violation = None;
        for &i in &live {
            let mut seen = HashSet::new();
            for (s, b) in &logs[i] {
                if !seen.insert((*s, b.clone())) {
                    violation = Some(format!(
                        "exactly-once violated: site {i} ab-delivered {:?} from {s} twice",
                        String::from_utf8_lossy(b)
                    ));
                }
            }
        }
        if violation.is_none() {
            'pairs: for (a, &i) in live.iter().enumerate() {
                for &j in &live[a + 1..] {
                    let m = logs[i].len().min(logs[j].len());
                    if let Some(p) = (0..m).find(|&p| logs[i][p] != logs[j][p]) {
                        violation = Some(format!(
                            "prefix agreement violated: sites {i} and {j} diverge at \
                             position {p} ({:?} vs {:?})",
                            String::from_utf8_lossy(&logs[i][p].1),
                            String::from_utf8_lossy(&logs[j][p].1),
                        ));
                        break 'pairs;
                    }
                }
            }
        }
        if violation.is_none() {
            'kv: for (a, &i) in live.iter().enumerate() {
                for &j in &live[a + 1..] {
                    if nodes[i].kv_applied() == nodes[j].kv_applied()
                        && nodes[i].kv_digest() != nodes[j].kv_digest()
                    {
                        violation = Some(format!(
                            "state agreement violated: sites {i} and {j} applied {} KV \
                             commands each but digests differ",
                            nodes[i].kv_applied()
                        ));
                        break 'kv;
                    }
                }
            }
        }

        *self.probe.lock() = ClusterProbe {
            kv_digests: nodes.iter().map(|nd| nd.kv_digest()).collect(),
            ab_delivered: logs,
            crashed,
            actions,
        };
        RunReport {
            history: History::default(),
            invariant_violation: violation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hook that always picks the first (lowest-id) alternative and lets
    /// threads run freely — the uninstrumented baseline (every `SchedHook`
    /// method keeps its default).
    struct FirstHook;
    impl SchedHook for FirstHook {}

    #[test]
    fn healthy_cluster_first_choice_run_is_clean() {
        let s = ClusterScenario::new(3, StackPolicy::Basic, 7, FaultBudget::none());
        let report = s.run(Arc::new(FirstHook));
        assert_eq!(report.invariant_violation, None);
        let probe = s.probe();
        assert!(probe.actions > 0, "the run must take environment moves");
        assert_eq!(probe.crashed, vec![false; 3]);
        // All three sites delivered the full workload in the same order.
        assert_eq!(probe.ab_delivered[0].len(), 3);
        assert_eq!(probe.ab_delivered[0], probe.ab_delivered[1]);
        assert_eq!(probe.ab_delivered[1], probe.ab_delivered[2]);
        assert_eq!(probe.kv_digests[0], probe.kv_digests[1]);
    }

    #[test]
    fn first_choice_run_is_deterministic() {
        let s = ClusterScenario::new(3, StackPolicy::Basic, 11, FaultBudget::none());
        s.run(Arc::new(FirstHook));
        let first = s.probe();
        s.run(Arc::new(FirstHook));
        assert_eq!(s.probe(), first);
    }

    #[test]
    fn crash_budget_first_choice_crashes_a_site() {
        // With a crash token the lowest-id alternative is "crash site 0",
        // so the first-choice run exercises the crash path end to end.
        let s = ClusterScenario::new(
            3,
            StackPolicy::Basic,
            7,
            FaultBudget {
                crashes: 1,
                ..FaultBudget::default()
            },
        );
        let report = s.run(Arc::new(FirstHook));
        assert_eq!(report.invariant_violation, None);
        let probe = s.probe();
        assert_eq!(probe.crashed, vec![true, false, false]);
        // The two survivors still agree.
        assert_eq!(probe.ab_delivered[1], probe.ab_delivered[2]);
    }
}
