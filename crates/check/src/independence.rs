//! The static independence relation: the bridge from `samoa_core`'s
//! whole-stack conflict analysis to the dynamic checker's DPOR search.
//!
//! [`ConflictMatrix`](samoa_core::analysis::ConflictMatrix) decides, from
//! trigger metadata alone, which microprotocol *pairs* can ever contend:
//! two protocols conflict only if two analyzed roots have overlapping
//! footprints covering them. [`StaticIndependence`] re-expresses the
//! complement of that relation over [`SchedResource`]s, which is the
//! vocabulary [`dpor`](crate::dpor) reasons in:
//!
//! * `Version(p)`/`Lock(p)` resources map to protocol `p`; two protocol
//!   resources are independent iff the matrix says `p` and `q` can never
//!   conflict. This is *coarser* than plain resource disjointness on
//!   purpose — it holds for the **entire future** of any computation
//!   declared over those protocols, not just the next announced action,
//!   which is what makes pruning at un-initiated races sound.
//! * Any other pair is independent iff the resources are distinct (two
//!   different task queues, completion flags, or OCC cells are genuinely
//!   separate pieces of state; a shared one is not).
//!
//! The DPOR consumer ([`DporSearch::with_independence`]) uses the relation
//! where the classic algorithm is at its most conservative: when a race has
//! no ready initiator, instead of scheduling backtracks for *every* ready
//! thread it skips threads whose static seed footprint (announced at spawn,
//! an upper bound on everything the thread will ever touch) is independent
//! of the whole race window — such a thread commutes with the window and
//! can neither flip the race nor enable its initiator.
//!
//! [`DporSearch::with_independence`]: crate::dpor::DporSearch::with_independence

use samoa_core::analysis::ConflictMatrix;
use samoa_core::sched::SchedResource;

/// The statically-known independence relation over [`SchedResource`]s,
/// derived from a stack's [`ConflictMatrix`]. See the module docs.
#[derive(Debug, Clone)]
pub struct StaticIndependence {
    n: usize,
    /// Row-major copy of the matrix's may-conflict relation.
    conflict: Vec<bool>,
}

impl StaticIndependence {
    /// Export `matrix` as a resource-level independence relation.
    pub fn from_matrix(matrix: &ConflictMatrix) -> StaticIndependence {
        let n = matrix.protocol_count();
        let mut conflict = vec![false; n * n];
        for p in 0..n {
            for q in 0..n {
                conflict[p * n + q] = matrix.may_conflict_indices(p, q);
            }
        }
        StaticIndependence { n, conflict }
    }

    /// Can protocols with raw indices `p` and `q` ever contend?
    /// Out-of-range indices conservatively conflict.
    fn protos_conflict(&self, p: usize, q: usize) -> bool {
        if p >= self.n || q >= self.n {
            return true;
        }
        self.conflict[p * self.n + q]
    }

    /// The protocol index a resource stands for, if it is a protocol cell.
    fn proto_of(rs: SchedResource) -> Option<usize> {
        match rs {
            SchedResource::Version(p) | SchedResource::Lock(p) => Some(p as usize),
            _ => None,
        }
    }

    /// Are two resources *statically* independent — no execution can make
    /// their access order matter? Protocol cells defer to the matrix
    /// (`Version(p)` vs `Lock(q)` included: both stand for their protocol's
    /// whole admission state); everything else is independent iff distinct.
    pub fn resources_independent(&self, a: SchedResource, b: SchedResource) -> bool {
        match (Self::proto_of(a), Self::proto_of(b)) {
            (Some(p), Some(q)) => !self.protos_conflict(p, q),
            _ => a != b,
        }
    }

    /// Is every pair across the two resource sets statically independent?
    /// Empty sets are vacuously independent — callers must treat *unknown*
    /// footprints (no seed announced) as dependent before asking.
    pub fn sets_independent(&self, a: &[SchedResource], b: &[SchedResource]) -> bool {
        a.iter()
            .all(|&ra| b.iter().all(|&rb| self.resources_independent(ra, rb)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samoa_core::prelude::*;

    /// Two disjoint clusters: e1 -> a(P) -> eb -> b(Q), and e2 -> c(R).
    fn relation() -> StaticIndependence {
        let mut bld = StackBuilder::new();
        let pp = bld.protocol("P");
        let pq = bld.protocol("Q");
        let pr = bld.protocol("R");
        let e1 = bld.event("e1");
        let eb = bld.event("eb");
        let e2 = bld.event("e2");
        bld.bind_with_triggers(e1, pp, "a", &[eb], |_, _| Ok(()));
        bld.bind_with_triggers(eb, pq, "b", &[], |_, _| Ok(()));
        bld.bind_with_triggers(e2, pr, "c", &[], |_, _| Ok(()));
        let stack = bld.build();
        let (m, _) = samoa_core::analysis::ConflictMatrix::analyze(&stack, &[e1, e2]);
        StaticIndependence::from_matrix(&m)
    }

    const VP: SchedResource = SchedResource::Version(0);
    const VQ: SchedResource = SchedResource::Version(1);
    const VR: SchedResource = SchedResource::Version(2);

    #[test]
    fn protocol_pairs_follow_the_matrix() {
        let si = relation();
        assert!(!si.resources_independent(VP, VQ), "coupled in one root");
        assert!(
            !si.resources_independent(VP, VP),
            "a cell conflicts with itself"
        );
        assert!(si.resources_independent(VP, VR), "disjoint clusters");
        assert!(
            si.resources_independent(SchedResource::Lock(0), VR),
            "lock and version map to the same protocols"
        );
        assert!(
            !si.resources_independent(SchedResource::Version(99), VR),
            "out-of-range protocol indices conservatively conflict"
        );
    }

    #[test]
    fn non_protocol_resources_need_identity() {
        let si = relation();
        let q1 = SchedResource::Queue(1);
        let q2 = SchedResource::Queue(2);
        assert!(si.resources_independent(q1, q2), "distinct queues commute");
        assert!(!si.resources_independent(q1, q1), "a shared queue does not");
        assert!(!si.resources_independent(SchedResource::Quiesce, SchedResource::Quiesce));
    }

    #[test]
    fn set_independence_is_pairwise() {
        let si = relation();
        let seed = [SchedResource::Queue(3), SchedResource::Done(3), VR];
        assert!(si.sets_independent(&seed, &[VP, VQ, SchedResource::Queue(1)]));
        assert!(!si.sets_independent(&seed, &[VP, VR]), "VR meets VR");
        assert!(si.sets_independent(&[], &[VP]), "empty sets are vacuous");
    }
}
