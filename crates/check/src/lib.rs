//! # samoa-check — systematic schedule exploration for the SAMOA runtime
//!
//! The paper argues its versioning algorithms guarantee the isolation
//! property *on every schedule*; ordinary tests only ever see the handful of
//! schedules the OS happens to produce. This crate makes schedules
//! first-class: it installs a cooperative [`Controller`] as the runtime's
//! [`SchedHook`](samoa_core::SchedHook), serialising all runtime threads
//! into turn-taking, and drives a workload [`Scenario`] through thousands of
//! distinct interleavings — seeded random walks, PCT priority schedules, or
//! exhaustive bounded enumeration. Every run is checked with the
//! serializability checker ([`History::check_isolation`]) plus
//! scenario-specific invariants, and a failure yields a [`Witness`]: the
//! exact choice trace, greedily minimised, that [`Explorer::replay`]
//! reproduces deterministically.
//!
//! ```
//! use samoa_check::{DiamondScenario, Explorer, ExplorerConfig, ScenarioPolicy, Strategy};
//!
//! // The unsynchronised diamond hides the paper's run r3; a short random
//! // walk finds it and pins it down to a replayable trace.
//! let scenario = DiamondScenario::new(ScenarioPolicy::Unsync);
//! let got = Explorer::explore(
//!     &scenario,
//!     &ExplorerConfig::new(500, Strategy::Random { seed: 1 }),
//! );
//! let witness = got.violation.expect("unsync diamond must violate isolation");
//! assert_eq!(Explorer::replay(&scenario, &witness), Some(witness.failure.clone()));
//!
//! // The same workload under VCAbasic survives every schedule tried.
//! let safe = DiamondScenario::new(ScenarioPolicy::VcaBasic);
//! let got = Explorer::explore(&safe, &ExplorerConfig::new(100, Strategy::Random { seed: 1 }));
//! assert!(got.violation.is_none());
//! ```
//!
//! [`History::check_isolation`]: samoa_core::History::check_isolation

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod controller;
pub mod dpor;
pub mod explorer;
pub mod faults;
pub mod independence;
pub mod scenarios;
pub mod strategy;

pub use controller::{ChoiceRecord, Controller, ScheduleTrace, SegEvent, StepRecord};
pub use dpor::{DporSearch, HappensBefore, HbUnit};
pub use explorer::{Exploration, Explorer, ExplorerConfig, Failure, Strategy, Sweep, Witness};
pub use faults::{ClusterProbe, ClusterScenario, FaultBudget};
pub use independence::StaticIndependence;
pub use scenarios::{
    DiamondScenario, DisjointClustersScenario, OccScenario, RunReport, Scenario, ScenarioPolicy,
    TransportWindowScenario, ViewChangeScenario,
};
pub use strategy::{Decider, PctDecider, PrefixDecider, RandomDecider};
