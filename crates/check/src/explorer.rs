//! The exploration driver: run a [`Scenario`] under many schedules, check
//! every run for isolation violations and scenario invariants, and — on
//! failure — produce a minimised, replayable [`Witness`].

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use samoa_core::IsolationViolation;

use crate::controller::{Controller, ScheduleTrace};
use crate::dpor::DporSearch;
use crate::independence::StaticIndependence;
use crate::scenarios::{RunReport, Scenario};
use crate::strategy::{Decider, PctDecider, PrefixDecider, RandomDecider};

/// How schedules are generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Seeded uniform random walk; run `i` uses seed `seed + i`.
    Random {
        /// Base seed.
        seed: u64,
    },
    /// Probabilistic Concurrency Testing with the given bug depth.
    Pct {
        /// Base seed (run `i` uses `seed + i`).
        seed: u64,
        /// Bug depth `d` (`d − 1` priority-change points per run).
        depth: usize,
    },
    /// Trace-guided PCT: same priority mechanics as [`Strategy::Pct`], but
    /// between schedules the generator drains the scenario's
    /// [`trace_buffer`](crate::scenarios::Scenario::trace_buffer),
    /// aggregates per-microprotocol contention the way
    /// [`ContentionProfile`](samoa_core::ContentionProfile) does (admission
    /// wait time, falling back to handler service time when no schedule has
    /// waited yet), and places the next run's priority-change points on
    /// scheduling steps whose recorded footprint touches the hottest
    /// protocol. Scenarios without a trace buffer degrade to plain PCT.
    Guided {
        /// Base seed (run `i` uses `seed + i`).
        seed: u64,
        /// Bug depth `d` (`d − 1` priority-change points per run).
        depth: usize,
    },
    /// Exhaustive bounded depth-first enumeration of the choice tree.
    /// Stops early when the space is exhausted.
    Exhaustive,
    /// Dynamic partial-order reduction ([`crate::dpor`]): like
    /// [`Strategy::Exhaustive`] it covers the whole bounded space, but it
    /// skips schedules equivalent to one already run — two interleavings
    /// that differ only in the order of steps with disjoint resource
    /// footprints reach the same state. Typically orders of magnitude
    /// fewer runs for the same set of reachable failures.
    Dpor,
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Strategy::Random { seed } => write!(f, "random(seed={seed})"),
            Strategy::Pct { seed, depth } => write!(f, "pct(seed={seed}, depth={depth})"),
            Strategy::Guided { seed, depth } => {
                write!(f, "guided-pct(seed={seed}, depth={depth})")
            }
            Strategy::Exhaustive => write!(f, "exhaustive"),
            Strategy::Dpor => write!(f, "dpor"),
        }
    }
}

/// Exploration parameters.
#[derive(Debug, Clone)]
pub struct ExplorerConfig {
    /// Maximum number of schedules to run.
    pub schedules: usize,
    /// Schedule-generation strategy.
    pub strategy: Strategy,
    /// Per-run scheduling-step budget; longer runs abort as
    /// [`Failure::Runaway`].
    pub max_steps: u64,
    /// Greedily shrink the witness trace before returning it.
    pub minimise: bool,
}

impl ExplorerConfig {
    /// `schedules` runs under `strategy`, with minimisation on and a
    /// generous step budget.
    pub fn new(schedules: usize, strategy: Strategy) -> ExplorerConfig {
        ExplorerConfig {
            schedules,
            strategy,
            max_steps: 50_000,
            minimise: true,
        }
    }
}

/// Why a run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Failure {
    /// The serializability checker found a precedence cycle.
    Isolation(IsolationViolation),
    /// A scenario-specific invariant was violated.
    Invariant(String),
    /// The schedule wedged: no thread ready, at least one blocked.
    Deadlock,
    /// The run exceeded the scheduling-step budget.
    Runaway,
}

impl Failure {
    /// A canonical, schedule-independent key for deduplication: the sorted
    /// precedence cycle for isolation violations, the message for invariant
    /// violations, the kind alone for aborts. Two schedules exhibiting the
    /// same underlying bug map to the same signature, so
    /// [`Explorer::sweep`]'s failure sets are comparable across strategies.
    pub fn signature(&self) -> String {
        match self {
            Failure::Isolation(v) => {
                let mut cycle = v.cycle.clone();
                cycle.sort_unstable();
                format!("isolation:{cycle:?}")
            }
            Failure::Invariant(s) => format!("invariant:{s}"),
            Failure::Deadlock => "deadlock".to_string(),
            Failure::Runaway => "runaway".to_string(),
        }
    }
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Failure::Isolation(v) => write!(f, "{v}"),
            Failure::Invariant(s) => write!(f, "invariant violated: {s}"),
            Failure::Deadlock => write!(f, "schedule deadlocked"),
            Failure::Runaway => write!(f, "schedule exceeded the step budget"),
        }
    }
}

/// A replayable counterexample: strategy, schedule index, and the exact
/// choice trace. [`Explorer::replay`] reproduces the failure
/// deterministically from `choices` alone.
#[derive(Debug, Clone)]
pub struct Witness {
    /// Name of the failing scenario.
    pub scenario: String,
    /// The strategy that found the failure.
    pub strategy: Strategy,
    /// Which schedule (0-based) failed.
    pub schedule_index: usize,
    /// The recorded decision trace (minimised if the config asked for it).
    pub choices: Vec<u32>,
    /// What went wrong.
    pub failure: Failure,
}

impl std::fmt::Display for Witness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} (strategy {}, schedule #{}, trace {:?})",
            self.scenario, self.failure, self.strategy, self.schedule_index, self.choices
        )
    }
}

/// What an exploration did.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Schedules actually run (less than requested if exhaustive search
    /// exhausted the space or a failure stopped it early).
    pub schedules_run: usize,
    /// The first failure found, already minimised if configured.
    pub violation: Option<Witness>,
    /// Exhaustive/DPOR search visited the whole bounded space.
    pub exhausted: bool,
}

/// What a [`Explorer::sweep`] did: like [`Exploration`], but the search
/// keeps going past failures and collects every *distinct* one
/// (deduplicated by [`Failure::signature`]).
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Schedules actually run.
    pub schedules_run: usize,
    /// One witness per distinct failure signature, in discovery order.
    pub failures: Vec<Witness>,
    /// Exhaustive/DPOR search visited the whole bounded space — the
    /// failure set is *complete* for the bounded scenario.
    pub exhausted: bool,
    /// Under [`Strategy::Dpor`]: ready threads the race analysis'
    /// no-initiator fallback considered across all runs (0 otherwise).
    pub backtrack_candidates: usize,
    /// Under [`Strategy::Dpor`]: of those, threads suppressed by the
    /// scenario's [`StaticIndependence`] relation. The quotient is the
    /// *pruned ratio* the benchmarks report.
    pub backtrack_pruned: usize,
}

impl Sweep {
    /// Fraction of fallback backtrack candidates the static relation
    /// suppressed (`0.0` when the fallback never fired or no relation was
    /// installed).
    pub fn pruned_ratio(&self) -> f64 {
        if self.backtrack_candidates == 0 {
            0.0
        } else {
            self.backtrack_pruned as f64 / self.backtrack_candidates as f64
        }
    }
}

/// The per-strategy schedule source shared by [`Explorer::explore`] and
/// [`Explorer::sweep`]: hands out a decider per run, folds each finished
/// trace back in, and knows when the space is exhausted.
enum Gen {
    Random {
        seed: u64,
    },
    Pct {
        seed: u64,
        depth: usize,
        horizon: usize,
    },
    Guided {
        seed: u64,
        depth: usize,
        horizon: usize,
        /// The scenario's trace feedback channel; `None` (no traced
        /// scenario) leaves the strategy running as plain PCT.
        buffer: Option<Arc<samoa_core::TraceBuffer>>,
        /// Scheduling-step indices (the change-point clock) whose recorded
        /// segment touched the hottest microprotocol in the last run.
        hot: Vec<usize>,
    },
    Exhaustive {
        prefix: Vec<u32>,
    },
    Dpor {
        search: DporSearch,
    },
}

impl Gen {
    fn new(
        strategy: Strategy,
        independence: Option<StaticIndependence>,
        buffer: Option<Arc<samoa_core::TraceBuffer>>,
    ) -> Gen {
        match strategy {
            Strategy::Random { seed } => Gen::Random { seed },
            Strategy::Pct { seed, depth } => Gen::Pct {
                seed,
                depth,
                horizon: 64,
            },
            Strategy::Guided { seed, depth } => Gen::Guided {
                seed,
                depth,
                horizon: 64,
                buffer,
                hot: Vec::new(),
            },
            Strategy::Exhaustive => Gen::Exhaustive { prefix: Vec::new() },
            Strategy::Dpor => Gen::Dpor {
                search: DporSearch::with_independence(independence),
            },
        }
    }

    fn decider(&self, i: usize) -> Box<dyn Decider> {
        match self {
            Gen::Random { seed } => Box::new(RandomDecider::new(seed.wrapping_add(i as u64))),
            Gen::Pct {
                seed,
                depth,
                horizon,
            } => Box::new(PctDecider::new(
                seed.wrapping_add(i as u64),
                *depth,
                *horizon,
            )),
            Gen::Guided {
                seed,
                depth,
                horizon,
                hot,
                ..
            } => Box::new(PctDecider::guided(
                seed.wrapping_add(i as u64),
                *depth,
                *horizon,
                hot,
            )),
            Gen::Exhaustive { prefix } => Box::new(PrefixDecider::new(prefix.clone())),
            Gen::Dpor { search } => Box::new(PrefixDecider::new(search.prefix())),
        }
    }

    /// Fold a finished run in; `true` when the whole bounded space has
    /// been visited and no further run is useful.
    fn observe(&mut self, trace: &ScheduleTrace) -> bool {
        match self {
            Gen::Random { .. } => false,
            Gen::Pct { horizon, .. } => {
                // PCT places change points over scheduling *steps* — every
                // yield point, forced moves included — to match its depth
                // bound, so the horizon tracks the step count, not the
                // (much shorter) recorded-decision count.
                *horizon = (trace.steps as usize).max(16);
                false
            }
            Gen::Guided {
                horizon,
                buffer,
                hot,
                ..
            } => {
                *horizon = (trace.steps as usize).max(16);
                if let Some(buf) = buffer {
                    if let Some(h) = hot_steps(&buf.drain(), trace) {
                        *hot = h;
                    }
                }
                false
            }
            Gen::Exhaustive { prefix } => match next_prefix(trace) {
                Some(p) => {
                    *prefix = p;
                    false
                }
                None => true,
            },
            Gen::Dpor { search } => {
                search.record(trace);
                search.advance().is_none()
            }
        }
    }
}

/// The trace-guidance heuristic: from one run's drained trace events and
/// its schedule trace, the scheduling-step indices worth spending the next
/// run's PCT change points on.
///
/// The hottest microprotocol is the one where admission-wait time
/// concentrates (the same per-protocol aggregation
/// [`ContentionProfile`](samoa_core::ContentionProfile) reports); when no
/// schedule has produced a wait yet — e.g. `Unsync` workloads, which never
/// block on admission — handler service time stands in, so the guidance
/// still points at the protocol doing the contended work. Steps qualify
/// when their recorded segment footprint touched that protocol's version
/// counter or lock slot. `None` (keep the previous guidance) when the
/// drained trace attributes nothing to any protocol or no step qualifies.
fn hot_steps(events: &[samoa_core::TraceEvent], trace: &ScheduleTrace) -> Option<Vec<usize>> {
    use samoa_core::sched::SchedResource;
    use samoa_core::TraceKind;

    let mut wait_ns: HashMap<u32, u64> = HashMap::new();
    let mut service_ns: HashMap<u32, u64> = HashMap::new();
    for ev in events {
        match ev.kind {
            TraceKind::WaitEnd {
                protocol,
                wait_ns: w,
                ..
            } => *wait_ns.entry(protocol.index() as u32).or_default() += w,
            TraceKind::HandlerExit {
                protocol,
                service_ns: s,
                ..
            } => *service_ns.entry(protocol.index() as u32).or_default() += s,
            _ => {}
        }
    }
    let table = if wait_ns.is_empty() {
        &service_ns
    } else {
        &wait_ns
    };
    // Ties broken toward the lower index to keep runs deterministic.
    let hottest = table
        .iter()
        .max_by_key(|&(&idx, &ns)| (ns, std::cmp::Reverse(idx)))
        .map(|(&idx, _)| idx)?;
    let hot: Vec<usize> = trace
        .records
        .iter()
        .filter(|r| {
            r.footprint().iter().any(|rs| {
                matches!(rs,
                    SchedResource::Version(i) | SchedResource::Lock(i) if *i == hottest)
            })
        })
        .map(|r| r.step as usize)
        .collect();
    if hot.is_empty() {
        None
    } else {
        Some(hot)
    }
}

/// Runs scenarios under controlled schedules.
pub struct Explorer;

impl Explorer {
    /// Run `scenario` for up to `cfg.schedules` schedules; stop at the
    /// first failure.
    pub fn explore(scenario: &dyn Scenario, cfg: &ExplorerConfig) -> Exploration {
        let mut generator = Gen::new(
            cfg.strategy,
            scenario.static_independence(),
            scenario.trace_buffer(),
        );
        let mut runs = 0;
        for i in 0..cfg.schedules {
            let (report, trace) = run_once(scenario, generator.decider(i), cfg.max_steps);
            runs = i + 1;
            if let Some(failure) = classify(&report, &trace) {
                let mut choices: Vec<u32> = trace.choices.iter().map(|c| c.chosen).collect();
                if cfg.minimise {
                    choices = minimise(scenario, choices, &failure, cfg.max_steps);
                }
                return Exploration {
                    schedules_run: runs,
                    violation: Some(Witness {
                        scenario: scenario.name().to_string(),
                        strategy: cfg.strategy,
                        schedule_index: i,
                        choices,
                        failure,
                    }),
                    exhausted: false,
                };
            }
            if generator.observe(&trace) {
                return Exploration {
                    schedules_run: runs,
                    violation: None,
                    exhausted: true,
                };
            }
        }
        Exploration {
            schedules_run: runs,
            violation: None,
            exhausted: false,
        }
    }

    /// Run `scenario` like [`explore`](Explorer::explore), but *keep
    /// going* past failures and collect one witness per distinct
    /// [`Failure::signature`]. With [`Strategy::Exhaustive`] or
    /// [`Strategy::Dpor`] and a sufficient budget, the returned failure
    /// set is complete for the bounded scenario — which is what makes the
    /// two strategies comparable: DPOR must find exactly the exhaustive
    /// failure set in (usually far) fewer schedules.
    pub fn sweep(scenario: &dyn Scenario, cfg: &ExplorerConfig) -> Sweep {
        let mut generator = Gen::new(
            cfg.strategy,
            scenario.static_independence(),
            scenario.trace_buffer(),
        );
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut failures: Vec<Witness> = Vec::new();
        let mut runs = 0;
        let mut exhausted = false;
        for i in 0..cfg.schedules {
            let (report, trace) = run_once(scenario, generator.decider(i), cfg.max_steps);
            runs = i + 1;
            if let Some(failure) = classify(&report, &trace) {
                if seen.insert(failure.signature()) {
                    let mut choices: Vec<u32> = trace.choices.iter().map(|c| c.chosen).collect();
                    if cfg.minimise {
                        choices = minimise(scenario, choices, &failure, cfg.max_steps);
                    }
                    failures.push(Witness {
                        scenario: scenario.name().to_string(),
                        strategy: cfg.strategy,
                        schedule_index: i,
                        choices,
                        failure,
                    });
                }
            }
            if generator.observe(&trace) {
                exhausted = true;
                break;
            }
        }
        let (backtrack_candidates, backtrack_pruned) = match &generator {
            Gen::Dpor { search } => (search.fallback_candidates(), search.fallback_pruned()),
            _ => (0, 0),
        };
        Sweep {
            schedules_run: runs,
            failures,
            exhausted,
            backtrack_candidates,
            backtrack_pruned,
        }
    }

    /// Re-run `witness.choices` deterministically and return the failure it
    /// reproduces (or `None` — a stale witness).
    pub fn replay(scenario: &dyn Scenario, witness: &Witness) -> Option<Failure> {
        let (report, trace) = run_once(
            scenario,
            Box::new(PrefixDecider::new(witness.choices.clone())),
            u64::MAX,
        );
        classify(&report, &trace)
    }
}

/// One controlled run: fresh controller, scenario workload, shutdown.
fn run_once(
    scenario: &dyn Scenario,
    decider: Box<dyn Decider>,
    max_steps: u64,
) -> (RunReport, ScheduleTrace) {
    let ctrl = Controller::new(decider, max_steps);
    ctrl.register_main();
    let hook: Arc<dyn samoa_core::SchedHook> = ctrl.clone();
    let report = scenario.run(hook);
    // Free any straggler threads (parked between their last handler and
    // thread exit) *after* the report — including its history snapshot —
    // is taken, so the trace stays schedule-pure.
    let trace = ctrl.finish();
    (report, trace)
}

/// Order of severity: a definite isolation violation beats an invariant
/// message beats the abort conditions.
fn classify(report: &RunReport, trace: &ScheduleTrace) -> Option<Failure> {
    if let Err(v) = report.history.check_isolation() {
        return Some(Failure::Isolation(v));
    }
    if let Some(s) = &report.invariant_violation {
        return Some(Failure::Invariant(s.clone()));
    }
    if trace.deadlock {
        return Some(Failure::Deadlock);
    }
    if trace.runaway {
        return Some(Failure::Runaway);
    }
    None
}

/// Depth-first successor of a completed run's trace: increment the last
/// decision that still has an untried alternative, drop everything after
/// it. `None` when the whole bounded space has been visited.
fn next_prefix(trace: &ScheduleTrace) -> Option<Vec<u32>> {
    let c = &trace.choices;
    for i in (0..c.len()).rev() {
        if c[i].chosen + 1 < c[i].alternatives {
            let mut p: Vec<u32> = c[..i].iter().map(|r| r.chosen).collect();
            p.push(c[i].chosen + 1);
            return Some(p);
        }
    }
    None
}

/// Strip trailing zeros: they are no-ops for the prefix decider (it picks
/// 0 past the end anyway), so this is the canonical form of a prefix.
fn canonical(mut choices: Vec<u32>) -> Vec<u32> {
    while choices.last() == Some(&0) {
        choices.pop();
    }
    choices
}

/// Greedy witness shrinking: try deleting each choice (from the back — late
/// choices are most likely incidental), keep deletions that preserve a
/// failure of the same kind. Every kept deletion is validated by a full
/// replay, so the result is guaranteed to still fail.
///
/// Replays are memoised on the controller's *effective* decision log: a
/// deletion candidate is an arbitrary prefix, but the run it induces is
/// fully described by the choices the controller actually recorded
/// (out-of-range entries are clamped, entries past the last decision are
/// ignored). Distinct candidates frequently collapse onto the same
/// effective log — especially near the tail — so caching both the
/// candidate and its effective log skips whole re-runs of the scenario.
fn minimise(
    scenario: &dyn Scenario,
    mut choices: Vec<u32>,
    original: &Failure,
    max_steps: u64,
) -> Vec<u32> {
    let same_kind = |f: &Failure| {
        matches!(
            (f, original),
            (Failure::Isolation(_), Failure::Isolation(_))
                | (Failure::Invariant(_), Failure::Invariant(_))
                | (Failure::Deadlock, Failure::Deadlock)
                | (Failure::Runaway, Failure::Runaway)
        )
    };
    // canonical(candidate) → "replaying it fails with the original kind".
    let mut cache: HashMap<Vec<u32>, bool> = HashMap::new();
    cache.insert(canonical(choices.clone()), true);
    let mut i = choices.len();
    while i > 0 {
        i -= 1;
        let mut candidate = choices.clone();
        candidate.remove(i);
        let key = canonical(candidate.clone());
        let fails = match cache.get(&key) {
            Some(&hit) => hit,
            None => {
                let (report, trace) = run_once(
                    scenario,
                    Box::new(PrefixDecider::new(candidate.clone())),
                    max_steps,
                );
                let fails = classify(&report, &trace).as_ref().is_some_and(same_kind);
                // The effective log describes the same run as the
                // candidate — future candidates that collapse onto it are
                // settled without replaying.
                let effective: Vec<u32> = trace.choices.iter().map(|c| c.chosen).collect();
                cache.insert(canonical(effective), fails);
                cache.insert(key, fails);
                fails
            }
        };
        if fails {
            choices = candidate;
        }
    }
    canonical(choices)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_prefix_increments_deepest_open_choice() {
        use crate::controller::ChoiceRecord;
        let t = |choices: Vec<(u32, u32)>| ScheduleTrace {
            choices: choices
                .into_iter()
                .map(|(chosen, alternatives)| ChoiceRecord {
                    chosen,
                    alternatives,
                })
                .collect(),
            records: Vec::new(),
            steps: 0,
            deadlock: false,
            runaway: false,
        };
        assert_eq!(next_prefix(&t(vec![(0, 2), (1, 2)])), Some(vec![1]));
        assert_eq!(next_prefix(&t(vec![(0, 2), (0, 3)])), Some(vec![0, 1]));
        assert_eq!(next_prefix(&t(vec![(1, 2), (2, 3)])), None);
        assert_eq!(next_prefix(&t(vec![])), None);
    }
}
