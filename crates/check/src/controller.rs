//! The cooperative scheduler: serialises the runtime's threads into
//! turn-taking and records every scheduling choice.
//!
//! A [`Controller`] is installed into one or more runtimes as their
//! [`SchedHook`] ([`Runtime::with_hook`](samoa_core::Runtime::with_hook)).
//! From then on exactly one controlled thread executes at a time:
//!
//! * At every [`SchedPoint`] the running thread offers its turn back; the
//!   controller asks its [`Decider`] which *ready* thread runs next.
//! * Cooperative blocking ([`SchedHook::block`]) parks the thread until a
//!   matching [`SchedHook::signal`] makes it ready again — the caller then
//!   re-checks its wait predicate, so spurious wake-ups (e.g. two runtimes
//!   sharing a controller and colliding on a resource id) are harmless.
//! * A choice is only *recorded* when at least two threads are ready;
//!   forced moves don't contribute to the trace, which keeps witnesses
//!   short and makes exhaustive enumeration tractable.
//!
//! Thread identity is registration order: the main thread registers as
//! thread 0 ([`Controller::register_main`]), every runtime thread gets the
//! next id at its `on_thread_spawn`. Because spawning happens while the
//! spawner holds the turn, ids — and with them the whole schedule — are a
//! pure function of the choice sequence.
//!
//! ## Deadlock and runaway handling
//!
//! If no thread is ready and at least one is blocked, the schedule is stuck:
//! the controller flags a deadlock and *aborts* — every controlled thread is
//! released into free-running mode (blocking becomes spin-yield) so the
//! scenario can unwind, and the run is reported as a deadlock failure. The
//! versioning algorithms are deadlock-free by construction (waits point from
//! younger to older computations), so this fires only on genuine framework
//! bugs — which is exactly what an explorer is for. A `max_steps` guard
//! aborts runaway schedules the same way.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::ThreadId;

use parking_lot::{Condvar, Mutex};
use samoa_core::sched::{SchedHook, SchedPoint, SchedResource};

use crate::strategy::Decider;

/// One recorded scheduling decision: which of the ready threads ran, out of
/// how many. Only decisions with ≥ 2 alternatives are recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChoiceRecord {
    /// Index of the chosen thread in the sorted ready list.
    pub chosen: u32,
    /// Number of ready threads at this decision point.
    pub alternatives: u32,
}

/// Scheduling state of one controlled thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThState {
    /// Runnable, waiting for a turn.
    Ready,
    /// Currently holding the turn.
    Running,
    /// Cooperatively blocked on a resource.
    Blocked(SchedResource),
    /// Exited.
    Done,
}

struct CtrlState {
    threads: Vec<ThState>,
    /// OS thread → controlled thread id.
    os: HashMap<ThreadId, usize>,
    /// Spawn tokens handed out but not yet claimed by `on_thread_start`.
    tokens: HashMap<u64, usize>,
    next_token: u64,
    current: Option<usize>,
    decider: Box<dyn Decider>,
    trace: Vec<ChoiceRecord>,
    steps: u64,
    max_steps: u64,
    /// Free-run: all control is released (deadlock, runaway, or shutdown).
    abort: bool,
    deadlock: bool,
    runaway: bool,
}

/// What a finished run looked like, extracted by [`Controller::finish`].
#[derive(Debug, Clone)]
pub struct ScheduleTrace {
    /// The recorded choice sequence (replayable via
    /// [`PrefixDecider`](crate::strategy::PrefixDecider)).
    pub choices: Vec<ChoiceRecord>,
    /// Scheduling steps taken (including forced moves).
    pub steps: u64,
    /// The schedule wedged: no thread ready, at least one blocked.
    pub deadlock: bool,
    /// The `max_steps` guard fired.
    pub runaway: bool,
}

/// The cooperative turn-taking scheduler. Implements [`SchedHook`];
/// install with `Runtime::with_hook(stack, cfg, ctrl.clone())`.
pub struct Controller {
    st: Mutex<CtrlState>,
    cv: Condvar,
}

impl Controller {
    /// A controller driving schedules with `decider`, aborting any schedule
    /// longer than `max_steps` scheduling steps.
    pub fn new(decider: Box<dyn Decider>, max_steps: u64) -> Arc<Controller> {
        Arc::new(Controller {
            st: Mutex::new(CtrlState {
                threads: Vec::new(),
                os: HashMap::new(),
                tokens: HashMap::new(),
                next_token: 1,
                current: None,
                decider,
                trace: Vec::new(),
                steps: 0,
                max_steps,
                abort: false,
                deadlock: false,
                runaway: false,
            }),
            cv: Condvar::new(),
        })
    }

    /// Register the calling thread as controlled thread 0 and hand it the
    /// turn. Must be called exactly once, before the scenario starts any
    /// hooked runtime activity.
    pub fn register_main(&self) {
        let mut st = self.st.lock();
        assert!(st.threads.is_empty(), "register_main called twice");
        st.threads.push(ThState::Running);
        st.os.insert(std::thread::current().id(), 0);
        st.current = Some(0);
    }

    /// Release every controlled thread into free-running mode and collect
    /// the trace. Call after the scenario has finished (all computations
    /// quiesced): stragglers still between their last release and thread
    /// exit stop waiting for turns and run out naturally, so no thread ever
    /// waits on a dropped controller.
    pub fn finish(&self) -> ScheduleTrace {
        let mut st = self.st.lock();
        st.abort = true;
        self.cv.notify_all();
        ScheduleTrace {
            choices: st.trace.clone(),
            steps: st.steps,
            deadlock: st.deadlock,
            runaway: st.runaway,
        }
    }

    fn lookup(&self, st: &CtrlState) -> Option<usize> {
        st.os.get(&std::thread::current().id()).copied()
    }

    /// Pick and grant the next turn. Caller must have set `current = None`.
    fn schedule(&self, st: &mut CtrlState) {
        debug_assert_eq!(st.current, None);
        let ready: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == ThState::Ready)
            .map(|(i, _)| i)
            .collect();
        if ready.is_empty() {
            if st.threads.iter().any(|s| matches!(s, ThState::Blocked(_))) {
                // Wedged: nobody can run, somebody is waiting. Abort into
                // free-running so the scenario can unwind and report.
                st.deadlock = true;
                st.abort = true;
                self.cv.notify_all();
            }
            return;
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            st.runaway = true;
            st.abort = true;
            self.cv.notify_all();
            return;
        }
        let idx = if ready.len() == 1 {
            0
        } else {
            let step = st.trace.len();
            let idx = st.decider.choose(&ready, step).min(ready.len() - 1);
            st.trace.push(ChoiceRecord {
                chosen: idx as u32,
                alternatives: ready.len() as u32,
            });
            idx
        };
        let tid = ready[idx];
        st.threads[tid] = ThState::Running;
        st.current = Some(tid);
        self.cv.notify_all();
    }

    /// Park until granted the turn (or the controller aborted).
    fn wait_turn(&self, st: &mut parking_lot::MutexGuard<'_, CtrlState>, tid: usize) {
        loop {
            if st.abort {
                return;
            }
            if st.current == Some(tid) {
                st.threads[tid] = ThState::Running;
                return;
            }
            self.cv.wait(st);
        }
    }
}

impl SchedHook for Controller {
    fn on_thread_spawn(&self) -> u64 {
        let mut st = self.st.lock();
        if st.abort {
            return 0;
        }
        let tid = st.threads.len();
        st.threads.push(ThState::Ready);
        let token = st.next_token;
        st.next_token += 1;
        st.tokens.insert(token, tid);
        token
    }

    fn on_thread_start(&self, token: u64) {
        let mut st = self.st.lock();
        if st.abort {
            return;
        }
        let Some(tid) = st.tokens.remove(&token) else {
            return; // spawned during abort: free-run
        };
        st.os.insert(std::thread::current().id(), tid);
        self.wait_turn(&mut st, tid);
    }

    fn on_thread_exit(&self) {
        let mut st = self.st.lock();
        if st.abort {
            return;
        }
        let Some(tid) = self.lookup(&st) else { return };
        st.threads[tid] = ThState::Done;
        if st.current == Some(tid) {
            st.current = None;
            self.schedule(&mut st);
        }
    }

    fn yield_point(&self, _point: SchedPoint) {
        let mut st = self.st.lock();
        if st.abort {
            return;
        }
        let Some(tid) = self.lookup(&st) else { return };
        debug_assert_eq!(
            st.current,
            Some(tid),
            "yield from a thread without the turn"
        );
        st.threads[tid] = ThState::Ready;
        st.current = None;
        self.schedule(&mut st);
        self.wait_turn(&mut st, tid);
    }

    fn block(&self, resource: SchedResource) {
        let mut st = self.st.lock();
        if st.abort {
            drop(st);
            std::thread::yield_now();
            return;
        }
        let Some(tid) = self.lookup(&st) else {
            drop(st);
            std::thread::yield_now();
            return;
        };
        debug_assert_eq!(
            st.current,
            Some(tid),
            "block from a thread without the turn"
        );
        st.threads[tid] = ThState::Blocked(resource);
        st.current = None;
        self.schedule(&mut st);
        self.wait_turn(&mut st, tid);
    }

    fn signal(&self, resource: SchedResource) {
        let mut st = self.st.lock();
        if st.abort {
            self.cv.notify_all();
            return;
        }
        // The signaller keeps its turn; woken threads become ready and will
        // re-check their predicates when scheduled.
        for s in st.threads.iter_mut() {
            if *s == ThState::Blocked(resource) {
                *s = ThState::Ready;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::PrefixDecider;

    #[test]
    fn single_thread_run_records_no_choices() {
        let ctrl = Controller::new(Box::new(PrefixDecider::new(Vec::new())), 1000);
        ctrl.register_main();
        ctrl.yield_point(SchedPoint::Spawn);
        ctrl.yield_point(SchedPoint::Spawn);
        let trace = ctrl.finish();
        assert!(trace.choices.is_empty(), "forced moves are not recorded");
        assert!(!trace.deadlock);
        assert_eq!(trace.steps, 2);
    }

    #[test]
    fn two_threads_alternate_under_prefix() {
        // Main spawns one helper; choices decide who runs at each yield.
        let ctrl = Controller::new(Box::new(PrefixDecider::new(vec![1, 0])), 1000);
        ctrl.register_main();
        let token = ctrl.on_thread_spawn();
        let h2 = ctrl.clone();
        let order = Arc::new(Mutex::new(Vec::new()));
        let o2 = Arc::clone(&order);
        let t = std::thread::spawn(move || {
            h2.on_thread_start(token);
            o2.lock().push("helper");
            h2.yield_point(SchedPoint::Spawn);
            o2.lock().push("helper2");
            h2.on_thread_exit();
        });
        // First choice (index 1 in ready=[0,1]) hands the turn to the
        // helper; main parks until chosen again.
        ctrl.yield_point(SchedPoint::Spawn);
        order.lock().push("main");
        let trace = ctrl.finish();
        t.join().unwrap();
        assert_eq!(order.lock()[0], "helper", "prefix [1] ran helper first");
        assert!(!trace.choices.is_empty());
        assert_eq!(
            trace.choices[0],
            ChoiceRecord {
                chosen: 1,
                alternatives: 2
            }
        );
    }

    #[test]
    fn blocked_everyone_is_deadlock() {
        let ctrl = Controller::new(Box::new(PrefixDecider::new(Vec::new())), 1000);
        ctrl.register_main();
        // Main blocks with nobody to signal: the controller must abort
        // rather than hang.
        ctrl.block(SchedResource::Quiesce);
        let trace = ctrl.finish();
        assert!(trace.deadlock);
    }

    #[test]
    fn runaway_guard_aborts() {
        let ctrl = Controller::new(Box::new(PrefixDecider::new(Vec::new())), 3);
        ctrl.register_main();
        for _ in 0..10 {
            ctrl.yield_point(SchedPoint::Spawn);
        }
        let trace = ctrl.finish();
        assert!(trace.runaway);
        assert!(trace.steps <= 4);
    }
}
