//! The cooperative scheduler: serialises the runtime's threads into
//! turn-taking and records every scheduling choice.
//!
//! A [`Controller`] is installed into one or more runtimes as their
//! [`SchedHook`] ([`Runtime::with_hook`](samoa_core::Runtime::with_hook)).
//! From then on exactly one controlled thread executes at a time:
//!
//! * At every [`SchedPoint`] the running thread offers its turn back; the
//!   controller asks its [`Decider`] which *ready* thread runs next.
//! * Cooperative blocking ([`SchedHook::block`]) parks the thread until a
//!   matching [`SchedHook::signal`] makes it ready again — the caller then
//!   re-checks its wait predicate, so spurious wake-ups (e.g. two runtimes
//!   sharing a controller and colliding on a resource id) are harmless.
//! * A choice is only *recorded* when at least two threads are ready;
//!   forced moves don't contribute to the trace, which keeps witnesses
//!   short and makes exhaustive enumeration tractable.
//!
//! Thread identity is registration order: the main thread registers as
//! thread 0 ([`Controller::register_main`]), every runtime thread gets the
//! next id at its `on_thread_spawn`. Because spawning happens while the
//! spawner holds the turn, ids — and with them the whole schedule — are a
//! pure function of the choice sequence.
//!
//! ## Deadlock and runaway handling
//!
//! If no thread is ready and at least one is blocked, the schedule is stuck:
//! the controller flags a deadlock and *aborts* — every controlled thread is
//! released into free-running mode (blocking becomes spin-yield) so the
//! scenario can unwind, and the run is reported as a deadlock failure. The
//! versioning algorithms are deadlock-free by construction (waits point from
//! younger to older computations), so this fires only on genuine framework
//! bugs — which is exactly what an explorer is for. A `max_steps` guard
//! aborts runaway schedules the same way.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::ThreadId;

use parking_lot::{Condvar, Mutex};
use samoa_core::sched::{ExternalChoice, SchedHook, SchedPoint, SchedResource};

use crate::strategy::Decider;

/// One recorded scheduling decision: which of the ready threads ran, out of
/// how many. Only decisions with ≥ 2 alternatives are recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChoiceRecord {
    /// Index of the chosen thread in the sorted ready list.
    pub chosen: u32,
    /// Number of ready threads at this decision point.
    pub alternatives: u32,
}

/// One contiguous run of resource accesses by a single thread inside a
/// segment. A segment usually holds one event (the chosen thread's), but
/// *forced moves* — granted when only one thread was ready, so nothing was
/// recorded — fold other threads' accesses into the same segment, and race
/// detection must still know **who** touched **what**.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegEvent {
    /// The thread that performed these accesses.
    pub tid: u32,
    /// The resources it touched, deduplicated, in first-touch order.
    pub resources: Vec<SchedResource>,
}

/// The resource view of one recorded decision, parallel to
/// [`ChoiceRecord`]: who was ready (and what each announced as its next
/// action), who ran, and everything the resulting *segment* — the chosen
/// thread's action plus every forced move, cooperative block, and signal up
/// to the next recorded decision — touched, split per acting thread. This
/// is the raw material of the DPOR dependence relation
/// (`samoa_check::dpor`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StepRecord {
    /// Sorted ids of the threads that were ready at this decision.
    pub ready: Vec<u32>,
    /// The announced next-action footprint of each ready thread, parallel
    /// to `ready`. Empty means *unknown* (a freshly spawned thread that has
    /// not reached its first annotated yield) — consumers must treat an
    /// unknown footprint as conflicting with everything.
    pub pending: Vec<Vec<SchedResource>>,
    /// The *static seed* of each ready thread, parallel to `ready`: the
    /// upper bound, announced at spawn
    /// ([`SchedHook::on_thread_spawn_with`]), on every resource the thread
    /// can ever touch. Empty means no seed. Unlike `pending` this bounds
    /// the thread's **entire future**, not just its next action — the
    /// stronger guarantee DPOR's static backtrack pruning needs.
    pub seeds: Vec<Vec<SchedResource>>,
    /// Id of the thread that ran.
    pub chosen: u32,
    /// 0-based index of this decision on the scheduling-*step* clock (the
    /// [`Decider::note_step`](crate::strategy::Decider::note_step) clock —
    /// every yield point, forced moves included). Recorded decisions are a
    /// subsequence of that clock; this field is the exact position, which is
    /// what lets trace-guided PCT aim change points at specific decisions.
    pub step: u64,
    /// Per-thread access runs of the segment after this decision, in
    /// execution order.
    pub events: Vec<SegEvent>,
}

impl StepRecord {
    /// The announced footprint of ready thread `tid`, if any.
    pub fn pending_of(&self, tid: u32) -> Option<&[SchedResource]> {
        self.ready
            .iter()
            .position(|&t| t == tid)
            .map(|i| self.pending[i].as_slice())
    }

    /// The static seed of ready thread `tid`: `None` when `tid` was not
    /// ready here or spawned without a seed.
    pub fn seed_of(&self, tid: u32) -> Option<&[SchedResource]> {
        self.ready
            .iter()
            .position(|&t| t == tid)
            .map(|i| self.seeds[i].as_slice())
            .filter(|s| !s.is_empty())
    }

    /// The best known *next-action* footprint of ready thread `tid`: the
    /// announced pending if non-empty, else the static seed (a sound
    /// stand-in — the seed over-approximates every action, the next one
    /// included). `None`/empty means genuinely unknown.
    pub fn announced_or_seed(&self, tid: u32) -> Option<&[SchedResource]> {
        match self.pending_of(tid) {
            Some(p) if !p.is_empty() => Some(p),
            _ => self.seed_of(tid),
        }
    }

    /// Every resource the whole segment touched, across all its events.
    pub fn footprint(&self) -> Vec<SchedResource> {
        let mut all = Vec::new();
        for ev in &self.events {
            for &rs in &ev.resources {
                if !all.contains(&rs) {
                    all.push(rs);
                }
            }
        }
        all
    }
}

/// Scheduling state of one controlled thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThState {
    /// Runnable, waiting for a turn.
    Ready,
    /// Currently holding the turn.
    Running,
    /// Cooperatively blocked on a resource.
    Blocked(SchedResource),
    /// Exited.
    Done,
}

struct CtrlState {
    threads: Vec<ThState>,
    /// OS thread → controlled thread id.
    os: HashMap<ThreadId, usize>,
    /// Spawn tokens handed out but not yet claimed by `on_thread_start`.
    tokens: HashMap<u64, usize>,
    next_token: u64,
    current: Option<usize>,
    decider: Box<dyn Decider>,
    trace: Vec<ChoiceRecord>,
    /// Resource view of each recorded decision, parallel to `trace`.
    records: Vec<StepRecord>,
    /// Per-thread announced next-action footprint, consumed when the thread
    /// is next granted the turn.
    pending: Vec<Vec<SchedResource>>,
    /// Per-thread *static seed*: the upper bound on every resource the
    /// thread can ever touch, announced at spawn via
    /// [`SchedHook::on_thread_spawn_with`]. Unlike `pending` it is never
    /// consumed into a segment — it is snapshotted verbatim into every
    /// [`StepRecord`], which is what lets DPOR prove freshly spawned but
    /// statically disjoint computations independent.
    static_pending: Vec<Vec<SchedResource>>,
    steps: u64,
    max_steps: u64,
    /// Free-run: all control is released (deadlock, runaway, or shutdown).
    abort: bool,
    deadlock: bool,
    runaway: bool,
}

impl CtrlState {
    /// Attribute `rs`, accessed by thread `tid`, to the currently executing
    /// segment (the span since the last recorded decision). Touches before
    /// the first recorded decision belong to the deterministic common
    /// prefix of every schedule and are dropped.
    fn touch(&mut self, tid: usize, rs: SchedResource) {
        if let Some(rec) = self.records.last_mut() {
            match rec.events.last_mut() {
                Some(ev) if ev.tid == tid as u32 => {
                    if !ev.resources.contains(&rs) {
                        ev.resources.push(rs);
                    }
                }
                _ => rec.events.push(SegEvent {
                    tid: tid as u32,
                    resources: vec![rs],
                }),
            }
        }
    }

    fn touch_all(&mut self, tid: usize, rss: &[SchedResource]) {
        for &rs in rss {
            self.touch(tid, rs);
        }
    }

    /// The chosen thread starts executing its announced action: consume its
    /// pending footprint into the current segment.
    fn consume_pending(&mut self, tid: usize) {
        let fp = std::mem::take(&mut self.pending[tid]);
        self.touch_all(tid, &fp);
    }
}

/// What a finished run looked like, extracted by [`Controller::finish`].
#[derive(Debug, Clone)]
pub struct ScheduleTrace {
    /// The recorded choice sequence (replayable via
    /// [`PrefixDecider`](crate::strategy::PrefixDecider)).
    pub choices: Vec<ChoiceRecord>,
    /// The resource view of each recorded decision, parallel to `choices`:
    /// ready sets, announced footprints, and per-segment touched resources.
    pub records: Vec<StepRecord>,
    /// Scheduling steps taken (including forced moves).
    pub steps: u64,
    /// The schedule wedged: no thread ready, at least one blocked.
    pub deadlock: bool,
    /// The `max_steps` guard fired.
    pub runaway: bool,
}

/// The cooperative turn-taking scheduler. Implements [`SchedHook`];
/// install with `Runtime::with_hook(stack, cfg, ctrl.clone())`.
pub struct Controller {
    st: Mutex<CtrlState>,
    cv: Condvar,
}

impl Controller {
    /// A controller driving schedules with `decider`, aborting any schedule
    /// longer than `max_steps` scheduling steps.
    pub fn new(decider: Box<dyn Decider>, max_steps: u64) -> Arc<Controller> {
        Arc::new(Controller {
            st: Mutex::new(CtrlState {
                threads: Vec::new(),
                os: HashMap::new(),
                tokens: HashMap::new(),
                next_token: 1,
                current: None,
                decider,
                trace: Vec::new(),
                records: Vec::new(),
                pending: Vec::new(),
                static_pending: Vec::new(),
                steps: 0,
                max_steps,
                abort: false,
                deadlock: false,
                runaway: false,
            }),
            cv: Condvar::new(),
        })
    }

    /// Register the calling thread as controlled thread 0 and hand it the
    /// turn. Must be called exactly once, before the scenario starts any
    /// hooked runtime activity.
    pub fn register_main(&self) {
        let mut st = self.st.lock();
        assert!(st.threads.is_empty(), "register_main called twice");
        st.threads.push(ThState::Running);
        st.pending.push(Vec::new());
        st.static_pending.push(Vec::new());
        st.os.insert(std::thread::current().id(), 0);
        st.current = Some(0);
    }

    /// Release every controlled thread into free-running mode and collect
    /// the trace. Call after the scenario has finished (all computations
    /// quiesced): stragglers still between their last release and thread
    /// exit stop waiting for turns and run out naturally, so no thread ever
    /// waits on a dropped controller.
    pub fn finish(&self) -> ScheduleTrace {
        let mut st = self.st.lock();
        st.abort = true;
        self.cv.notify_all();
        ScheduleTrace {
            choices: st.trace.clone(),
            records: st.records.clone(),
            steps: st.steps,
            deadlock: st.deadlock,
            runaway: st.runaway,
        }
    }

    fn lookup(&self, st: &CtrlState) -> Option<usize> {
        st.os.get(&std::thread::current().id()).copied()
    }

    /// Pick and grant the next turn. Caller must have set `current = None`.
    fn schedule(&self, st: &mut CtrlState) {
        debug_assert_eq!(st.current, None);
        let ready: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == ThState::Ready)
            .map(|(i, _)| i)
            .collect();
        if ready.is_empty() {
            if st.threads.iter().any(|s| matches!(s, ThState::Blocked(_))) {
                // Wedged: nobody can run, somebody is waiting. Abort into
                // free-running so the scenario can unwind and report.
                st.deadlock = true;
                st.abort = true;
                self.cv.notify_all();
            }
            return;
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            st.runaway = true;
            st.abort = true;
            self.cv.notify_all();
            return;
        }
        // Every scheduling step — forced moves included — ticks the
        // decider, so step-indexed strategies (PCT change points) see the
        // same clock the step budget counts.
        st.decider.note_step();
        let idx = if ready.len() == 1 {
            0
        } else {
            let step = st.trace.len();
            let idx = st.decider.choose(&ready, step).min(ready.len() - 1);
            st.trace.push(ChoiceRecord {
                chosen: idx as u32,
                alternatives: ready.len() as u32,
            });
            // Open a new segment: snapshot who was ready, what each had
            // announced, and each thread's static seed; the segment
            // footprint accumulates from here until the next recorded
            // decision. Announced pendings describe only the next action —
            // the seeds bound the thread's whole future, which is what the
            // DPOR backtrack pruning needs.
            let record = StepRecord {
                ready: ready.iter().map(|&t| t as u32).collect(),
                pending: ready.iter().map(|&t| st.pending[t].clone()).collect(),
                seeds: ready
                    .iter()
                    .map(|&t| st.static_pending[t].clone())
                    .collect(),
                chosen: ready[idx] as u32,
                step: st.steps - 1,
                events: Vec::new(),
            };
            st.records.push(record);
            idx
        };
        let tid = ready[idx];
        // The granted thread now performs its announced action; its
        // footprint lands in the segment just opened (recorded decision) or
        // the ongoing one (forced move).
        st.consume_pending(tid);
        st.threads[tid] = ThState::Running;
        st.current = Some(tid);
        self.cv.notify_all();
    }

    /// Register a new controlled thread carrying `seed` as its static
    /// footprint (empty = unknown); returns the start token.
    fn spawn_with_seed(&self, seed: Vec<SchedResource>) -> u64 {
        let mut st = self.st.lock();
        if st.abort {
            return 0;
        }
        let tid = st.threads.len();
        st.threads.push(ThState::Ready);
        st.pending.push(Vec::new());
        st.static_pending.push(seed);
        let token = st.next_token;
        st.next_token += 1;
        st.tokens.insert(token, tid);
        token
    }

    /// Park until granted the turn (or the controller aborted).
    fn wait_turn(&self, st: &mut parking_lot::MutexGuard<'_, CtrlState>, tid: usize) {
        loop {
            if st.abort {
                return;
            }
            if st.current == Some(tid) {
                st.threads[tid] = ThState::Running;
                return;
            }
            self.cv.wait(st);
        }
    }
}

/// How a [`SchedPoint`]'s announced footprint relates to its yield: does it
/// describe the action *just performed* (attribute to the current segment),
/// the action the thread performs *when next granted* (announce as
/// pending), or both sides of the yield?
fn attribution(point: SchedPoint) -> (bool, bool) {
    match point {
        // Yield precedes taking the spawn lock / running admission.
        SchedPoint::Spawn | SchedPoint::Admission { .. } => (false, true),
        // The queue pop / version bump / overlay commit already happened.
        SchedPoint::TaskDequeue { .. }
        | SchedPoint::EarlyRelease { .. }
        | SchedPoint::OccCommit { .. } => (true, false),
        // The attempt read its cells (before) and will validate or re-run
        // against them (after).
        SchedPoint::OccValidate { .. } | SchedPoint::OccRetry { .. } => (true, true),
    }
}

impl SchedHook for Controller {
    fn on_thread_spawn(&self) -> u64 {
        self.spawn_with_seed(Vec::new())
    }

    fn on_thread_spawn_with(&self, static_footprint: &[SchedResource]) -> u64 {
        self.spawn_with_seed(static_footprint.to_vec())
    }

    fn on_thread_start(&self, token: u64) {
        let mut st = self.st.lock();
        if st.abort {
            return;
        }
        let Some(tid) = st.tokens.remove(&token) else {
            return; // spawned during abort: free-run
        };
        st.os.insert(std::thread::current().id(), tid);
        self.wait_turn(&mut st, tid);
    }

    fn on_thread_exit(&self) {
        let mut st = self.st.lock();
        if st.abort {
            return;
        }
        let Some(tid) = self.lookup(&st) else { return };
        st.threads[tid] = ThState::Done;
        if st.current == Some(tid) {
            st.current = None;
            self.schedule(&mut st);
        }
    }

    fn yield_point(&self, point: SchedPoint) {
        self.yield_point_with(point, &[]);
    }

    fn yield_point_with(&self, point: SchedPoint, footprint: &[SchedResource]) {
        let mut st = self.st.lock();
        if st.abort {
            return;
        }
        let Some(tid) = self.lookup(&st) else { return };
        debug_assert_eq!(
            st.current,
            Some(tid),
            "yield from a thread without the turn"
        );
        let (now, pend) = attribution(point);
        if now {
            st.touch_all(tid, footprint);
        }
        if pend {
            st.pending[tid] = footprint.to_vec();
        }
        st.threads[tid] = ThState::Ready;
        st.current = None;
        self.schedule(&mut st);
        self.wait_turn(&mut st, tid);
    }

    fn note(&self, resource: SchedResource) {
        let mut st = self.st.lock();
        if st.abort {
            return;
        }
        let Some(tid) = self.lookup(&st) else { return };
        // A silent access between yields: part of the ongoing segment's
        // footprint, no rescheduling.
        st.touch(tid, resource);
    }

    fn block(&self, resource: SchedResource) {
        let mut st = self.st.lock();
        if st.abort {
            drop(st);
            std::thread::yield_now();
            return;
        }
        let Some(tid) = self.lookup(&st) else {
            drop(st);
            std::thread::yield_now();
            return;
        };
        debug_assert_eq!(
            st.current,
            Some(tid),
            "block from a thread without the turn"
        );
        // The failed predicate check read the resource now; the re-check on
        // wake-up reads it again, so it is also the announced next action.
        st.touch(tid, resource);
        st.pending[tid] = vec![resource];
        st.threads[tid] = ThState::Blocked(resource);
        st.current = None;
        self.schedule(&mut st);
        self.wait_turn(&mut st, tid);
    }

    fn signal(&self, resource: SchedResource) {
        let mut st = self.st.lock();
        if st.abort {
            self.cv.notify_all();
            return;
        }
        // The signaller keeps its turn; woken threads become ready and will
        // re-check their predicates when scheduled.
        if let Some(tid) = self.lookup(&st) {
            st.touch(tid, resource);
        }
        for s in st.threads.iter_mut() {
            if *s == ThState::Blocked(resource) {
                *s = ThState::Ready;
            }
        }
    }

    /// An external (environment) decision: the calling thread keeps the
    /// turn — no rescheduling happens — but the choice among `alts` is
    /// recorded exactly like a thread decision, with each alternative
    /// appearing as a *pseudo-thread*: its [`ExternalChoice::id`] lands in
    /// the [`StepRecord::ready`] set, its footprint in the parallel
    /// `pending` list, and the chosen move's footprint opens the new
    /// segment's first [`SegEvent`]. DPOR then reasons about environment
    /// moves (deliver/drop/duplicate a message, crash a site, advance the
    /// timer wheel) with the same machinery it uses for threads: races
    /// against an external move schedule backtracks at the decision where
    /// its pseudo-id was ready.
    ///
    /// Pseudo-ids must be stable across runs sharing the decision prefix
    /// (the scenario derives them from transport sequence numbers and site
    /// ids) and disjoint from real thread ids, which are small registration
    /// indices. A single alternative is a *forced move*: taken without
    /// recording, its footprint folded into the ongoing segment — the same
    /// rule that keeps thread traces short.
    fn choose_external(&self, alts: &[ExternalChoice]) -> usize {
        let mut st = self.st.lock();
        if st.abort || alts.is_empty() {
            return 0;
        }
        if let Some(tid) = self.lookup(&st) {
            debug_assert_eq!(
                st.current,
                Some(tid),
                "external choice from a thread without the turn"
            );
        }
        // Canonical order: sorted by pseudo-id, so the recorded ready set —
        // and therefore the meaning of a replayed choice index — is a pure
        // function of the alternatives offered, never of the caller's
        // enumeration order.
        let mut order: Vec<usize> = (0..alts.len()).collect();
        order.sort_by_key(|&i| alts[i].id);
        st.steps += 1;
        if st.steps > st.max_steps {
            st.runaway = true;
            st.abort = true;
            self.cv.notify_all();
            return 0;
        }
        st.decider.note_step();
        if alts.len() == 1 {
            let fp = alts[0].footprint.clone();
            st.touch_all(alts[0].id as usize, &fp);
            return 0;
        }
        let ready: Vec<usize> = order.iter().map(|&i| alts[i].id as usize).collect();
        let step = st.trace.len();
        let idx = st.decider.choose(&ready, step).min(ready.len() - 1);
        st.trace.push(ChoiceRecord {
            chosen: idx as u32,
            alternatives: ready.len() as u32,
        });
        let winner = &alts[order[idx]];
        let step_idx = st.steps - 1;
        st.records.push(StepRecord {
            ready: order.iter().map(|&i| alts[i].id).collect(),
            pending: order.iter().map(|&i| alts[i].footprint.clone()).collect(),
            seeds: vec![Vec::new(); alts.len()],
            chosen: winner.id,
            step: step_idx,
            events: vec![SegEvent {
                tid: winner.id,
                resources: winner.footprint.clone(),
            }],
        });
        order[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::PrefixDecider;

    #[test]
    fn single_thread_run_records_no_choices() {
        let ctrl = Controller::new(Box::new(PrefixDecider::new(Vec::new())), 1000);
        ctrl.register_main();
        ctrl.yield_point(SchedPoint::Spawn);
        ctrl.yield_point(SchedPoint::Spawn);
        let trace = ctrl.finish();
        assert!(trace.choices.is_empty(), "forced moves are not recorded");
        assert!(!trace.deadlock);
        assert_eq!(trace.steps, 2);
    }

    #[test]
    fn two_threads_alternate_under_prefix() {
        // Main spawns one helper; choices decide who runs at each yield.
        let ctrl = Controller::new(Box::new(PrefixDecider::new(vec![1, 0])), 1000);
        ctrl.register_main();
        let token = ctrl.on_thread_spawn();
        let h2 = ctrl.clone();
        let order = Arc::new(Mutex::new(Vec::new()));
        let o2 = Arc::clone(&order);
        let t = std::thread::spawn(move || {
            h2.on_thread_start(token);
            o2.lock().push("helper");
            h2.yield_point(SchedPoint::Spawn);
            o2.lock().push("helper2");
            h2.on_thread_exit();
        });
        // First choice (index 1 in ready=[0,1]) hands the turn to the
        // helper; main parks until chosen again.
        ctrl.yield_point(SchedPoint::Spawn);
        order.lock().push("main");
        let trace = ctrl.finish();
        t.join().unwrap();
        assert_eq!(order.lock()[0], "helper", "prefix [1] ran helper first");
        assert!(!trace.choices.is_empty());
        assert_eq!(
            trace.choices[0],
            ChoiceRecord {
                chosen: 1,
                alternatives: 2
            }
        );
    }

    #[test]
    fn blocked_everyone_is_deadlock() {
        let ctrl = Controller::new(Box::new(PrefixDecider::new(Vec::new())), 1000);
        ctrl.register_main();
        // Main blocks with nobody to signal: the controller must abort
        // rather than hang.
        ctrl.block(SchedResource::Quiesce);
        let trace = ctrl.finish();
        assert!(trace.deadlock);
    }

    #[test]
    fn step_records_carry_footprints() {
        // Main spawns a helper; both yield at annotated points. The
        // recorded decisions must carry ready sets, announced pendings,
        // and segment footprints.
        let pid = {
            let mut b = samoa_core::StackBuilder::new();
            b.protocol("P")
        };
        let ctrl = Controller::new(Box::new(PrefixDecider::new(vec![1, 1])), 1000);
        ctrl.register_main();
        let token = ctrl.on_thread_spawn();
        let h2 = ctrl.clone();
        let t = std::thread::spawn(move || {
            h2.on_thread_start(token);
            // Announces Version(0) as the helper's next action.
            h2.yield_point_with(
                SchedPoint::Admission {
                    comp: 1,
                    protocol: pid,
                },
                &[SchedResource::Version(0)],
            );
            h2.signal(SchedResource::Version(0));
            h2.on_thread_exit();
        });
        // Main: an annotated pre-action yield (Spawn → SpawnLock pending).
        ctrl.yield_point_with(SchedPoint::Spawn, &[SchedResource::SpawnLock]);
        ctrl.yield_point_with(SchedPoint::Spawn, &[SchedResource::SpawnLock]);
        ctrl.yield_point_with(SchedPoint::Spawn, &[SchedResource::SpawnLock]);
        let trace = ctrl.finish();
        t.join().unwrap();
        assert_eq!(trace.records.len(), trace.choices.len());
        // Every recorded decision has parallel ready/pending lists and a
        // chosen thread drawn from the ready set.
        for r in &trace.records {
            assert_eq!(r.ready.len(), r.pending.len());
            assert!(r.ready.contains(&r.chosen));
            assert!(r.ready.len() >= 2);
        }
        // The SpawnLock announcements were consumed into segments where
        // main ran, and the helper's Version(0) shows up both as an
        // announced pending and in an executed footprint (signal).
        let all_fp: Vec<SchedResource> = trace.records.iter().flat_map(|r| r.footprint()).collect();
        assert!(all_fp.contains(&SchedResource::SpawnLock));
        assert!(all_fp.contains(&SchedResource::Version(0)));
        assert!(trace.records.iter().any(|r| r
            .pending
            .iter()
            .any(|p| p.contains(&SchedResource::Version(0)))));
    }

    #[test]
    fn static_seed_stands_in_for_unannounced_pending() {
        // A thread spawned with a static seed has announced nothing yet;
        // recorded decisions must snapshot the seed as its pending
        // footprint instead of "unknown".
        let ctrl = Controller::new(Box::new(PrefixDecider::new(vec![0, 0])), 1000);
        ctrl.register_main();
        let token = ctrl.on_thread_spawn_with(&[SchedResource::Version(7)]);
        let h2 = ctrl.clone();
        let t = std::thread::spawn(move || {
            h2.on_thread_start(token);
            h2.yield_point(SchedPoint::Spawn);
            h2.on_thread_exit();
        });
        ctrl.yield_point(SchedPoint::Spawn);
        ctrl.yield_point(SchedPoint::Spawn);
        let trace = ctrl.finish();
        t.join().unwrap();
        let rec = trace.records.first().expect("two ready threads: recorded");
        assert_eq!(
            rec.pending_of(1),
            Some(&[][..]),
            "announced pending stays empty until the first annotated yield"
        );
        assert_eq!(
            rec.seed_of(1),
            Some(&[SchedResource::Version(7)][..]),
            "the spawn-time seed must be snapshotted"
        );
        assert_eq!(
            rec.announced_or_seed(1),
            Some(&[SchedResource::Version(7)][..]),
            "seed must stand in for the unannounced pending"
        );
    }

    #[test]
    fn external_choices_record_pseudo_threads_and_fold_forced_moves() {
        let ctrl = Controller::new(Box::new(PrefixDecider::new(vec![1])), 1000);
        ctrl.register_main();
        // Deliberately unsorted: the controller must canonicalise by id, so
        // the replayed choice index means the same alternative every run.
        let alts = vec![
            ExternalChoice::new(4100, vec![SchedResource::Msg(2)]),
            ExternalChoice::new(4096, vec![SchedResource::Msg(1)]),
        ];
        let picked = ctrl.choose_external(&alts);
        // Prefix choice 1 = second entry of the *sorted* ready set
        // [4096, 4100] = id 4100 = index 0 of the caller's slice.
        assert_eq!(picked, 0);
        // A single alternative is a forced move: taken, not recorded, its
        // footprint folded into the ongoing segment.
        let forced =
            ctrl.choose_external(&[ExternalChoice::new(1600, vec![SchedResource::TimeWheel])]);
        assert_eq!(forced, 0);
        let trace = ctrl.finish();
        assert_eq!(trace.choices.len(), 1);
        assert_eq!(
            trace.choices[0],
            ChoiceRecord {
                chosen: 1,
                alternatives: 2
            }
        );
        let rec = &trace.records[0];
        assert_eq!(rec.ready, vec![4096, 4100]);
        assert_eq!(rec.chosen, 4100);
        assert_eq!(rec.pending_of(4096), Some(&[SchedResource::Msg(1)][..]));
        let fp = rec.footprint();
        assert!(fp.contains(&SchedResource::Msg(2)), "winner's footprint");
        assert!(fp.contains(&SchedResource::TimeWheel), "forced tick folded");
        assert!(!fp.contains(&SchedResource::Msg(1)), "loser stayed pending");
    }

    #[test]
    fn runaway_guard_aborts() {
        let ctrl = Controller::new(Box::new(PrefixDecider::new(Vec::new())), 3);
        ctrl.register_main();
        for _ in 0..10 {
            ctrl.yield_point(SchedPoint::Spawn);
        }
        let trace = ctrl.finish();
        assert!(trace.runaway);
        assert!(trace.steps <= 4);
    }
}
