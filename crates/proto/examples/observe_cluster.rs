//! Observability smoke: a 3-site replicated-KV cluster with both a trace
//! sink and a metrics registry installed, driven through a handful of
//! client operations, then exported as
//!
//! * a Chrome/Perfetto trace (`chrome://tracing`, ui.perfetto.dev) whose
//!   `cat: "causal"` flow events stitch every operation's client submit,
//!   wire hops, abcast deliveries, and KV applies into one cross-site
//!   arrow chain, and
//! * a cluster health JSON (registry snapshot + canonical per-site
//!   transport counters).
//!
//! The example **self-validates** before exiting: both documents must
//! parse as JSON, and the trace must contain at least one cross-site
//! parented span (a causal flow id that appears on two different site
//! tracks). CI's `observe-smoke` job runs this binary and archives the two
//! files on failure.
//!
//! ```text
//! cargo run -p samoa-proto --example observe_cluster [trace.json [metrics.json]]
//! ```

use std::sync::Arc;
use std::time::Duration;

use samoa_core::{ChromeTrace, Registry, TraceBuffer};
use samoa_net::NetConfig;
use samoa_proto::{Cluster, NodeConfig, Observe, StackPolicy};

fn main() {
    let mut args = std::env::args().skip(1);
    let trace_path = args.next().unwrap_or_else(|| "observe_trace.json".into());
    let metrics_path = args.next().unwrap_or_else(|| "observe_metrics.json".into());

    // One sink, one registry, one epoch — shared across all three sites so
    // the spans land on a single comparable timeline.
    let sink = TraceBuffer::new();
    let registry = Arc::new(Registry::new());
    let cluster = Cluster::new_observed(
        3,
        NetConfig::fast(7),
        NodeConfig::with_policy(StackPolicy::Basic),
        Observe {
            sink: Some(sink.clone()),
            registry: Some(Arc::clone(&registry)),
            epoch: None,
        },
    );

    // A few client operations, each homed on a different site.
    for (i, (k, v)) in [
        ("alpha", "1"),
        ("beta", "2"),
        ("alpha", "3"),
        ("gamma", "4"),
    ]
    .iter()
    .enumerate()
    {
        let site = i % 3;
        cluster
            .node(site)
            .kv_put(k.to_string(), v.to_string())
            .wait(Duration::from_secs(10))
            .unwrap_or_else(|| panic!("put {i} from site {site} never committed"));
    }
    cluster.settle();

    // Export both documents.
    let events = sink.drain();
    let mut chrome = ChromeTrace::new();
    chrome.add_process(
        0,
        "samoa cluster (3 sites)",
        &events,
        cluster.node(0).runtime().stack(),
    );
    let trace_json = chrome.render();
    let health = cluster.metrics().expect("registry was installed");
    let metrics_json = health.to_json();
    std::fs::write(&trace_path, &trace_json).unwrap_or_else(|e| panic!("write {trace_path}: {e}"));
    std::fs::write(&metrics_path, &metrics_json)
        .unwrap_or_else(|e| panic!("write {metrics_path}: {e}"));

    // -- Self-validation ---------------------------------------------------

    // 1. The trace parses and holds a causal flow chain that crosses sites:
    //    one flow id seen on at least two distinct site tracks, with the
    //    originating "s" phase present.
    let doc = serde_json::from_str(&trace_json).expect("trace JSON must parse");
    let trace_events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    let mut cross_site = 0usize;
    let mut flow_ids: Vec<u64> = trace_events
        .iter()
        .filter(|e| e.get("cat").and_then(|c| c.as_str()) == Some("causal"))
        .filter_map(|e| e.get("id").and_then(|v| v.as_u64()))
        .collect();
    flow_ids.sort_unstable();
    flow_ids.dedup();
    for id in &flow_ids {
        let mut tids: Vec<u64> = trace_events
            .iter()
            .filter(|e| {
                e.get("cat").and_then(|c| c.as_str()) == Some("causal")
                    && e.get("id").and_then(|v| v.as_u64()) == Some(*id)
            })
            .filter_map(|e| e.get("tid").and_then(|v| v.as_u64()))
            .collect();
        tids.sort_unstable();
        tids.dedup();
        let has_origin = trace_events.iter().any(|e| {
            e.get("cat").and_then(|c| c.as_str()) == Some("causal")
                && e.get("id").and_then(|v| v.as_u64()) == Some(*id)
                && e.get("ph").and_then(|p| p.as_str()) == Some("s")
        });
        if tids.len() >= 2 && has_origin {
            cross_site += 1;
        }
    }
    assert!(
        cross_site >= 1,
        "no causal flow crossed sites ({} flow ids total)",
        flow_ids.len()
    );

    // 2. The metrics snapshot parses and reports every site's KV applies
    //    (4 ops committed cluster-wide) plus live transport counters.
    let m = serde_json::from_str(&metrics_json).expect("metrics JSON must parse");
    let counters = m
        .get("metrics")
        .and_then(|v| v.get("counters"))
        .expect("metrics.counters object");
    for site in 0..3 {
        let applies = counters
            .get(&format!("site{site}.kv.applies"))
            .and_then(|v| v.as_u64())
            .unwrap_or(0);
        assert_eq!(applies, 4, "site {site} applied {applies}/4 commands");
        let sent = m
            .get("transport")
            .and_then(|t| t.get(&format!("site{site}")))
            .and_then(|s| s.get("sent"))
            .and_then(|v| v.as_u64())
            .unwrap_or(0);
        assert!(sent > 0, "site {site} reports no transport traffic");
    }

    println!("wrote {trace_path} ({} trace events)", trace_events.len());
    println!("wrote {metrics_path}");
    println!(
        "validated: {} causal flows, {} cross-site",
        flow_ids.len(),
        cross_site
    );
    println!("\ncluster health:\n{}", health.render());
}
