//! End-to-end tests of the group-communication stack over the simulated
//! network: reliable broadcast, atomic-broadcast total order, membership
//! changes, crashes, and message loss — under every isolation policy.

#![allow(clippy::field_reassign_with_default)]
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use bytes::Bytes;
use samoa_net::{NetConfig, SiteId};
use samoa_proto::{Cluster, NodeConfig, StackPolicy};

fn msg(i: usize) -> Bytes {
    Bytes::from(format!("m{i}"))
}

/// Deliveries as a set (RelCast guarantees reliability, not order).
fn rb_set(c: &Cluster, node: usize) -> BTreeSet<(SiteId, Bytes)> {
    c.node(node).rb_delivered().into_iter().collect()
}

#[test]
fn rbcast_reaches_every_site() {
    let c = Cluster::new(4, NetConfig::fast(1), NodeConfig::default());
    for i in 0..5 {
        c.node(i % 4).rbcast(msg(i));
    }
    c.settle();
    let expected = rb_set(&c, 0);
    assert_eq!(expected.len(), 5);
    for i in 1..4 {
        assert_eq!(rb_set(&c, i), expected, "site {i} diverged");
    }
}

#[test]
fn abcast_total_order_is_identical_everywhere() {
    let c = Cluster::new(3, NetConfig::lan(2), NodeConfig::default());
    for i in 0..10 {
        c.node(i % 3).abcast(msg(i));
    }
    c.settle();
    let order0 = c.node(0).ab_delivered();
    assert_eq!(order0.len(), 10, "not all messages ordered");
    for i in 1..3 {
        assert_eq!(c.node(i).ab_delivered(), order0, "site {i} diverged");
    }
    // Per-origin uniqueness: each (origin, payload) delivered exactly once.
    let set: BTreeSet<_> = order0.iter().cloned().collect();
    assert_eq!(set.len(), 10);
}

#[test]
fn abcast_agrees_under_every_policy() {
    for policy in [
        StackPolicy::Serial,
        StackPolicy::Basic,
        StackPolicy::Bound,
        StackPolicy::Route,
        StackPolicy::TwoPhase,
    ] {
        let c = Cluster::new(3, NetConfig::fast(7), NodeConfig::with_policy(policy));
        for i in 0..6 {
            c.node(i % 3).abcast(msg(i));
        }
        c.settle();
        let order0 = c.node(0).ab_delivered();
        assert_eq!(order0.len(), 6, "{policy:?}: lost messages");
        for i in 1..3 {
            assert_eq!(
                c.node(i).ab_delivered(),
                order0,
                "{policy:?}: site {i} diverged"
            );
        }
    }
}

#[test]
fn basic_policy_history_is_serializable() {
    let mut cfg = NodeConfig::default();
    cfg.record_history = true;
    let c = Cluster::new(3, NetConfig::fast(3), cfg);
    for i in 0..6 {
        c.node(i % 3).abcast(msg(i));
        c.node((i + 1) % 3).rbcast(msg(100 + i));
    }
    c.settle();
    for i in 0..3 {
        c.node(i)
            .runtime()
            .check_isolation()
            .unwrap_or_else(|v| panic!("site {i}: {v}"));
    }
}

#[test]
fn voluntary_leave_installs_consistent_views() {
    let c = Cluster::new(4, NetConfig::fast(4), NodeConfig::default());
    c.node(0).request_leave(SiteId(3));
    c.settle();
    for i in 0..3 {
        let v = c.node(i).current_view();
        assert_eq!(v.members(), &[SiteId(0), SiteId(1), SiteId(2)], "site {i}");
        assert_eq!(v.id, 1);
    }
}

#[test]
fn join_after_leave_round_trips() {
    let c = Cluster::new(3, NetConfig::fast(5), NodeConfig::default());
    c.node(0).request_leave(SiteId(2));
    c.settle();
    assert_eq!(c.node(0).current_view().len(), 2);
    c.node(1).request_join(SiteId(2));
    c.settle();
    for i in 0..2 {
        let v = c.node(i).current_view();
        assert_eq!(v.len(), 3, "site {i}");
        assert_eq!(v.id, 2);
        assert!(v.contains(SiteId(2)));
    }
}

#[test]
fn broadcast_during_view_change_loses_nothing_with_isolation() {
    // The §3 "Problem" scenario (experiment E5): a join is in flight while
    // broadcasts stream. Under an isolating policy, every message must
    // reach every member of the final view.
    for policy in [StackPolicy::Basic, StackPolicy::Serial, StackPolicy::Route] {
        let mut cfg = NodeConfig::with_policy(policy);
        // Site 3 exists but starts outside the group.
        cfg.initial_members = Some(vec![SiteId(0), SiteId(1), SiteId(2)]);
        let c = Cluster::new(4, NetConfig::fast(6), cfg);
        // Stream broadcasts while the join churns through.
        for i in 0..3 {
            c.node(i).rbcast(msg(i));
        }
        c.node(0).request_join(SiteId(3));
        for i in 3..8 {
            c.node(i % 3).rbcast(msg(i));
        }
        c.settle();
        for i in 0..3 {
            assert_eq!(
                c.node(i).current_view().members(),
                &[SiteId(0), SiteId(1), SiteId(2), SiteId(3)],
                "{policy:?}: site {i} view"
            );
        }
        // Messages broadcast after the join was installed everywhere must
        // reach site 3; messages from before may legitimately miss it. The
        // strong assertion: the three original members agree pairwise, and
        // nothing was lost among them.
        let expected = rb_set(&c, 0);
        assert_eq!(expected.len(), 8, "{policy:?}: lost messages");
        for i in 1..3 {
            assert_eq!(rb_set(&c, i), expected, "{policy:?}: site {i}");
        }
    }
}

#[test]
fn message_loss_is_masked_by_retransmission() {
    let mut net_cfg = NetConfig::fast(8);
    net_cfg.loss_probability = 0.10;
    let mut cfg = NodeConfig::default();
    cfg.rto = Duration::from_millis(15);
    let c = Cluster::new(3, net_cfg, cfg);
    for i in 0..6 {
        c.node(i % 3).abcast(msg(i));
    }
    // With loss, settle() alone can race a pending retransmission; poll.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        c.settle();
        if (0..3).all(|i| c.node(i).ab_delivered().len() == 6) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "retransmission did not recover all messages: {:?}",
            (0..3)
                .map(|i| c.node(i).ab_delivered().len())
                .collect::<Vec<_>>()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let order0 = c.node(0).ab_delivered();
    for i in 1..3 {
        assert_eq!(c.node(i).ab_delivered(), order0, "site {i} diverged");
    }
    // Loss actually happened...
    let dropped = c.net().total_stats().dropped_loss;
    assert!(dropped > 0, "no loss injected — test vacuous");
    // ...and the channels fully repair: every unacknowledged message is
    // eventually retransmitted and acked, so pending drains everywhere.
    // (Deliveries alone can succeed via RelCast's flooding before any RTO
    // fires, so `retransmissions > 0` is not guaranteed — drained pending
    // is the correct liveness assertion.)
    let deadline = Instant::now() + Duration::from_secs(30);
    while (0..3).any(|i| c.node(i).relcomm_pending() > 0) {
        assert!(
            Instant::now() < deadline,
            "pending never drained: {:?}",
            (0..3)
                .map(|i| c.node(i).relcomm_pending())
                .collect::<Vec<_>>()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn crashed_site_is_suspected_and_excluded() {
    let mut cfg = NodeConfig::default();
    cfg.enable_fd = true;
    cfg.fd_timeout = Duration::from_millis(120);
    cfg.tick_interval = Duration::from_millis(20);
    let c = Cluster::new(3, NetConfig::fast(9), cfg);
    // Let heartbeats flow so nobody is falsely suspected.
    std::thread::sleep(Duration::from_millis(150));
    c.net().crash(SiteId(2));
    // Wait for suspicion -> leave -> consensus among the survivors.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let done = (0..2).all(|i| {
            let v = c.node(i).current_view();
            !v.contains(SiteId(2))
        });
        if done {
            break;
        }
        assert!(Instant::now() < deadline, "crashed site never excluded");
        std::thread::sleep(Duration::from_millis(30));
    }
    // The surviving majority still orders messages.
    c.node(0).abcast(msg(1));
    c.node(1).abcast(msg(2));
    let deadline = Instant::now() + Duration::from_secs(20);
    while c.node(0).ab_delivered().len() < 2 || c.node(1).ab_delivered().len() < 2 {
        assert!(Instant::now() < deadline, "survivors stopped ordering");
        std::thread::sleep(Duration::from_millis(30));
    }
    assert_eq!(c.node(0).ab_delivered(), c.node(1).ab_delivered());
}

#[test]
fn unsync_policy_still_functions_in_light_traffic() {
    // Unsync is unsafe under contention, but a sequential trickle works —
    // this pins down that the baseline is runnable for the benches.
    let c = Cluster::new(
        3,
        NetConfig::fast(10),
        NodeConfig::with_policy(StackPolicy::Unsync),
    );
    c.node(0).abcast(msg(0));
    c.settle();
    c.node(1).abcast(msg(1));
    c.settle();
    let order0 = c.node(0).ab_delivered();
    assert_eq!(order0.len(), 2);
    assert_eq!(c.node(2).ab_delivered(), order0);
}

#[test]
fn stack_diagnostics_expose_progress() {
    let c = Cluster::new(3, NetConfig::fast(11), NodeConfig::default());
    c.node(0).abcast(msg(0));
    c.settle();
    assert_eq!(c.node(0).ab_pending(), 0, "request left pending");
    assert!(c.node(0).cast_seen() > 0);
    assert!(c.node(0).suspects().is_empty());
    // Consensus state for decided instances is garbage collected.
    assert_eq!(c.node(0).consensus_instances(), 0);
    assert_eq!(c.node(0).observed_views().len(), 0, "no view ops occurred");
}
