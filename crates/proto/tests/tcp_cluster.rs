//! The full stack over real localhost sockets: KV convergence under
//! concurrent load, and leader failover with the failure detector.

use std::time::{Duration, Instant};

use samoa_net::SiteId;
use samoa_proto::{NodeConfig, StackPolicy, TcpCluster};

fn wait_until(deadline_ms: u64, mut pred: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_millis(deadline_ms);
    while Instant::now() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    pred()
}

#[test]
fn concurrent_kv_load_converges_over_tcp() {
    let tcp = TcpCluster::new(3, NodeConfig::with_policy(StackPolicy::Basic)).unwrap();
    let total = 45usize;
    for i in 0..total as u64 {
        let site = (i % 3) as usize;
        match i % 3 {
            0 => drop(
                tcp.node(site)
                    .kv_put(format!("k{}", i % 8), format!("v{i}")),
            ),
            1 => drop(tcp.node(site).kv_get(format!("k{}", i % 8))),
            _ => drop(
                tcp.node(site)
                    .kv_cas(format!("k{}", i % 8), None, format!("c{i}")),
            ),
        }
    }
    assert!(
        wait_until(30_000, || (0..3).all(|i| tcp.node(i).kv_applied() == total)),
        "applied: {:?}",
        (0..3).map(|i| tcp.node(i).kv_applied()).collect::<Vec<_>>()
    );
    let d0 = tcp.node(0).kv_digest();
    assert!((1..3).all(|i| tcp.node(i).kv_digest() == d0));
    // Prefix agreement on the real-socket backend too.
    let logs: Vec<_> = (0..3).map(|i| tcp.node(i).kv_log()).collect();
    for a in &logs {
        for b in &logs {
            let common = a.len().min(b.len());
            assert_eq!(&a[..common], &b[..common]);
        }
    }
}

#[test]
fn leader_failover_mid_load_recovers() {
    let mut cfg = NodeConfig::with_policy(StackPolicy::Basic);
    cfg.enable_fd = true;
    cfg.fd_timeout = Duration::from_millis(300);
    let mut tcp = TcpCluster::new(3, cfg).unwrap();

    // Warm up: traffic flows with the round-0 coordinator (site 0) alive.
    assert!(tcp
        .node(1)
        .kv_put("warm", "up")
        .wait(Duration::from_secs(20))
        .is_some());

    // Kill the coordinator mid-system. Survivors' failure detectors must
    // suspect it and membership must exclude it from the view.
    tcp.crash(0);
    // (The FD clears its suspicion once the view excludes the site, so the
    // durable signal is the view itself.)
    assert!(
        wait_until(20_000, || {
            (1..3).all(|i| !tcp.node(i).current_view().contains(SiteId(0)))
        }),
        "survivors never excluded the crashed coordinator: suspects={:?} views={:?}",
        (1..3).map(|i| tcp.node(i).suspects()).collect::<Vec<_>>(),
        (1..3)
            .map(|i| tcp.node(i).current_view())
            .collect::<Vec<_>>()
    );

    // Recovery probe: a fresh command must commit on the survivor quorum.
    let r = tcp
        .node(1)
        .kv_put("after", "failover")
        .wait(Duration::from_secs(30));
    assert!(r.is_some(), "post-failover command never committed");
    assert!(wait_until(20_000, || tcp.node(2).kv_applied()
        == tcp.node(1).kv_applied()));
    assert_eq!(tcp.node(1).kv_digest(), tcp.node(2).kv_digest());

    // The fault window is visible in transport stats.
    let s = tcp.mesh().total_stats();
    assert!(s.retried + s.reconnects + s.dropped() > 0);
}
