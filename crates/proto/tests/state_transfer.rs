//! Join-time state transfer: a site joining mid-stream adopts the group's
//! ordering state (next consensus instance, delivered set, current view)
//! and participates in atomic broadcast from then on. Without the transfer,
//! a fresh joiner would buffer every future decision behind instances it
//! can never receive.

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use bytes::Bytes;
use samoa_net::{NetConfig, SiteId};
use samoa_proto::{Cluster, NodeConfig, StackPolicy};

fn msg(i: usize) -> Bytes {
    Bytes::from(format!("m{i}"))
}

fn cluster_with_outsider(seed: u64, policy: StackPolicy) -> Cluster {
    let mut cfg = NodeConfig::with_policy(policy);
    cfg.initial_members = Some(vec![SiteId(0), SiteId(1), SiteId(2)]);
    Cluster::new(4, NetConfig::fast(seed), cfg)
}

#[test]
fn fresh_joiner_adopts_ordering_state() {
    let c = cluster_with_outsider(41, StackPolicy::Basic);
    // Advance the group several instances before the join.
    for i in 0..6 {
        c.node(i % 3).abcast(msg(i));
    }
    c.settle();
    assert_eq!(c.node(0).ab_delivered().len(), 6);
    assert!(c.node(3).ab_delivered().is_empty(), "outsider saw traffic");

    // Join mid-life, then keep broadcasting.
    c.node(0).request_join(SiteId(3));
    c.settle();
    assert!(
        c.node(3).current_view().contains(SiteId(3)),
        "joiner did not install the view via state transfer"
    );
    for i in 6..12 {
        c.node(i % 4).abcast(msg(i));
    }
    c.settle();

    // The incumbents have everything.
    let full = c.node(0).ab_delivered();
    assert_eq!(full.len(), 12);
    for i in 1..3 {
        assert_eq!(c.node(i).ab_delivered(), full, "site {i} diverged");
    }
    // The joiner has exactly the post-join suffix, in the same order.
    let joiner = c.node(3).ab_delivered();
    assert_eq!(
        joiner,
        full[full.len() - joiner.len()..].to_vec(),
        "joiner's sequence is not a suffix of the group order"
    );
    assert!(
        joiner.len() >= 6,
        "joiner missed post-join messages: {}",
        joiner.len()
    );
}

#[test]
fn joiner_can_originate_abcasts() {
    let c = cluster_with_outsider(42, StackPolicy::Basic);
    for i in 0..4 {
        c.node(i % 3).abcast(msg(i));
    }
    c.settle();
    c.node(1).request_join(SiteId(3));
    c.settle();
    // The joiner itself broadcasts; everyone (including it) must order it.
    c.node(3).abcast(Bytes::from_static(b"from-joiner"));
    c.settle();
    let full = c.node(0).ab_delivered();
    assert!(full
        .iter()
        .any(|(o, b)| *o == SiteId(3) && b == &Bytes::from_static(b"from-joiner")));
    let joiner = c.node(3).ab_delivered();
    assert!(
        joiner.iter().any(|(o, _)| *o == SiteId(3)),
        "joiner never saw its own message ordered"
    );
    // Suffix property still holds.
    assert_eq!(joiner, full[full.len() - joiner.len()..].to_vec());
}

#[test]
fn state_transfer_works_under_route_policy() {
    let c = cluster_with_outsider(43, StackPolicy::Route);
    for i in 0..3 {
        c.node(i % 3).abcast(msg(i));
    }
    c.settle();
    c.node(0).request_join(SiteId(3));
    c.settle();
    c.node(2).abcast(msg(99));
    c.settle();
    assert!(c.node(3).current_view().contains(SiteId(3)));
    let joiner = c.node(3).ab_delivered();
    assert!(
        joiner.iter().any(|(_, b)| b == &msg(99)),
        "joiner missed the post-join broadcast under Route"
    );
}

#[test]
fn rejoin_after_leave_resyncs() {
    // A member leaves, the group moves on, then it rejoins: its stale
    // next_inst must be fast-forwarded by the transfer.
    let c = Cluster::new(3, NetConfig::fast(44), NodeConfig::default());
    c.node(0).abcast(msg(0));
    c.settle();
    c.node(0).request_leave(SiteId(2));
    c.settle();
    assert!(!c.node(0).current_view().contains(SiteId(2)));
    // Group of {0,1} orders more messages; site 2 is deaf to them.
    for i in 1..4 {
        c.node(i % 2).abcast(msg(i));
    }
    c.settle();
    c.node(1).request_join(SiteId(2));
    c.settle();
    c.node(0).abcast(msg(9));
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        c.settle();
        let back = c.node(2).ab_delivered();
        if back.iter().any(|(_, b)| b == &msg(9)) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "rejoined site never caught up: {back:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // No duplicate deliveries at the rejoined site.
    let back = c.node(2).ab_delivered();
    let set: BTreeSet<_> = back.iter().collect();
    assert_eq!(set.len(), back.len(), "duplicate deliveries after rejoin");
}
