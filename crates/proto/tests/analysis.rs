//! The static declaration analyzer run over the real group-communication
//! stack: the full abcast stack lints clean, the inferred declarations
//! validate cleanly, and `isolated route` executes under them (the route
//! table in `Node` *is* `infer_route`'s output).

use samoa_core::analysis::{
    analyze_deadlocks, codes, infer_bounds, infer_m, infer_route, lint_stack, validate_decl,
    ConflictMatrix, Severity, CYCLE_FALLBACK_BOUND,
};
use samoa_core::prelude::*;
use samoa_net::NetConfig;
use samoa_proto::{Cluster, Events, NodeConfig, StackPolicy};

fn externals(ev: &Events) -> Vec<EventType> {
    vec![
        ev.rc_data,
        ev.rc_ack,
        ev.fd_beat,
        ev.bcast,
        ev.abcast,
        ev.join_leave,
        ev.retransmit_tick,
        ev.fd_tick,
    ]
}

#[test]
fn stack_has_full_metadata_and_lints_clean() {
    let c = Cluster::new(3, NetConfig::fast(7), NodeConfig::default());
    let node = c.node(0);
    let stack = node.runtime().stack();
    assert!(stack.has_full_trigger_metadata());
    let report = lint_stack(stack, &externals(node.events()));
    assert!(report.is_clean(), "expected clean stack:\n{report}");
}

#[test]
fn inferred_m_for_ack_is_relcomm_only() {
    let c = Cluster::new(3, NetConfig::fast(7), NodeConfig::default());
    let node = c.node(0);
    let stack = node.runtime().stack();
    let ev = node.events();

    let m = infer_m(stack, ev.rc_ack);
    let recv_ack = stack.handler_by_name("relcomm.recv_ack").unwrap();
    assert_eq!(m, vec![stack.handler_protocol(recv_ack)]);

    // Acyclic fragment: bounds are exact, with no cycle warning.
    let (bounds, rep) = infer_bounds(stack, ev.rc_ack);
    assert!(rep.is_clean(), "{rep}");
    assert_eq!(bounds, vec![(stack.handler_protocol(recv_ack), 1)]);
    assert!(validate_decl(stack, &Decl::Bound(&bounds), Some(ev.rc_ack)).is_clean());
}

#[test]
fn inferred_m_for_abcast_reaches_whole_stack_and_validates() {
    let c = Cluster::new(3, NetConfig::fast(7), NodeConfig::default());
    let node = c.node(0);
    let stack = node.runtime().stack();
    let ev = node.events();

    // An abcast request can cascade through every microprotocol.
    let m = infer_m(stack, ev.abcast);
    assert_eq!(m, stack.all_protocols());
    assert!(validate_decl(stack, &Decl::Basic(&m), Some(ev.abcast)).is_clean());

    // Dropping any one protocol from the inferred set is an SA010 error.
    let partial: Vec<ProtocolId> = m[1..].to_vec();
    let report = validate_decl(stack, &Decl::Basic(&partial), Some(ev.abcast));
    assert!(report.has_errors());
    assert!(report.render().contains(codes::UNDECLARED_PROTOCOL));
}

#[test]
fn abcast_bounds_fall_back_on_the_consensus_cycle() {
    // abcast.on_deliver -> consensus.propose -> relcast.bcast ->
    // abcast.on_deliver is a static cycle, so path counting cannot bound
    // visits: inference warns (SA030) and falls back to a safe bound.
    let c = Cluster::new(3, NetConfig::fast(7), NodeConfig::default());
    let node = c.node(0);
    let stack = node.runtime().stack();
    let ev = node.events();

    let (bounds, rep) = infer_bounds(stack, ev.abcast);
    assert_eq!(rep.count(Severity::Error), 0, "{rep}");
    assert!(rep.render().contains(codes::CYCLE_BOUND_UNKNOWN));
    assert_eq!(bounds.len(), stack.all_protocols().len());
    assert!(bounds.iter().all(|&(_, b)| b == CYCLE_FALLBACK_BOUND));

    // The fallback declaration is error-free (the same cycle warning).
    let report = validate_decl(stack, &Decl::Bound(&bounds), Some(ev.abcast));
    assert!(!report.has_errors(), "{report}");
}

/// The deadlock certification of the shipped stack: under every bundled
/// policy, the abcast/consensus/membership/fd stack declares no blocking
/// nested spawns, so the Rule-2 wait-can-precede analysis finds no cycle —
/// not a single SA040 — and the whole-stack static report
/// ([`Runtime::static_report`], what `Runtime::new_checked` gates on) is
/// error-free. A deliberately cyclic stack is rejected by the same gate
/// (`new_checked_rejects_admission_deadlock_cycle` in `samoa-core`).
#[test]
fn shipped_stack_is_certified_admission_deadlock_free() {
    for policy in [
        StackPolicy::Unsync,
        StackPolicy::Serial,
        StackPolicy::Basic,
        StackPolicy::Bound,
        StackPolicy::Route,
        StackPolicy::TwoPhase,
    ] {
        let c = Cluster::new(3, NetConfig::fast(7), NodeConfig::with_policy(policy));
        let node = c.node(0);
        let stack = node.runtime().stack();

        let deadlocks = analyze_deadlocks(stack, &externals(node.events()));
        assert!(
            deadlocks.is_clean(),
            "{policy:?}: admission-deadlock analysis not clean:\n{deadlocks}"
        );

        let report = Runtime::static_report(stack);
        assert!(
            !report.has_errors(),
            "{policy:?}: static report has errors:\n{report}"
        );
        assert!(
            !report.render().contains(codes::ADMISSION_DEADLOCK),
            "{policy:?}: unexpected SA040:\n{report}"
        );
    }
}

/// The conflict matrix of the shipped stack: an abcast cascade can reach
/// every microprotocol, so every protocol is reachable and the abcast
/// footprint couples the full stack — and the SA05x pass reports no
/// provably-unreachable conflicts.
#[test]
fn shipped_stack_conflict_matrix_is_total_and_reachable() {
    let c = Cluster::new(3, NetConfig::fast(7), NodeConfig::default());
    let node = c.node(0);
    let stack = node.runtime().stack();

    let (matrix, report) = ConflictMatrix::analyze(stack, &externals(node.events()));
    assert!(
        report.is_clean(),
        "SA05x noise on the real stack:\n{report}"
    );
    assert_eq!(matrix.protocol_count(), stack.all_protocols().len());
    for &p in &stack.all_protocols() {
        assert!(matrix.contended(p), "protocol {p:?} unreachable");
    }
    let abcast_fp = matrix
        .footprint(node.events().abcast)
        .expect("abcast is an analyzed root");
    assert_eq!(
        abcast_fp.len(),
        stack.all_protocols().len(),
        "abcast should statically reach the whole stack"
    );
}

#[test]
fn inferred_route_validates_and_executes_abcast() {
    let c = Cluster::new(
        3,
        NetConfig::fast(7),
        NodeConfig::with_policy(StackPolicy::Route),
    );
    let node = c.node(0);
    let stack = node.runtime().stack();
    let ev = node.events();

    let pat = infer_route(stack, ev.abcast);
    assert!(validate_decl(stack, &Decl::Route(&pat), Some(ev.abcast)).is_clean());

    // The node's own Route policy uses exactly this inference; an abcast
    // must still reach every site in the same total order.
    c.node(0).abcast("alpha");
    c.node(1).abcast("beta");
    c.settle();
    let order = c.node(0).ab_delivered();
    assert_eq!(order.len(), 2);
    for i in 1..3 {
        assert_eq!(c.node(i).ab_delivered(), order, "site {i} diverged");
    }
}
