//! Property-based tests for the protocol substrate: wire-codec round-trips
//! over arbitrary messages, group-view algebra, and atomic-broadcast
//! delivery invariants.

use bytes::Bytes;
use proptest::prelude::*;
use samoa_net::SiteId;
use samoa_proto::{
    AbMsg, AbPayload, CastData, CastMsg, ConsMsg, GroupView, MsgUid, Payload, SyncMsg, TraceCtx,
    ViewOp, Wire,
};

fn arb_uid() -> impl Strategy<Value = MsgUid> {
    (any::<u16>(), any::<u64>()).prop_map(|(o, s)| MsgUid {
        origin: SiteId(o),
        seq: s,
    })
}

fn arb_ab_payload() -> impl Strategy<Value = AbPayload> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(|v| AbPayload::User(Bytes::from(v))),
        (any::<bool>(), any::<u16>()).prop_map(|(j, s)| AbPayload::ViewOp(
            if j { ViewOp::Join } else { ViewOp::Leave },
            SiteId(s)
        )),
    ]
}

fn arb_ab() -> impl Strategy<Value = AbMsg> {
    (arb_uid(), arb_ab_payload()).prop_map(|(uid, payload)| AbMsg { uid, payload })
}

fn arb_batch() -> impl Strategy<Value = Vec<AbMsg>> {
    proptest::collection::vec(arb_ab(), 0..8)
}

fn arb_cast() -> impl Strategy<Value = CastMsg> {
    (
        arb_uid(),
        prop_oneof![
            proptest::collection::vec(any::<u8>(), 0..64)
                .prop_map(|v| CastData::User(Bytes::from(v))),
            arb_ab().prop_map(CastData::AbRequest),
            (any::<u64>(), arb_batch()).prop_map(|(inst, batch)| CastData::Decide { inst, batch }),
        ],
    )
        .prop_map(|(uid, data)| CastMsg { uid, data })
}

fn arb_cons() -> impl Strategy<Value = ConsMsg> {
    prop_oneof![
        (any::<u64>(), any::<u64>(), arb_batch(), any::<u64>()).prop_map(
            |(inst, round, est, est_round)| ConsMsg::Kick {
                inst,
                round,
                est,
                est_round
            }
        ),
        (any::<u64>(), any::<u64>()).prop_map(|(inst, round)| ConsMsg::Collect { inst, round }),
        (any::<u64>(), any::<u64>(), arb_batch(), any::<u64>()).prop_map(
            |(inst, round, est, est_round)| ConsMsg::Estimate {
                inst,
                round,
                est,
                est_round
            }
        ),
        (any::<u64>(), any::<u64>(), arb_batch())
            .prop_map(|(inst, round, value)| ConsMsg::Propose { inst, round, value }),
        (any::<u64>(), any::<u64>()).prop_map(|(inst, round)| ConsMsg::Ack { inst, round }),
    ]
}

fn arb_sync() -> impl Strategy<Value = SyncMsg> {
    (
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec(any::<u16>(), 0..6),
        proptest::collection::vec(arb_uid(), 0..12),
    )
        .prop_map(|(next_inst, view_id, members, delivered)| SyncMsg {
            next_inst,
            view_id,
            members: members.into_iter().map(SiteId).collect(),
            delivered,
        })
}

fn arb_ctx() -> impl Strategy<Value = Option<TraceCtx>> {
    prop_oneof![
        Just(None),
        (any::<u16>(), any::<u64>(), any::<u8>()).prop_map(|(origin, op, hop)| Some(TraceCtx {
            origin: SiteId(origin),
            op,
            hop,
        })),
    ]
}

fn arb_wire() -> impl Strategy<Value = Wire> {
    prop_oneof![
        (any::<u64>(), arb_ctx(), arb_cast()).prop_map(|(seq, ctx, c)| Wire::Data {
            seq,
            ctx,
            payload: Payload::Cast(c)
        }),
        (any::<u64>(), arb_ctx(), arb_cons()).prop_map(|(seq, ctx, c)| Wire::Data {
            seq,
            ctx,
            payload: Payload::Cons(c)
        }),
        (any::<u64>(), arb_ctx(), arb_sync()).prop_map(|(seq, ctx, s)| Wire::Data {
            seq,
            ctx,
            payload: Payload::Sync(s)
        }),
        any::<u64>().prop_map(|seq| Wire::Ack { seq }),
        Just(Wire::Heartbeat),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode ∘ decode = identity for every wire message.
    #[test]
    fn codec_roundtrip(w in arb_wire()) {
        let encoded = w.encode();
        let decoded = Wire::decode(encoded).expect("decode failed");
        prop_assert_eq!(decoded, w);
    }

    /// The decoder never panics on arbitrary bytes — it returns an error or
    /// a message, and any successfully decoded message re-encodes.
    #[test]
    fn decoder_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        if let Ok(w) = Wire::decode(Bytes::from(bytes)) {
            let _ = w.encode();
        }
    }

    /// Truncating a valid encoding never panics and (except for zero-length
    /// suffix removal on variable payloads) fails cleanly.
    #[test]
    fn decoder_total_on_truncations(w in arb_wire(), cut in 0usize..64) {
        let enc = w.encode();
        if cut < enc.len() {
            let truncated = enc.slice(0..enc.len() - 1 - cut % enc.len().max(1));
            let _ = Wire::decode(truncated);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// View algebra: applying any op sequence keeps members sorted and
    /// deduplicated, and the view id equals the number of ops applied.
    #[test]
    fn view_ops_preserve_invariants(
        n in 1usize..6,
        ops in proptest::collection::vec((any::<bool>(), 0u16..12), 0..20),
    ) {
        let mut v = GroupView::of_first(n);
        for (i, &(join, site)) in ops.iter().enumerate() {
            let op = if join { ViewOp::Join } else { ViewOp::Leave };
            v = v.apply(op, SiteId(site));
            prop_assert_eq!(v.id, (i + 1) as u64);
            let members = v.members();
            for w in members.windows(2) {
                prop_assert!(w[0] < w[1], "members must stay sorted+deduped");
            }
            if join {
                prop_assert!(v.contains(SiteId(site)));
            } else {
                prop_assert!(!v.contains(SiteId(site)));
            }
        }
        // Majority is always more than half.
        if !v.is_empty() {
            prop_assert!(2 * v.majority() > v.len());
        }
    }

    /// View application is deterministic and order-sensitive in exactly the
    /// right way: the same op sequence yields identical views (total-order
    /// delivery is what makes membership consistent).
    #[test]
    fn same_op_sequence_same_view(
        ops in proptest::collection::vec((any::<bool>(), 0u16..8), 0..12),
    ) {
        let run = || {
            let mut v = GroupView::of_first(3);
            for &(join, site) in &ops {
                let op = if join { ViewOp::Join } else { ViewOp::Leave };
                v = v.apply(op, SiteId(site));
            }
            v
        };
        prop_assert_eq!(run(), run());
    }
}
