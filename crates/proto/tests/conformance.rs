//! Cross-backend conformance: the same abcast scenario over `SimNet` and
//! over `TcpNet` produces identical delivered sequences on every site —
//! pinning the `Transport` seam contract (the stack cannot tell the
//! backends apart).

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use samoa_net::NetConfig;
use samoa_proto::{Cluster, Node, NodeConfig, StackPolicy, TcpCluster};

const SITES: usize = 3;
const MSGS: usize = 12;

fn wait_until(deadline_ms: u64, mut pred: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_millis(deadline_ms);
    while Instant::now() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    pred()
}

/// Drive the scenario: `MSGS` abcasts submitted round-robin across sites,
/// each submitted only after every site delivered the previous one — the
/// total order is then forced to equal submission order, making the
/// delivered sequence comparable across backends.
fn drive(nodes: &[Arc<Node>]) -> Vec<Vec<(u16, Bytes)>> {
    for i in 0..MSGS {
        nodes[i % nodes.len()].abcast(format!("msg-{i}"));
        assert!(
            wait_until(20_000, || nodes.iter().all(|n| n.ab_delivered().len() > i)),
            "message {i} did not reach every site"
        );
    }
    nodes
        .iter()
        .map(|n| {
            n.ab_delivered()
                .into_iter()
                .map(|(o, b)| (o.0, b))
                .collect()
        })
        .collect()
}

fn expected() -> Vec<(u16, Bytes)> {
    (0..MSGS)
        .map(|i| ((i % SITES) as u16, Bytes::from(format!("msg-{i}"))))
        .collect()
}

#[test]
fn simnet_and_tcpnet_deliver_identical_sequences() {
    let cfg = NodeConfig::with_policy(StackPolicy::Basic);

    let sim = Cluster::new(SITES, NetConfig::fast(42), cfg.clone());
    let sim_seqs = drive(sim.nodes());

    let tcp = TcpCluster::new(SITES, cfg).expect("bind localhost mesh");
    let tcp_nodes: Vec<Arc<Node>> = (0..SITES).map(|i| Arc::clone(tcp.node(i))).collect();
    let tcp_seqs = drive(&tcp_nodes);

    let want = expected();
    for (i, s) in sim_seqs.iter().enumerate() {
        assert_eq!(s, &want, "SimNet site {i} deviated from the forced order");
    }
    for (i, s) in tcp_seqs.iter().enumerate() {
        assert_eq!(s, &want, "TcpNet site {i} deviated from the forced order");
    }
    assert_eq!(
        sim_seqs, tcp_seqs,
        "backends must be indistinguishable through the Transport seam"
    );
}

#[test]
fn kv_state_machines_agree_across_backends() {
    let cfg = NodeConfig::with_policy(StackPolicy::Basic);
    let t = Duration::from_secs(20);

    // The same KV script, applied over each backend in forced order.
    let script: Vec<(usize, &str, &str)> = vec![
        (0, "a", "1"),
        (1, "b", "2"),
        (2, "a", "3"),
        (0, "c", "4"),
        (1, "a", "5"),
    ];

    let sim = Cluster::new(SITES, NetConfig::fast(7), cfg.clone());
    for (site, k, v) in &script {
        assert!(sim.node(*site).kv_put(*k, *v).wait(t).is_some());
    }
    sim.settle();

    let tcp = TcpCluster::new(SITES, cfg).expect("bind localhost mesh");
    for (site, k, v) in &script {
        assert!(tcp.node(*site).kv_put(*k, *v).wait(t).is_some());
    }
    assert!(wait_until(20_000, || (0..SITES)
        .all(|i| tcp.node(i).kv_applied() == script.len())));

    let sim_digest = sim.node(0).kv_digest();
    assert!(sim.nodes().iter().all(|n| n.kv_digest() == sim_digest));
    for i in 0..SITES {
        assert_eq!(
            tcp.node(i).kv_digest(),
            sim_digest,
            "TcpNet site {i} state differs from the SimNet replica"
        );
        assert_eq!(tcp.node(i).kv_snapshot(), sim.node(0).kv_snapshot());
    }
}
