//! Replicated-KV safety: after randomized concurrent workloads every site's
//! state machine is byte-identical, and the applied command log is a legal
//! total order (prefix agreement, per-origin FIFO, no duplicates).

use std::collections::HashSet;
use std::time::Duration;

use bytes::Bytes;
use proptest::prelude::*;
use samoa_net::NetConfig;
use samoa_proto::{Cluster, KvApplied, NodeConfig, StackPolicy};

fn kv_cluster(n: usize, seed: u64, policy: StackPolicy) -> Cluster {
    Cluster::new(n, NetConfig::fast(seed), NodeConfig::with_policy(policy))
}

fn key(i: u64) -> Bytes {
    Bytes::from(format!("key-{}", i % 8))
}

/// A log is a legal total order iff per-origin seqs are strictly increasing
/// (FIFO from each origin) and no (origin, seq) appears twice.
fn assert_legal_total_order(log: &[KvApplied]) {
    let mut last_seq = std::collections::HashMap::new();
    let mut seen = HashSet::new();
    for a in log {
        assert!(
            seen.insert((a.uid.origin, a.uid.seq)),
            "duplicate uid {:?} in applied log",
            a.uid
        );
        if let Some(prev) = last_seq.insert(a.uid.origin, a.uid.seq) {
            assert!(
                a.uid.seq > prev,
                "origin {:?} seqs out of order: {} after {}",
                a.uid.origin,
                a.uid.seq,
                prev
            );
        }
    }
}

fn assert_prefix_agreement(logs: &[Vec<KvApplied>]) {
    for (i, a) in logs.iter().enumerate() {
        for (j, b) in logs.iter().enumerate().skip(i + 1) {
            let common = a.len().min(b.len());
            assert_eq!(
                &a[..common],
                &b[..common],
                "sites {i} and {j} disagree within their common log prefix"
            );
        }
    }
}

#[test]
fn put_get_cas_roundtrip_on_one_cluster() {
    let c = kv_cluster(3, 1, StackPolicy::Basic);
    let t = Duration::from_secs(10);

    let r = c.node(0).kv_put("a", "1").wait(t).expect("put applied");
    assert!(r.ok);
    assert_eq!(r.value, None, "fresh key has no previous value");

    let r = c.node(1).kv_get("a").wait(t).expect("get applied");
    assert_eq!(r.value, Some(Bytes::from_static(b"1")));

    // CAS with a stale expectation fails; with the right one, succeeds.
    let r = c
        .node(2)
        .kv_cas("a", Some(Bytes::from_static(b"0")), "2")
        .wait(t)
        .expect("cas applied");
    assert!(!r.ok);
    assert_eq!(r.value, Some(Bytes::from_static(b"1")));
    let r = c
        .node(2)
        .kv_cas("a", Some(Bytes::from_static(b"1")), "2")
        .wait(t)
        .expect("cas applied");
    assert!(r.ok);
    assert_eq!(r.value, Some(Bytes::from_static(b"2")));

    c.settle();
    let d0 = c.node(0).kv_digest();
    assert!(c.nodes().iter().all(|n| n.kv_digest() == d0));
}

#[test]
fn concurrent_writers_converge_to_identical_state() {
    for policy in [StackPolicy::Basic, StackPolicy::Route, StackPolicy::Serial] {
        let c = kv_cluster(3, 7, policy);
        // Interleave submissions from every site without waiting: genuine
        // concurrent writers contending on 8 keys.
        for i in 0..30u64 {
            let site = (i % 3) as usize;
            match i % 5 {
                0 | 1 => drop(c.node(site).kv_put(key(i), format!("v{i}"))),
                2 => drop(c.node(site).kv_get(key(i))),
                _ => drop(c.node(site).kv_cas(key(i), None, format!("c{i}"))),
            }
        }
        c.settle();
        let n_applied = c.node(0).kv_applied();
        assert_eq!(n_applied, 30, "all 30 commands apply, policy {policy:?}");
        let d0 = c.node(0).kv_digest();
        let logs: Vec<_> = c.nodes().iter().map(|n| n.kv_log()).collect();
        for (i, n) in c.nodes().iter().enumerate() {
            assert_eq!(n.kv_digest(), d0, "site {i} diverged under {policy:?}");
            assert_eq!(n.kv_applied(), n_applied);
        }
        assert_prefix_agreement(&logs);
        for log in &logs {
            assert_legal_total_order(log);
        }
    }
}

#[test]
fn kv_and_plain_abcast_traffic_coexist() {
    let c = kv_cluster(3, 11, StackPolicy::Basic);
    // Plain abcast user payloads are ignored by the store but still
    // totally ordered for the App sink; KV frames are invisible neither
    // to App (raw bytes) nor to KV (decoded commands).
    c.node(0).abcast("plain-1");
    drop(c.node(1).kv_put("k", "v"));
    c.node(2).abcast("plain-2");
    c.settle();
    assert_eq!(c.node(0).kv_applied(), 1, "only the KV frame applies");
    assert_eq!(c.node(0).ab_delivered().len(), 3, "App saw all three");
    let d0 = c.node(0).kv_digest();
    assert!(c.nodes().iter().all(|n| n.kv_digest() == d0));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized workloads (op mix, sites, keys drawn by proptest): the
    /// applied log is a legal total order with prefix agreement across
    /// sites, and all replicas converge byte-identically.
    #[test]
    fn randomized_workload_yields_legal_total_order(
        seed in 0u64..1000,
        ops in proptest::collection::vec((0u8..3, 0u64..8, 0u64..4), 1..40),
    ) {
        let c = kv_cluster(3, seed, StackPolicy::Basic);
        for (i, (op, k, v)) in ops.iter().enumerate() {
            let site = i % 3;
            match op {
                0 => drop(c.node(site).kv_put(key(*k), format!("v{v}"))),
                1 => drop(c.node(site).kv_get(key(*k))),
                _ => drop(c.node(site).kv_cas(key(*k), None, format!("c{v}"))),
            }
        }
        c.settle();
        let logs: Vec<_> = c.nodes().iter().map(|n| n.kv_log()).collect();
        prop_assert!(logs.iter().all(|l| l.len() == ops.len()));
        let d0 = c.node(0).kv_digest();
        prop_assert!(c.nodes().iter().all(|n| n.kv_digest() == d0));
        assert_prefix_agreement(&logs);
        for log in &logs {
            assert_legal_total_order(log);
        }
    }
}
