//! Fault-injection tests: partitions, duplication, churn, and coordinator
//! crash in the middle of an atomic-broadcast stream.
//!
//! All tests run on the manual-pump substrate ([`Cluster::new_manual`]) with
//! a shared [`ProtoClock::manual`]: no delivery threads, no timer threads,
//! no wall-clock deadlines. Timeout-driven behaviour (retransmission,
//! failure detection) is driven by advancing the virtual clock and
//! injecting ticks, so every run is deterministic and a "wait" is a bounded
//! tick loop rather than a polling sleep.

#![allow(clippy::field_reassign_with_default)]
use std::collections::BTreeSet;
use std::time::Duration;

use bytes::Bytes;
use samoa_net::{NetConfig, SiteId};
use samoa_proto::{Cluster, NodeConfig, ProtoClock};

const RTO: Duration = Duration::from_millis(20);
const MAX_TICKS: usize = 200;

fn msg(i: usize) -> Bytes {
    Bytes::from(format!("m{i}"))
}

/// A node config on virtual time: timer threads off, shared manual clock.
/// `Cluster::new_manual` clones the config per site; the clock is
/// `Arc`-backed, so every site reads the same virtual now.
fn manual_cfg() -> (NodeConfig, ProtoClock) {
    let clock = ProtoClock::manual();
    let mut cfg = NodeConfig::default();
    cfg.enable_timers = false;
    cfg.clock = clock.clone();
    cfg.rto = RTO;
    (cfg, clock)
}

/// Deterministic replacement for deadline polling: pump to a fixed point,
/// then repeatedly advance virtual time past the RTO and fire one
/// retransmission tick per live site until `cond` holds. Panics after
/// `MAX_TICKS` rounds — a stall here is a bug, not a slow machine.
fn tick_until(
    c: &Cluster,
    clock: &ProtoClock,
    live: &[usize],
    what: &str,
    mut cond: impl FnMut() -> bool,
) {
    c.settle();
    for _ in 0..MAX_TICKS {
        if cond() {
            return;
        }
        clock.advance(RTO * 2);
        for &i in live {
            c.node(i).inject_retransmit_tick();
        }
        c.settle();
    }
    assert!(cond(), "stalled after {MAX_TICKS} ticks: {what}");
}

#[test]
fn partition_stalls_minority_and_heals() {
    let (cfg, clock) = manual_cfg();
    let c = Cluster::new_manual(3, NetConfig::fast(21), cfg);
    // Partition site 2 away; the majority {0, 1} keeps ordering.
    c.net().partition(&[&[SiteId(0), SiteId(1)], &[SiteId(2)]]);
    c.node(0).abcast(msg(0));
    c.node(1).abcast(msg(1));
    tick_until(&c, &clock, &[0, 1], "majority ordering", || {
        c.node(0).ab_delivered().len() == 2 && c.node(1).ab_delivered().len() == 2
    });
    assert_eq!(c.node(0).ab_delivered(), c.node(1).ab_delivered());
    // The minority saw nothing.
    assert!(c.node(2).ab_delivered().is_empty());
    // Heal: retransmissions (and the decide flood) catch site 2 up.
    c.net().heal();
    tick_until(&c, &clock, &[0, 1, 2], "minority catch-up", || {
        c.node(2).ab_delivered().len() == 2
    });
    assert_eq!(c.node(2).ab_delivered(), c.node(0).ab_delivered());
}

#[test]
fn duplication_is_masked_by_relcomm_dedup() {
    let (cfg, _clock) = manual_cfg();
    let c = Cluster::new_manual(3, NetConfig::fast(22).with_duplicates(0.5), cfg);
    for i in 0..8 {
        c.node(i % 3).abcast(msg(i));
    }
    c.settle();
    assert!(
        c.net().total_stats().duplicated > 0,
        "no duplicates injected — test vacuous"
    );
    let order0 = c.node(0).ab_delivered();
    assert_eq!(
        order0.len(),
        8,
        "duplicates must not create extra deliveries"
    );
    for i in 1..3 {
        assert_eq!(c.node(i).ab_delivered(), order0, "site {i} diverged");
    }
    // Exactly-once: no payload delivered twice.
    let set: BTreeSet<_> = order0.iter().collect();
    assert_eq!(set.len(), 8);
}

#[test]
fn membership_churn_keeps_views_consistent() {
    let (cfg, _clock) = manual_cfg();
    let c = Cluster::new_manual(5, NetConfig::fast(23), cfg);
    // Interleaved joins/leaves from different sites, racing each other.
    c.node(0).request_leave(SiteId(4));
    c.node(1).request_leave(SiteId(3));
    c.node(2).request_join(SiteId(3));
    c.settle();
    // All remaining members agree on the exact same view history.
    let v0 = c.node(0).current_view();
    assert_eq!(v0.id, 3, "three view ops must have been installed");
    for i in 1..3 {
        assert_eq!(c.node(i).current_view(), v0, "site {i} view diverged");
    }
    // Site 3's membership depends on the total order of the leave/join pair,
    // but whatever it is, it is the same everywhere; site 4 is gone for sure.
    assert!(!v0.contains(SiteId(4)));
    // The observed view sequences (from the App sink) also match.
    let views0 = c.node(0).observed_views();
    assert_eq!(views0.len(), 3);
    for i in 1..3 {
        assert_eq!(c.node(i).observed_views(), views0, "site {i} history");
    }
}

#[test]
fn coordinator_crash_mid_stream_recovers() {
    // Site 0 coordinates instance 0/round 0. Crash it while a stream of
    // abcasts is in flight; the failure detector excludes it and the
    // survivors re-coordinate and keep ordering.
    let (mut cfg, clock) = manual_cfg();
    cfg.fd_timeout = Duration::from_millis(150);
    let c = Cluster::new_manual(3, NetConfig::fast(24), cfg);
    // One heartbeat round so every FD has heard every peer.
    for i in 0..3 {
        c.node(i).inject_fd_tick();
    }
    c.settle();

    for i in 0..4 {
        c.node(1).abcast(msg(i));
    }
    c.settle();
    c.net().crash(SiteId(0));
    for i in 4..8 {
        c.node(2).abcast(msg(i));
    }
    c.settle();

    // Drive virtual time in sub-timeout steps: each round the survivors
    // heartbeat each other (staying fresh) while site 0 goes stale, gets
    // suspected, and is voted out; retransmission ticks re-deliver anything
    // that raced the crash.
    let excluded_and_delivered = || {
        !c.node(1).current_view().contains(SiteId(0))
            && !c.node(2).current_view().contains(SiteId(0))
            && c.node(1).ab_delivered().len() >= 8
            && c.node(2).ab_delivered().len() >= 8
    };
    for _ in 0..MAX_TICKS {
        if excluded_and_delivered() {
            break;
        }
        clock.advance(Duration::from_millis(60));
        for i in [1, 2] {
            c.node(i).inject_fd_tick();
            c.node(i).inject_retransmit_tick();
        }
        c.settle();
    }
    assert!(
        excluded_and_delivered(),
        "stalled: exclusion of crashed site + survivor delivery"
    );
    assert_eq!(c.node(1).ab_delivered(), c.node(2).ab_delivered());
    // Exactly the 8 messages, no duplicates.
    let set: BTreeSet<_> = c.node(1).ab_delivered().into_iter().collect();
    assert_eq!(set.len(), 8);
}

#[test]
fn loss_duplication_and_churn_combined() {
    // The kitchen sink: loss + duplication + a leave, under VCAbasic.
    let mut net_cfg = NetConfig::fast(25).with_duplicates(0.2);
    net_cfg.loss_probability = 0.05;
    let (cfg, clock) = manual_cfg();
    let c = Cluster::new_manual(4, net_cfg, cfg);
    for i in 0..6 {
        c.node(i % 4).abcast(msg(i));
    }
    c.node(0).request_leave(SiteId(3));
    tick_until(
        &c,
        &clock,
        &[0, 1, 2, 3],
        "all ordered + view installed",
        || {
            (0..3).all(|i| {
                c.node(i).ab_delivered().len() == 6 && !c.node(i).current_view().contains(SiteId(3))
            })
        },
    );
    let order0 = c.node(0).ab_delivered();
    for i in 1..3 {
        assert_eq!(c.node(i).ab_delivered(), order0, "site {i} diverged");
    }
}
