//! Fault-injection tests: partitions, duplication, churn, and coordinator
//! crash in the middle of an atomic-broadcast stream.

#![allow(clippy::field_reassign_with_default)]
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use bytes::Bytes;
use samoa_net::{NetConfig, SiteId};
use samoa_proto::{Cluster, NodeConfig};

fn msg(i: usize) -> Bytes {
    Bytes::from(format!("m{i}"))
}

fn wait_until(deadline: Duration, what: &str, mut cond: impl FnMut() -> bool) {
    let end = Instant::now() + deadline;
    while !cond() {
        assert!(Instant::now() < end, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn partition_stalls_minority_and_heals() {
    let mut cfg = NodeConfig::default();
    cfg.rto = Duration::from_millis(15);
    let c = Cluster::new(3, NetConfig::fast(21), cfg);
    // Partition site 2 away; the majority {0, 1} keeps ordering.
    c.net().partition(&[&[SiteId(0), SiteId(1)], &[SiteId(2)]]);
    c.node(0).abcast(msg(0));
    c.node(1).abcast(msg(1));
    wait_until(Duration::from_secs(20), "majority ordering", || {
        c.node(0).ab_delivered().len() == 2 && c.node(1).ab_delivered().len() == 2
    });
    assert_eq!(c.node(0).ab_delivered(), c.node(1).ab_delivered());
    // The minority saw nothing.
    assert!(c.node(2).ab_delivered().is_empty());
    // Heal: retransmissions (and the decide flood) catch site 2 up.
    c.net().heal();
    wait_until(Duration::from_secs(30), "minority catch-up", || {
        c.node(2).ab_delivered().len() == 2
    });
    assert_eq!(c.node(2).ab_delivered(), c.node(0).ab_delivered());
}

#[test]
fn duplication_is_masked_by_relcomm_dedup() {
    let c = Cluster::new(
        3,
        NetConfig::fast(22).with_duplicates(0.5),
        NodeConfig::default(),
    );
    for i in 0..8 {
        c.node(i % 3).abcast(msg(i));
    }
    c.settle();
    assert!(
        c.net().total_stats().duplicated > 0,
        "no duplicates injected — test vacuous"
    );
    let order0 = c.node(0).ab_delivered();
    assert_eq!(
        order0.len(),
        8,
        "duplicates must not create extra deliveries"
    );
    for i in 1..3 {
        assert_eq!(c.node(i).ab_delivered(), order0, "site {i} diverged");
    }
    // Exactly-once: no payload delivered twice.
    let set: BTreeSet<_> = order0.iter().collect();
    assert_eq!(set.len(), 8);
}

#[test]
fn membership_churn_keeps_views_consistent() {
    let c = Cluster::new(5, NetConfig::fast(23), NodeConfig::default());
    // Interleaved joins/leaves from different sites, racing each other.
    c.node(0).request_leave(SiteId(4));
    c.node(1).request_leave(SiteId(3));
    c.node(2).request_join(SiteId(3));
    c.settle();
    // All remaining members agree on the exact same view history.
    let v0 = c.node(0).current_view();
    assert_eq!(v0.id, 3, "three view ops must have been installed");
    for i in 1..3 {
        assert_eq!(c.node(i).current_view(), v0, "site {i} view diverged");
    }
    // Site 3's membership depends on the total order of the leave/join pair,
    // but whatever it is, it is the same everywhere; site 4 is gone for sure.
    assert!(!v0.contains(SiteId(4)));
    // The observed view sequences (from the App sink) also match.
    let views0 = c.node(0).observed_views();
    assert_eq!(views0.len(), 3);
    for i in 1..3 {
        assert_eq!(c.node(i).observed_views(), views0, "site {i} history");
    }
}

#[test]
fn coordinator_crash_mid_stream_recovers() {
    // Site 0 coordinates instance 0/round 0. Crash it while a stream of
    // abcasts is in flight; the failure detector excludes it and the
    // survivors re-coordinate and keep ordering.
    let mut cfg = NodeConfig::default();
    cfg.enable_fd = true;
    cfg.fd_timeout = Duration::from_millis(150);
    cfg.tick_interval = Duration::from_millis(20);
    cfg.rto = Duration::from_millis(20);
    let c = Cluster::new(3, NetConfig::fast(24), cfg);
    std::thread::sleep(Duration::from_millis(180)); // heartbeats flowing

    for i in 0..4 {
        c.node(1).abcast(msg(i));
    }
    c.net().crash(SiteId(0));
    for i in 4..8 {
        c.node(2).abcast(msg(i));
    }

    wait_until(Duration::from_secs(30), "exclusion of crashed site", || {
        !c.node(1).current_view().contains(SiteId(0))
            && !c.node(2).current_view().contains(SiteId(0))
    });
    wait_until(Duration::from_secs(30), "survivor delivery", || {
        c.node(1).ab_delivered().len() >= 8 && c.node(2).ab_delivered().len() >= 8
    });
    assert_eq!(c.node(1).ab_delivered(), c.node(2).ab_delivered());
    // Exactly the 8 messages, no duplicates.
    let set: BTreeSet<_> = c.node(1).ab_delivered().into_iter().collect();
    assert_eq!(set.len(), 8);
}

#[test]
fn loss_duplication_and_churn_combined() {
    // The kitchen sink: loss + duplication + a leave, under VCAbasic.
    let mut net_cfg = NetConfig::fast(25).with_duplicates(0.2);
    net_cfg.loss_probability = 0.05;
    let mut cfg = NodeConfig::default();
    cfg.rto = Duration::from_millis(15);
    let c = Cluster::new(4, net_cfg, cfg);
    for i in 0..6 {
        c.node(i % 4).abcast(msg(i));
    }
    c.node(0).request_leave(SiteId(3));
    wait_until(
        Duration::from_secs(60),
        "all ordered + view installed",
        || {
            c.settle();
            (0..3).all(|i| {
                c.node(i).ab_delivered().len() == 6 && !c.node(i).current_view().contains(SiteId(3))
            })
        },
    );
    let order0 = c.node(0).ab_delivered();
    for i in 1..3 {
        assert_eq!(c.node(i).ab_delivered(), order0, "site {i} diverged");
    }
}
