//! Distributed consensus — the microprotocol the paper's atomic broadcast
//! depends on (§3).
//!
//! Rotating-coordinator consensus in the Chandra–Toueg style with a
//! Paxos-like read phase for safety across coordinator changes:
//!
//! 1. Round `r`'s coordinator (member `r mod n` of the view) broadcasts
//!    `Collect(r)`.
//! 2. Participants that have promised nothing higher reply `Estimate`
//!    with their current estimate and the round in which it was adopted.
//! 3. With a majority of estimates, the coordinator picks the estimate
//!    adopted in the highest round (or, if none was ever adopted, the
//!    deduplicated union of all collected initial estimates) and broadcasts
//!    `Propose(r, v)`.
//! 4. Participants adopt and `Ack`; a majority of acks decides, and the
//!    decision is flooded via RelCast (`CastData::Decide`) so every site
//!    learns it even if the coordinator crashes mid-broadcast.
//!
//! Suspicion of the current coordinator (from the failure detector) bumps
//! the round; the new coordinator is kicked into action with the kicker's
//! estimate riding along.
//!
//! The core logic is a pure state machine ([`ConsensusState`]) that maps
//! inputs to [`Actions`], so it is unit-testable without the runtime; the
//! SAMOA handlers are a thin shell around it.

use std::collections::{HashMap, HashSet};

use samoa_core::prelude::*;
use samoa_net::SiteId;

use crate::events::Events;
use crate::msgs::{AbMsg, CastData, ConsMsg, MsgUid, Payload};
use crate::relcomm::RDeliver;
use crate::view::GroupView;

/// What a state transition wants the shell to do.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Actions {
    /// Point-to-point consensus messages to send via RelComm.
    pub out: Vec<(SiteId, ConsMsg)>,
    /// A decision to flood via RelCast.
    pub decide: Option<(u64, Vec<AbMsg>)>,
}

impl Actions {
    fn none() -> Actions {
        Actions::default()
    }

    fn merge(&mut self, other: Actions) {
        self.out.extend(other.out);
        if self.decide.is_none() {
            self.decide = other.decide;
        }
    }
}

#[derive(Debug)]
enum Phase {
    Collecting,
    Proposing(Vec<AbMsg>),
}

#[derive(Debug)]
struct CoordState {
    round: u64,
    phase: Phase,
    /// Collected (estimate, est_round) pairs, including our own.
    ests: Vec<(Vec<AbMsg>, u64)>,
    est_from: HashSet<SiteId>,
    acks: HashSet<SiteId>,
}

#[derive(Debug, Default)]
struct Inst {
    est: Vec<AbMsg>,
    /// Adoption marker: 0 = the estimate is initial (never adopted via a
    /// `Propose`); `r + 1` = adopted in round `r`. The +1 offset keeps
    /// round-0 adoptions distinguishable from "never adopted".
    est_round: u64,
    /// Highest round promised (Paxos promise).
    max_round: u64,
    /// Round this site currently believes in.
    round: u64,
    coord: Option<CoordState>,
    decided: bool,
}

/// The local state of the consensus microprotocol.
pub struct ConsensusState {
    site: SiteId,
    view: GroupView,
    gc_below: u64,
    insts: HashMap<u64, Inst>,
    /// Metric instruments, when a registry is installed.
    pub instruments: Option<crate::observe::ConsensusInstruments>,
}

impl ConsensusState {
    /// Fresh state for `site` with the given initial view.
    pub fn new(site: SiteId, view: GroupView) -> Self {
        ConsensusState {
            site,
            view,
            gc_below: 0,
            insts: HashMap::new(),
            instruments: None,
        }
    }

    /// Number of live (non-GCed) instances — for tests and diagnostics.
    pub fn live_instances(&self) -> usize {
        self.insts.len()
    }

    /// Propose `value` for instance `inst` (idempotent; the first proposal
    /// fixes this site's initial estimate).
    pub fn propose(&mut self, inst: u64, value: Vec<AbMsg>) -> Actions {
        if inst < self.gc_below {
            return Actions::none();
        }
        let me = self.site;
        let i = self.insts.entry(inst).or_default();
        if i.decided {
            return Actions::none();
        }
        if i.est.is_empty() {
            i.est = value;
        }
        let round = i.round;
        match self.view.coordinator(round) {
            Some(c) if c == me => self.start_collect(inst, round),
            Some(c) => {
                let i = self.insts.get(&inst).expect("just inserted");
                Actions {
                    out: vec![(
                        c,
                        ConsMsg::Kick {
                            inst,
                            round,
                            est: i.est.clone(),
                            est_round: i.est_round,
                        },
                    )],
                    decide: None,
                }
            }
            None => Actions::none(),
        }
    }

    /// Handle a consensus message from `from`.
    pub fn on_msg(&mut self, from: SiteId, msg: ConsMsg) -> Actions {
        match msg {
            ConsMsg::Kick {
                inst,
                round,
                est,
                est_round,
            } => self.on_kick(from, inst, round, est, est_round),
            ConsMsg::Collect { inst, round } => self.on_collect(from, inst, round),
            ConsMsg::Estimate {
                inst,
                round,
                est,
                est_round,
            } => self.on_estimate(from, inst, round, est, est_round),
            ConsMsg::Propose { inst, round, value } => self.on_propose(from, inst, round, value),
            ConsMsg::Ack { inst, round } => self.on_ack(from, inst, round),
        }
    }

    /// The failure detector suspects `site`: advance the round of every
    /// undecided instance whose current coordinator is that site.
    pub fn on_suspect(&mut self, site: SiteId) -> Actions {
        let mut insts: Vec<u64> = self
            .insts
            .iter()
            .filter(|(_, i)| !i.decided && !i.est.is_empty())
            .map(|(&k, _)| k)
            .collect();
        // Restart in instance order: the map is hashed, and hooked
        // exploration requires send order to be schedule-pure.
        insts.sort_unstable();
        let mut acts = Actions::none();
        for inst in insts {
            let i = self.insts.get_mut(&inst).expect("listed");
            if self.view.coordinator(i.round) == Some(site) {
                i.round += 1;
                acts.merge(self.restart(inst));
            }
        }
        acts
    }

    /// A new view was installed: re-kick undecided instances so they keep
    /// making progress under the new coordinator mapping.
    pub fn set_view(&mut self, view: GroupView) -> Actions {
        self.view = view;
        let mut insts: Vec<u64> = self
            .insts
            .iter()
            .filter(|(_, i)| !i.decided && !i.est.is_empty())
            .map(|(&k, _)| k)
            .collect();
        insts.sort_unstable();
        let mut acts = Actions::none();
        for inst in insts {
            acts.merge(self.restart(inst));
        }
        acts
    }

    /// Instances below `below` are decided everywhere; drop their state.
    pub fn gc(&mut self, below: u64) {
        self.gc_below = self.gc_below.max(below);
        let lim = self.gc_below;
        self.insts.retain(|&k, _| k >= lim);
    }

    /// Start (or restart) coordination for the instance's current round.
    fn restart(&mut self, inst: u64) -> Actions {
        let me = self.site;
        let i = self.insts.get_mut(&inst).expect("instance exists");
        let round = i.round;
        match self.view.coordinator(round) {
            Some(c) if c == me => self.start_collect(inst, round),
            Some(c) => {
                let i = self.insts.get(&inst).expect("instance exists");
                Actions {
                    out: vec![(
                        c,
                        ConsMsg::Kick {
                            inst,
                            round,
                            est: i.est.clone(),
                            est_round: i.est_round,
                        },
                    )],
                    decide: None,
                }
            }
            None => Actions::none(),
        }
    }

    /// Begin the read phase for `round` of `inst` (we are its coordinator).
    fn start_collect(&mut self, inst: u64, round: u64) -> Actions {
        let me = self.site;
        let peers: Vec<SiteId> = self
            .view
            .members()
            .iter()
            .copied()
            .filter(|&m| m != me)
            .collect();
        let i = self.insts.entry(inst).or_default();
        if i.decided {
            return Actions::none();
        }
        if let Some(c) = &i.coord {
            if c.round >= round {
                return Actions::none(); // already coordinating this round
            }
        }
        if let Some(ins) = &self.instruments {
            ins.rounds.inc();
        }
        i.max_round = i.max_round.max(round);
        i.round = i.round.max(round);
        let mut est_from = HashSet::new();
        est_from.insert(me);
        i.coord = Some(CoordState {
            round,
            phase: Phase::Collecting,
            ests: vec![(i.est.clone(), i.est_round)],
            est_from,
            acks: HashSet::new(),
        });
        let mut acts = Actions {
            out: peers
                .into_iter()
                .map(|p| (p, ConsMsg::Collect { inst, round }))
                .collect(),
            decide: None,
        };
        // Single-member view: our own estimate is already a majority.
        acts.merge(self.try_choose(inst));
        acts
    }

    fn on_kick(
        &mut self,
        from: SiteId,
        inst: u64,
        round: u64,
        est: Vec<AbMsg>,
        est_round: u64,
    ) -> Actions {
        if inst < self.gc_below {
            return Actions::none();
        }
        let me = self.site;
        if self.view.coordinator(round) != Some(me) {
            return Actions::none();
        }
        {
            let i = self.insts.entry(inst).or_default();
            if i.decided {
                return Actions::none();
            }
            // Adopt the kicker's estimate as ours if we have none.
            if i.est.is_empty() {
                i.est = est.clone();
                i.est_round = est_round;
            }
            i.round = i.round.max(round);
        }
        let mut acts = self.start_collect(inst, round);
        // Record the kicker's estimate as if it were an Estimate reply.
        acts.merge(self.record_estimate(from, inst, round, est, est_round));
        acts
    }

    fn on_collect(&mut self, from: SiteId, inst: u64, round: u64) -> Actions {
        if inst < self.gc_below {
            return Actions::none();
        }
        let i = self.insts.entry(inst).or_default();
        if i.decided || round < i.max_round {
            return Actions::none();
        }
        i.max_round = round;
        i.round = i.round.max(round);
        Actions {
            out: vec![(
                from,
                ConsMsg::Estimate {
                    inst,
                    round,
                    est: i.est.clone(),
                    est_round: i.est_round,
                },
            )],
            decide: None,
        }
    }

    fn on_estimate(
        &mut self,
        from: SiteId,
        inst: u64,
        round: u64,
        est: Vec<AbMsg>,
        est_round: u64,
    ) -> Actions {
        if inst < self.gc_below {
            return Actions::none();
        }
        self.record_estimate(from, inst, round, est, est_round)
    }

    fn record_estimate(
        &mut self,
        from: SiteId,
        inst: u64,
        round: u64,
        est: Vec<AbMsg>,
        est_round: u64,
    ) -> Actions {
        let Some(i) = self.insts.get_mut(&inst) else {
            return Actions::none();
        };
        let Some(c) = &mut i.coord else {
            return Actions::none();
        };
        if c.round != round || !matches!(c.phase, Phase::Collecting) {
            return Actions::none();
        }
        if !c.est_from.insert(from) {
            return Actions::none();
        }
        c.ests.push((est, est_round));
        self.try_choose(inst)
    }

    /// If the read phase has a majority and a non-empty candidate, move to
    /// the write phase.
    fn try_choose(&mut self, inst: u64) -> Actions {
        let me = self.site;
        let majority = self.view.majority();
        let peers: Vec<SiteId> = self
            .view
            .members()
            .iter()
            .copied()
            .filter(|&m| m != me)
            .collect();
        let Some(i) = self.insts.get_mut(&inst) else {
            return Actions::none();
        };
        if i.decided {
            return Actions::none();
        }
        let Some(c) = &mut i.coord else {
            return Actions::none();
        };
        if !matches!(c.phase, Phase::Collecting) || c.est_from.len() < majority {
            return Actions::none();
        }
        let max_adopted = c.ests.iter().map(|&(_, r)| r).max().unwrap_or(0);
        let value: Vec<AbMsg> = if max_adopted > 0 {
            c.ests
                .iter()
                .find(|&&(_, r)| r == max_adopted)
                .expect("max exists")
                .0
                .clone()
        } else {
            // Nothing adopted anywhere: any proposal is safe; take the
            // deduplicated union, sorted by uid for determinism.
            let mut seen: HashSet<MsgUid> = HashSet::new();
            let mut v: Vec<AbMsg> = c
                .ests
                .iter()
                .flat_map(|(e, _)| e.iter().cloned())
                .filter(|m| seen.insert(m.uid))
                .collect();
            v.sort_by_key(|m| m.uid);
            v
        };
        if value.is_empty() {
            // No estimate anywhere yet; stay in the read phase and wait for
            // further estimates (a kicker's estimate will arrive).
            return Actions::none();
        }
        let round = c.round;
        c.phase = Phase::Proposing(value.clone());
        c.acks.clear();
        c.acks.insert(me);
        // Adopt our own proposal (est_round carries the +1 offset).
        i.est = value.clone();
        i.est_round = round + 1;
        i.max_round = i.max_round.max(round);
        let mut acts = Actions {
            out: peers
                .into_iter()
                .map(|p| {
                    (
                        p,
                        ConsMsg::Propose {
                            inst,
                            round,
                            value: value.clone(),
                        },
                    )
                })
                .collect(),
            decide: None,
        };
        acts.merge(self.try_decide(inst));
        acts
    }

    fn on_propose(&mut self, from: SiteId, inst: u64, round: u64, value: Vec<AbMsg>) -> Actions {
        if inst < self.gc_below {
            return Actions::none();
        }
        let i = self.insts.entry(inst).or_default();
        if i.decided || round < i.max_round {
            return Actions::none();
        }
        i.max_round = round;
        i.round = i.round.max(round);
        i.est = value;
        i.est_round = round + 1;
        Actions {
            out: vec![(from, ConsMsg::Ack { inst, round })],
            decide: None,
        }
    }

    fn on_ack(&mut self, from: SiteId, inst: u64, round: u64) -> Actions {
        if inst < self.gc_below {
            return Actions::none();
        }
        let Some(i) = self.insts.get_mut(&inst) else {
            return Actions::none();
        };
        let Some(c) = &mut i.coord else {
            return Actions::none();
        };
        if c.round != round || !matches!(c.phase, Phase::Proposing(_)) {
            return Actions::none();
        }
        c.acks.insert(from);
        self.try_decide(inst)
    }

    fn try_decide(&mut self, inst: u64) -> Actions {
        let majority = self.view.majority();
        let Some(i) = self.insts.get_mut(&inst) else {
            return Actions::none();
        };
        if i.decided {
            return Actions::none();
        }
        let Some(c) = &i.coord else {
            return Actions::none();
        };
        let Phase::Proposing(v) = &c.phase else {
            return Actions::none();
        };
        if c.acks.len() < majority {
            return Actions::none();
        }
        let value = v.clone();
        i.decided = true;
        i.coord = None;
        Actions {
            out: Vec::new(),
            decide: Some((inst, value)),
        }
    }
}

/// Handler ids of the registered consensus microprotocol.
#[derive(Debug, Clone, Copy)]
pub struct ConsensusHandlers {
    /// `propose` (bound to `ConsPropose`).
    pub propose: HandlerId,
    /// `on_msg` (bound to `FromRComm`).
    pub on_msg: HandlerId,
    /// `on_suspect` (bound to `Suspect`).
    pub on_suspect: HandlerId,
    /// `gc` (bound to `ConsGc`).
    pub gc: HandlerId,
    /// `view_change` (bound to `ViewChange`).
    pub view_change: HandlerId,
}

/// Emit a transition's actions as events: point-to-point sends via
/// `SendOut`, decisions as a RelCast flood.
fn emit(ctx: &Ctx, ev: &Events, acts: Actions) -> Result<()> {
    for (target, msg) in acts.out {
        ctx.trigger(ev.send_out, EventData::new((Payload::Cons(msg), target)))?;
    }
    if let Some((inst, batch)) = acts.decide {
        ctx.trigger(ev.bcast, EventData::new(CastData::Decide { inst, batch }))?;
    }
    Ok(())
}

/// Register the consensus microprotocol on the builder.
pub fn register(
    b: &mut StackBuilder,
    pid: ProtocolId,
    ev: &Events,
    state: ProtocolState<ConsensusState>,
) -> ConsensusHandlers {
    let events = *ev;
    // Every consensus transition runs through [`emit`]: point-to-point
    // sends (`SendOut`, up to one per peer) plus a `Bcast` decide flood.
    let emits = [ev.send_out, ev.bcast];

    let propose = {
        let state = state.clone();
        let e = ev.cons_propose;
        b.bind_with_triggers(e, pid, "consensus.propose", &emits, move |ctx, data| {
            let (inst, value): &(u64, Vec<AbMsg>) = data.expect(e)?;
            let acts = state.with(ctx, |s| s.propose(*inst, value.clone()));
            emit(ctx, &events, acts)
        })
    };

    let on_msg = {
        let state = state.clone();
        let e = ev.from_rcomm;
        b.bind_with_triggers(e, pid, "consensus.on_msg", &emits, move |ctx, data| {
            let d: &RDeliver = data.expect(e)?;
            let Payload::Cons(msg) = &d.payload else {
                return Ok(()); // RelCast traffic; not ours
            };
            let acts = state.with(ctx, |s| s.on_msg(d.sender, msg.clone()));
            emit(ctx, &events, acts)
        })
    };

    let on_suspect = {
        let state = state.clone();
        let e = ev.suspect;
        b.bind_with_triggers(e, pid, "consensus.on_suspect", &emits, move |ctx, data| {
            let site: &SiteId = data.expect(e)?;
            let acts = state.with(ctx, |s| s.on_suspect(*site));
            emit(ctx, &events, acts)
        })
    };

    let gc = {
        let state = state.clone();
        let e = ev.cons_gc;
        b.bind_with_triggers(e, pid, "consensus.gc", &[], move |ctx, data| {
            let below: &u64 = data.expect(e)?;
            state.with(ctx, |s| s.gc(*below));
            Ok(())
        })
    };

    let view_change = {
        let state = state.clone();
        let e = ev.view_change;
        b.bind_with_triggers(e, pid, "consensus.view_change", &emits, move |ctx, data| {
            let v: &GroupView = data.expect(e)?;
            let acts = state.with(ctx, |s| s.set_view(v.clone()));
            emit(ctx, &events, acts)
        })
    };

    ConsensusHandlers {
        propose,
        on_msg,
        on_suspect,
        gc,
        view_change,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msgs::AbPayload;
    use bytes::Bytes;

    fn s(i: u16) -> SiteId {
        SiteId(i)
    }

    fn msg(origin: u16, seq: u64) -> AbMsg {
        AbMsg {
            uid: MsgUid {
                origin: s(origin),
                seq,
            },
            payload: AbPayload::User(Bytes::from_static(b"m")),
        }
    }

    /// A tiny message bus driving several ConsensusState instances to
    /// completion — pure state-machine testing without the runtime.
    struct Bus {
        sites: Vec<ConsensusState>,
        decided: Vec<Option<(u64, Vec<AbMsg>)>>,
    }

    impl Bus {
        fn new(n: u16) -> Bus {
            let view = GroupView::of_first(n as usize);
            Bus {
                sites: (0..n)
                    .map(|i| ConsensusState::new(s(i), view.clone()))
                    .collect(),
                decided: (0..n).map(|_| None).collect(),
            }
        }

        /// Apply actions originating at `from`, delivering messages
        /// immediately (depth-first), skipping sites in `down`.
        fn run(&mut self, from: usize, acts: Actions, down: &[usize]) {
            if let Some(d) = acts.decide {
                // Decide floods via RelCast: all live sites learn it.
                for (i, slot) in self.decided.iter_mut().enumerate() {
                    if !down.contains(&i) && slot.is_none() {
                        *slot = Some(d.clone());
                    }
                }
            }
            let _ = from;
            for (target, m) in acts.out {
                let t = target.index();
                if down.contains(&t) {
                    continue;
                }
                let reply = self.sites[t].on_msg(s(from as u16), m);
                self.run(t, reply, down);
            }
        }
    }

    #[test]
    fn three_sites_decide_proposers_value() {
        let mut bus = Bus::new(3);
        let v = vec![msg(0, 1)];
        // Site 0 is coordinator of round 0 and proposes.
        let acts = bus.sites[0].propose(0, v.clone());
        bus.run(0, acts, &[]);
        for d in &bus.decided {
            assert_eq!(d.as_ref().unwrap(), &(0, v.clone()));
        }
    }

    #[test]
    fn non_coordinator_kicks_coordinator() {
        let mut bus = Bus::new(3);
        let v = vec![msg(1, 1)];
        // Site 1 proposes; coordinator of round 0 is site 0.
        let acts = bus.sites[1].propose(0, v.clone());
        assert!(matches!(acts.out.as_slice(), [(t, ConsMsg::Kick { .. })] if *t == s(0)));
        bus.run(1, acts, &[]);
        assert_eq!(bus.decided[2].as_ref().unwrap(), &(0, v));
    }

    #[test]
    fn union_used_when_nothing_adopted() {
        let mut bus = Bus::new(3);
        // Sites 1 and 2 both kick coordinator 0 with different estimates.
        let a1 = bus.sites[1].propose(0, vec![msg(1, 1)]);
        bus.run(1, a1, &[]);
        // After the first kick the coordinator may already have decided
        // (majority = 2 and it had the kicker's estimate). The decided
        // value must contain site 1's message.
        let d = bus.decided[0].clone().unwrap();
        assert!(d.1.iter().any(|m| m.uid.origin == s(1)));
    }

    #[test]
    fn coordinator_crash_second_round_decides() {
        let mut bus = Bus::new(3);
        let v = vec![msg(1, 7)];
        // Coordinator 0 is down; site 1 proposes into the void.
        let acts = bus.sites[1].propose(0, v.clone());
        bus.run(1, acts, &[0]); // kick lost on crashed site
        assert!(bus.decided[1].is_none());
        // FD on sites 1 and 2 suspects site 0; round advances to 1 whose
        // coordinator is site 1.
        let acts = bus.sites[1].on_suspect(s(0));
        bus.run(1, acts, &[0]);
        assert_eq!(bus.decided[1].as_ref().unwrap(), &(0, v.clone()));
        assert_eq!(bus.decided[2].as_ref().unwrap(), &(0, v));
    }

    #[test]
    fn single_member_view_decides_alone() {
        let view = GroupView::of_first(1);
        let mut c = ConsensusState::new(s(0), view);
        let v = vec![msg(0, 1)];
        let acts = c.propose(0, v.clone());
        assert_eq!(acts.decide, Some((0, v)));
        assert!(acts.out.is_empty());
    }

    #[test]
    fn stale_rounds_are_rejected() {
        let view = GroupView::of_first(3);
        let mut c = ConsensusState::new(s(2), view);
        // Promise round 5.
        let a = c.on_msg(s(1), ConsMsg::Collect { inst: 0, round: 5 });
        assert_eq!(a.out.len(), 1);
        // An older propose must be ignored.
        let a = c.on_msg(
            s(0),
            ConsMsg::Propose {
                inst: 0,
                round: 3,
                value: vec![msg(0, 1)],
            },
        );
        assert!(a.out.is_empty());
    }

    #[test]
    fn adopted_value_survives_coordinator_change() {
        // Site 0 (coordinator r0) gets majority acks from itself+site1 for
        // value A but crashes before flooding the decision widely... here:
        // before site 2 learns anything. Round 1's coordinator (site 1)
        // must re-decide the SAME value A because site 1 adopted it.
        let view = GroupView::of_first(3);
        let a_val = vec![msg(0, 1)];
        let mut c1 = ConsensusState::new(s(1), view.clone());
        let mut c2 = ConsensusState::new(s(2), view);
        // Site 1 adopted A in round 0 (received Propose from site 0).
        let acts = c1.on_msg(
            s(0),
            ConsMsg::Propose {
                inst: 0,
                round: 0,
                value: a_val.clone(),
            },
        );
        assert_eq!(acts.out.len(), 1); // ack to site 0 (lost, site 0 dead)
                                       // Site 2 has a different initial estimate.
        let _ = c2.propose(0, vec![msg(2, 9)]);
        // Both suspect site 0; round -> 1, coordinator site 1.
        let kick2 = c2.on_suspect(s(0));
        let start1 = c1.on_suspect(s(0));
        // Site 1 starts collecting; feed it site 2's kick and its Estimate.
        let mut pending = Vec::new();
        pending.extend(start1.out);
        for (t, m) in kick2.out {
            assert_eq!(t, s(1));
            let a = c1.on_msg(s(2), m);
            pending.extend(a.out);
        }
        // Deliver Collect to site 2, Estimate back to 1, Propose to 2, Ack
        // back to 1.
        let mut decided = None;
        let mut queue: Vec<(SiteId, SiteId, ConsMsg)> =
            pending.into_iter().map(|(t, m)| (s(1), t, m)).collect();
        while let Some((from, to, m)) = queue.pop() {
            let acts = if to == s(1) {
                c1.on_msg(from, m)
            } else if to == s(2) {
                c2.on_msg(from, m)
            } else {
                continue; // site 0 is dead
            };
            if let Some(d) = acts.decide {
                decided = Some(d);
            }
            for (t, m) in acts.out {
                queue.push((to, t, m));
            }
        }
        // Safety: the decided value is A, not site 2's estimate.
        assert_eq!(decided, Some((0, a_val)));
    }

    #[test]
    fn gc_drops_instances_and_ignores_stale_messages() {
        let view = GroupView::of_first(3);
        let mut c = ConsensusState::new(s(0), view);
        let _ = c.propose(0, vec![msg(0, 1)]);
        assert_eq!(c.live_instances(), 1);
        c.gc(1);
        assert_eq!(c.live_instances(), 0);
        let a = c.on_msg(s(1), ConsMsg::Collect { inst: 0, round: 9 });
        assert!(a.out.is_empty());
        // New instances still work.
        let a = c.propose(1, vec![msg(0, 2)]);
        assert!(!a.out.is_empty() || a.decide.is_some());
    }
}
