//! `Membership` — consistent group views (paper §3).
//!
//! Join/leave requests are funnelled through atomic broadcast, so every site
//! applies the same view operations in the same order; upon delivery the new
//! view is propagated locally to all interested microprotocols with a
//! *synchronous* `triggerAll ViewChange` ("to deliver views to all in a
//! sequential order"), exactly as the paper's `deliverView` does.
//!
//! The failure detector's `Suspect` events are converted into leave
//! requests, closing the loop: crashed sites are eventually excluded.

use samoa_core::prelude::*;
use samoa_net::SiteId;

use crate::events::Events;
use crate::msgs::{AbMsg, AbPayload, SyncMsg};
use crate::observe::{ClusterTracer, ConsensusInstruments};
use crate::view::{GroupView, ViewOp};

/// The local state of the membership microprotocol.
pub struct MembershipState {
    view: GroupView,
    /// All views installed so far (diagnostics; the paper's view history).
    pub history: Vec<GroupView>,
    /// Sites whose removal this node has already requested, so repeated
    /// failure-detector announcements do not flood atomic broadcast with
    /// duplicate leave operations.
    leave_requested: std::collections::HashSet<SiteId>,
    /// Cluster tracer, when the node is traced (view-change spans).
    pub tracer: Option<ClusterTracer>,
    /// Metric instruments, when a registry is installed (shares the
    /// `site{N}.consensus.view_changes` counter with the consensus state —
    /// the registry is name-addressed, so both hold the same instrument).
    pub instruments: Option<ConsensusInstruments>,
}

impl MembershipState {
    /// Fresh state with the initial view.
    pub fn new(view: GroupView) -> Self {
        MembershipState {
            history: vec![view.clone()],
            view,
            leave_requested: std::collections::HashSet::new(),
            tracer: None,
            instruments: None,
        }
    }

    /// The current view.
    pub fn view(&self) -> &GroupView {
        &self.view
    }

    /// Emission-only accounting for a just-installed view.
    fn observe_installed(&self) {
        if let Some(t) = &self.tracer {
            t.emit(samoa_core::TraceKind::ClusterViewChange {
                site: t.site().0,
                view_id: self.view.id,
                members: self.view.len() as u32,
            });
        }
        if let Some(ins) = &self.instruments {
            ins.view_changes.inc();
        }
    }
}

/// Handler ids of the registered membership microprotocol.
#[derive(Debug, Clone, Copy)]
pub struct MembershipHandlers {
    /// `joinleave` (bound to `JoinLeave`).
    pub joinleave: HandlerId,
    /// `deliver_view` (bound to `ADeliver`).
    pub deliver_view: HandlerId,
    /// `on_suspect` (bound to `Suspect`).
    pub on_suspect: HandlerId,
    /// `adopt_view` (bound to `ViewSync`): install a state-transferred view.
    pub adopt_view: HandlerId,
}

/// Register the membership microprotocol on the builder.
pub fn register(
    b: &mut StackBuilder,
    pid: ProtocolId,
    ev: &Events,
    state: ProtocolState<MembershipState>,
) -> MembershipHandlers {
    let events = *ev;

    let joinleave = {
        let e = ev.join_leave;
        b.bind_with_triggers(
            e,
            pid,
            "membership.joinleave",
            &[ev.abcast],
            move |ctx, data| {
                let (op, site): &(ViewOp, SiteId) = data.expect(e)?;
                // `trigger ABcast [op site]` — the paper's joinleave body.
                ctx.trigger(events.abcast, EventData::new(AbPayload::ViewOp(*op, *site)))
            },
        )
    };

    let deliver_view = {
        let state = state.clone();
        let e = ev.adeliver;
        let triggers = [ev.view_change];
        b.bind_with_triggers(
            e,
            pid,
            "membership.deliver_view",
            &triggers,
            move |ctx, data| {
                let m: &AbMsg = data.expect(e)?;
                let AbPayload::ViewOp(op, site) = &m.payload else {
                    return Ok(()); // user payload; not ours
                };
                let new_view = state.with(ctx, |s| {
                    s.view = s.view.apply(*op, *site);
                    s.history.push(s.view.clone());
                    // Once a site is actually out, a future re-join may be
                    // suspected (and removed) again.
                    let view = s.view.clone();
                    s.leave_requested.retain(|m| view.contains(*m));
                    s.observe_installed();
                    s.view.clone()
                });
                // `triggerAll ViewChange view` — synchronous propagation.
                ctx.trigger_all(events.view_change, EventData::new(new_view))
            },
        )
    };

    let on_suspect = {
        let state = state.clone();
        let e = ev.suspect;
        b.bind_with_triggers(
            e,
            pid,
            "membership.on_suspect",
            &[ev.abcast],
            move |ctx, data| {
                let site: &SiteId = data.expect(e)?;
                let should_request = state.with(ctx, |s| {
                    s.view.contains(*site) && s.leave_requested.insert(*site)
                });
                if should_request {
                    ctx.trigger(
                        events.abcast,
                        EventData::new(AbPayload::ViewOp(ViewOp::Leave, *site)),
                    )?;
                }
                Ok(())
            },
        )
    };

    let adopt_view = {
        let state = state.clone();
        let e = ev.view_sync;
        let triggers = [ev.view_change];
        b.bind_with_triggers(
            e,
            pid,
            "membership.adopt_view",
            &triggers,
            move |ctx, data| {
                let sync: &SyncMsg = data.expect(e)?;
                let installed = state.with(ctx, |s| {
                    if sync.view_id > s.view.id {
                        s.view = GroupView::from_parts(sync.view_id, sync.members.iter().copied());
                        s.history.push(s.view.clone());
                        s.observe_installed();
                        Some(s.view.clone())
                    } else {
                        None
                    }
                });
                if let Some(view) = installed {
                    ctx.trigger_all(events.view_change, EventData::new(view))?;
                }
                Ok(())
            },
        )
    };

    MembershipHandlers {
        joinleave,
        deliver_view,
        on_suspect,
        adopt_view,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_records_history() {
        let mut s = MembershipState::new(GroupView::of_first(2));
        assert_eq!(s.history.len(), 1);
        s.view = s.view.apply(ViewOp::Join, SiteId(5));
        s.history.push(s.view.clone());
        assert_eq!(s.history.len(), 2);
        assert!(s.view().contains(SiteId(5)));
    }
}
