//! Cluster-side observability: the causal tracer and per-protocol metric
//! instrument bundles a node installs when tracing/metrics are requested.
//!
//! Both follow the core one-branch discipline: protocol states hold these as
//! `Option<...>`; with nothing installed the hot path pays a single
//! never-taken branch, pinned by `crates/bench/tests/no_sink_guard.rs`
//! (via [`samoa_core::trace::events_emitted`] and
//! [`samoa_core::metrics::instruments_touched`]).

use std::sync::Arc;
use std::time::Instant;

use samoa_core::metrics::{Counter, Gauge, Histogram, Registry};
use samoa_core::trace::{self, TraceKind, TraceSink};
use samoa_net::SiteId;

/// A per-node handle that emits cluster-level [`TraceKind`] events into a
/// trace sink, stamped against a cluster-wide epoch so spans from different
/// sites land on one comparable timeline.
#[derive(Clone)]
pub struct ClusterTracer {
    site: SiteId,
    sink: Arc<dyn TraceSink>,
    epoch: Instant,
}

impl ClusterTracer {
    /// A tracer for `site` emitting into `sink`, timestamped against
    /// `epoch` (share one epoch across all of a cluster's tracers).
    pub fn new(site: SiteId, sink: Arc<dyn TraceSink>, epoch: Instant) -> ClusterTracer {
        ClusterTracer { site, sink, epoch }
    }

    /// The site this tracer reports for.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Nanoseconds since the cluster epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Emit one event (counts against `events_emitted`, like runtime-internal
    /// emission).
    pub fn emit(&self, kind: TraceKind) {
        trace::emit(&self.sink, self.epoch, kind);
    }
}

/// RelComm instruments: retransmission and send counters plus the current
/// adaptive RTO.
#[derive(Clone)]
pub struct RelCommInstruments {
    /// Frames sent (first transmissions).
    pub sends: Counter,
    /// Retransmissions performed.
    pub retransmits: Counter,
    /// Sends discarded (target out of view).
    pub discards: Counter,
    /// Latest effective RTO toward any peer, in microseconds.
    pub rto_us: Gauge,
}

impl RelCommInstruments {
    /// Instruments named `site{N}.relcomm.*` in `reg`.
    pub fn new(reg: &Registry, site: SiteId) -> RelCommInstruments {
        let p = format!("site{}.relcomm", site.0);
        RelCommInstruments {
            sends: reg.counter(&format!("{p}.sends")),
            retransmits: reg.counter(&format!("{p}.retransmits")),
            discards: reg.counter(&format!("{p}.discards")),
            rto_us: reg.gauge(&format!("{p}.rto_us")),
        }
    }
}

/// Consensus instruments: rounds started and views installed.
#[derive(Clone)]
pub struct ConsensusInstruments {
    /// Consensus rounds started (coordinator collect phases).
    pub rounds: Counter,
    /// Membership views installed.
    pub view_changes: Counter,
}

impl ConsensusInstruments {
    /// Instruments named `site{N}.consensus.*` in `reg`.
    pub fn new(reg: &Registry, site: SiteId) -> ConsensusInstruments {
        let p = format!("site{}.consensus", site.0);
        ConsensusInstruments {
            rounds: reg.counter(&format!("{p}.rounds")),
            view_changes: reg.counter(&format!("{p}.view_changes")),
        }
    }
}

/// Abcast instruments: deliveries and submit-to-delivery lag.
#[derive(Clone)]
pub struct AbcastInstruments {
    /// Messages delivered in total order.
    pub delivered: Counter,
    /// Submit-to-delivery lag for locally submitted operations, µs.
    pub lag_us: Histogram,
}

impl AbcastInstruments {
    /// Instruments named `site{N}.abcast.*` in `reg`.
    pub fn new(reg: &Registry, site: SiteId) -> AbcastInstruments {
        let p = format!("site{}.abcast", site.0);
        AbcastInstruments {
            delivered: reg.counter(&format!("{p}.delivered")),
            lag_us: reg.histogram(&format!("{p}.lag_us")),
        }
    }
}

/// KV instruments: applies and client-observed apply latency.
#[derive(Clone)]
pub struct KvInstruments {
    /// Commands applied to the replicated state machine.
    pub applies: Counter,
    /// Submit-to-reply latency for locally submitted commands, µs.
    pub apply_latency_us: Histogram,
}

impl KvInstruments {
    /// Instruments named `site{N}.kv.*` in `reg`.
    pub fn new(reg: &Registry, site: SiteId) -> KvInstruments {
        let p = format!("site{}.kv", site.0);
        KvInstruments {
            applies: reg.counter(&format!("{p}.applies")),
            apply_latency_us: reg.histogram(&format!("{p}.apply_latency_us")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samoa_core::TraceBuffer;

    #[test]
    fn tracer_emits_into_sink() {
        let buf = TraceBuffer::with_capacity(2, 64);
        let t = ClusterTracer::new(SiteId(1), buf.clone(), Instant::now());
        t.emit(TraceKind::ClientSubmit { site: 1, op: 7 });
        let events = buf.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, TraceKind::ClientSubmit { site: 1, op: 7 });
    }

    #[test]
    fn instruments_share_registry_names() {
        let reg = Registry::new();
        let a = RelCommInstruments::new(&reg, SiteId(0));
        let b = RelCommInstruments::new(&reg, SiteId(0));
        a.retransmits.inc();
        b.retransmits.inc();
        assert_eq!(a.retransmits.get(), 2);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["site0.relcomm.retransmits"], 2);
    }
}
