//! `RelComm` — reliable point-to-point communication (paper §3).
//!
//! Sends datagrams with per-channel sequence numbers, acknowledges and
//! deduplicates on receipt, and retransmits unacknowledged messages on the
//! retransmission timer. Messages are only sent to — and only delivered
//! from — sites in the current view ("this requirement is necessary to
//! implement finite buffers"); pending messages to sites that leave the
//! view are discarded.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

use samoa_core::prelude::*;
use samoa_net::{SiteId, Transport};

use crate::clock::ProtoClock;
use crate::events::Events;
use crate::msgs::{MsgUid, Payload, TraceCtx, Wire};
use crate::observe::{ClusterTracer, RelCommInstruments};
use crate::view::GroupView;

/// A reliably delivered payload handed to upper microprotocols via the
/// `FromRComm` event.
#[derive(Debug, Clone)]
pub struct RDeliver {
    /// The sending site.
    pub sender: SiteId,
    /// The delivered payload.
    pub payload: Payload,
}

/// An inbound data frame (the decoded `Wire::Data`), payload of `RcData`.
#[derive(Debug, Clone)]
pub struct RcDataIn {
    /// The sending site.
    pub sender: SiteId,
    /// RelComm channel sequence number.
    pub seq: u64,
    /// Causal context carried on the frame, if any.
    pub ctx: Option<TraceCtx>,
    /// The carried payload.
    pub payload: Payload,
}

/// An inbound ack, payload of `RcAck`.
#[derive(Debug, Clone, Copy)]
pub struct RcAckIn {
    /// The acknowledging site.
    pub sender: SiteId,
    /// The acknowledged sequence number.
    pub seq: u64,
}

/// Duplicate-suppression state for one inbound channel.
#[derive(Debug, Default)]
struct Dedup {
    /// All sequence numbers `<= low` have been received.
    low: u64,
    /// Received sequence numbers above `low`.
    extra: BTreeSet<u64>,
}

impl Dedup {
    /// Record `seq`; returns true when it is fresh.
    fn fresh(&mut self, seq: u64) -> bool {
        if seq <= self.low || self.extra.contains(&seq) {
            return false;
        }
        self.extra.insert(seq);
        while self.extra.remove(&(self.low + 1)) {
            self.low += 1;
        }
        true
    }
}

/// How many of the oldest unacked messages per target each retransmit tick
/// may resend. Unbounded retransmission turns a transient receiver stall
/// into a self-sustaining storm: the whole backlog re-enters the (bounded)
/// send queues every RTO, drowning both the fresh traffic and the acks
/// that would drain it.
const RETRANSMIT_WINDOW: usize = 32;

/// One sent-but-unacknowledged message: payload, causal context as first
/// transmitted (retransmissions must be byte-identical), last transmission
/// time, and how many retransmissions it has had (drives exponential
/// backoff).
struct Pending {
    payload: Payload,
    ctx: Option<TraceCtx>,
    last: Instant,
    attempts: u32,
}

/// Per-target smoothed round-trip estimator (RFC 6298 shape). A fixed RTO
/// below the *loaded* RTT retransmits spuriously: each duplicate costs the
/// receiver a serialized computation, raising the RTT further — the
/// classic congestion spiral. Tracking `srtt + 4·rttvar` per target keeps
/// the timeout above the real ack latency as load varies, with the
/// configured RTO as the floor (so an idle, fast link still recovers from
/// a genuine loss quickly).
#[derive(Clone, Copy)]
struct Rtt {
    srtt: Duration,
    rttvar: Duration,
}

impl Rtt {
    /// Fold in an ack-latency sample (only taken from never-retransmitted
    /// messages — Karn's rule — so a retransmission's ambiguous ack can
    /// never corrupt the estimate).
    fn observe(&mut self, sample: Duration) {
        let dev = self.srtt.abs_diff(sample);
        self.rttvar = (self.rttvar * 3 + dev) / 4;
        self.srtt = (self.srtt * 7 + sample) / 8;
    }

    fn timeout(&self) -> Duration {
        self.srtt + self.rttvar * 4
    }
}

impl Pending {
    /// The timeout before the next retransmission: `rto << attempts`,
    /// capped at 16x. Backoff keeps a congested or stalled peer from being
    /// flooded with duplicates every tick — sustained retransmit storms
    /// feed on themselves (each duplicate costs the receiver an isolated
    /// computation, slowing it further, losing more acks).
    fn due(&self, rto: Duration) -> Duration {
        rto * (1u32 << self.attempts.min(4))
    }
}

/// The local state of the RelComm microprotocol.
pub struct RelCommState {
    site: SiteId,
    view: GroupView,
    next_seq: HashMap<SiteId, u64>,
    pending: HashMap<(SiteId, u64), Pending>,
    inbound: HashMap<SiteId, Dedup>,
    rto: Duration,
    rtt: HashMap<SiteId, Rtt>,
    clock: ProtoClock,
    /// When false, inbound duplicate suppression is bypassed: every data
    /// frame is delivered upward, even retransmissions and network-level
    /// duplicates. **This is an injected bug** — it exists so the fault
    /// explorer can demonstrate a minimised cluster-level witness (a
    /// duplicated frame double-delivers through abcast). Always true in
    /// production configurations.
    pub dedup_enabled: bool,
    /// Retransmissions performed (observable for tests/benches).
    pub retransmissions: u64,
    /// Sends discarded because the target was not in RelComm's view. Under
    /// an isolating policy this only happens for genuinely departed sites;
    /// under `Unsync` it also counts the paper's §3 race (an upper layer
    /// fanned out using a view RelComm has not installed yet).
    pub discarded: u64,
    /// Artificial processing delay at the start of `view_change`, used by
    /// experiment E5 to widen the §3 race window (simulating the "time
    /// consuming" view installation work the paper's motivation cites).
    pub view_change_delay: Duration,
    /// Smallest causal hop count observed per operation uid, learned from
    /// inbound frame contexts. Outbound frames serving a learned operation
    /// carry `hop + 1`; frames serving a locally originated operation carry
    /// hop 0. A pure function of delivered frames, so attached contexts are
    /// schedule-replay stable.
    ctx_hops: HashMap<MsgUid, u8>,
    /// Cluster tracer, when the node is traced (retransmit spans).
    pub tracer: Option<ClusterTracer>,
    /// Metric instruments, when a registry is installed.
    pub instruments: Option<RelCommInstruments>,
}

impl RelCommState {
    /// Fresh state for `site` with the given initial view and
    /// retransmission timeout, on the wall clock.
    pub fn new(site: SiteId, view: GroupView, rto: Duration) -> Self {
        RelCommState::with_clock(site, view, rto, ProtoClock::wall())
    }

    /// Fresh state reading time from `clock` (a manual clock makes
    /// retransmission timing deterministic under the checker).
    pub fn with_clock(site: SiteId, view: GroupView, rto: Duration, clock: ProtoClock) -> Self {
        RelCommState {
            site,
            view,
            next_seq: HashMap::new(),
            pending: HashMap::new(),
            inbound: HashMap::new(),
            rto,
            rtt: HashMap::new(),
            clock,
            dedup_enabled: true,
            retransmissions: 0,
            discarded: 0,
            view_change_delay: Duration::ZERO,
            ctx_hops: HashMap::new(),
            tracer: None,
            instruments: None,
        }
    }

    /// The causal context an outbound `payload` should carry: the payload's
    /// root operation, at the learned inbound hop count + 1 (0 when this
    /// site originated the operation or never saw a context for it).
    fn ctx_for(&self, payload: &Payload) -> Option<TraceCtx> {
        let uid = payload.root_uid()?;
        let hop = self
            .ctx_hops
            .get(&uid)
            .map(|h| h.saturating_add(1))
            .unwrap_or(0);
        Some(TraceCtx {
            origin: uid.origin,
            op: uid.seq,
            hop,
        })
    }

    /// Messages sent but not yet acknowledged.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// The view RelComm currently believes in.
    pub fn view(&self) -> &GroupView {
        &self.view
    }

    /// The effective retransmission timeout toward `target`: the adaptive
    /// estimate when one exists (never below the configured floor, capped
    /// at 40x so a single extreme sample cannot park the channel).
    fn rto_for(&self, target: SiteId) -> Duration {
        let adaptive = self
            .rtt
            .get(&target)
            .map(|r| r.timeout())
            .unwrap_or(Duration::ZERO);
        adaptive.clamp(self.rto, self.rto * 40)
    }
}

/// Handler ids of the registered RelComm microprotocol.
#[derive(Debug, Clone, Copy)]
pub struct RelCommHandlers {
    /// `send` (bound to `SendOut`).
    pub send: HandlerId,
    /// `recv_data` (bound to `RcData`).
    pub recv_data: HandlerId,
    /// `recv_ack` (bound to `RcAck`).
    pub recv_ack: HandlerId,
    /// `retransmit` (bound to `RetransmitTick`).
    pub retransmit: HandlerId,
    /// `view_change` (bound to `ViewChange`).
    pub view_change: HandlerId,
}

/// Register RelComm on the builder. Returns its handler ids.
pub fn register(
    b: &mut StackBuilder,
    pid: ProtocolId,
    ev: &Events,
    state: ProtocolState<RelCommState>,
    net: Arc<dyn Transport>,
) -> RelCommHandlers {
    let send = {
        let state = state.clone();
        let net = Arc::clone(&net);
        let e = ev.send_out;
        // `send` talks to the Transport directly — no stack-internal triggers.
        b.bind_with_triggers(e, pid, "relcomm.send", &[], move |ctx, data| {
            let (payload, target): &(Payload, SiteId) = data.expect(e)?;
            let frame = state.with(ctx, |s| {
                if !s.view.contains(*target) || *target == s.site {
                    if *target != s.site {
                        s.discarded += 1;
                        if let Some(ins) = &s.instruments {
                            ins.discards.inc();
                        }
                    }
                    return None; // discard, as the paper prescribes
                }
                let seq = s.next_seq.entry(*target).or_insert(0);
                *seq += 1;
                let seq = *seq;
                let now = s.clock.now();
                let wire_ctx = s.ctx_for(payload);
                s.pending.insert(
                    (*target, seq),
                    Pending {
                        payload: payload.clone(),
                        ctx: wire_ctx,
                        last: now,
                        attempts: 0,
                    },
                );
                if let Some(ins) = &s.instruments {
                    ins.sends.inc();
                    ins.rto_us.set(s.rto_for(*target).as_micros() as u64);
                }
                Some((s.site, seq, wire_ctx))
            });
            if let Some((site, seq, wire_ctx)) = frame {
                net.send(
                    site,
                    *target,
                    Wire::Data {
                        seq,
                        ctx: wire_ctx,
                        payload: payload.clone(),
                    }
                    .encode(),
                );
            }
            Ok(())
        })
    };

    let recv_data = {
        let state = state.clone();
        let net = Arc::clone(&net);
        let e = ev.rc_data;
        let from_rcomm = ev.from_rcomm;
        b.bind_with_triggers(
            e,
            pid,
            "relcomm.recv_data",
            &[from_rcomm],
            move |ctx, data| {
                let m: &RcDataIn = data.expect(e)?;
                let (me, deliver) = state.with(ctx, |s| {
                    // Learn the operation's hop distance so frames this site
                    // forwards on the operation's behalf carry hop + 1.
                    if let Some(c) = m.ctx {
                        let uid = MsgUid {
                            origin: c.origin,
                            seq: c.op,
                        };
                        s.ctx_hops
                            .entry(uid)
                            .and_modify(|h| *h = (*h).min(c.hop))
                            .or_insert(c.hop);
                    }
                    // The dedup filter is the exactly-once guarantee; with
                    // the injected bug enabled it is recorded but ignored.
                    let fresh = s.inbound.entry(m.sender).or_default().fresh(m.seq);
                    let fresh = fresh || !s.dedup_enabled;
                    // Deliver only from in-view senders (paper's recv).
                    (s.site, fresh && s.view.contains(m.sender))
                });
                // Always ack — even duplicates (the original ack may be lost).
                net.send(me, m.sender, Wire::Ack { seq: m.seq }.encode());
                if deliver {
                    ctx.async_trigger_all(
                        from_rcomm,
                        EventData::new(RDeliver {
                            sender: m.sender,
                            payload: m.payload.clone(),
                        }),
                    )?;
                }
                Ok(())
            },
        )
    };

    let recv_ack = {
        let state = state.clone();
        let e = ev.rc_ack;
        b.bind_with_triggers(e, pid, "relcomm.recv_ack", &[], move |ctx, data| {
            let a: &RcAckIn = data.expect(e)?;
            state.with(ctx, |s| {
                if let Some(p) = s.pending.remove(&(a.sender, a.seq)) {
                    if p.attempts == 0 {
                        // Karn's rule: sample only unambiguous acks.
                        let sample = s.clock.now().saturating_duration_since(p.last);
                        s.rtt
                            .entry(a.sender)
                            .or_insert(Rtt {
                                srtt: sample,
                                rttvar: sample / 2,
                            })
                            .observe(sample);
                    }
                }
            });
            Ok(())
        })
    };

    let retransmit = {
        let state = state.clone();
        let net = Arc::clone(&net);
        let e = ev.retransmit_tick;
        b.bind_with_triggers(e, pid, "relcomm.retransmit", &[], move |ctx, _| {
            let (me, resend) = state.with(ctx, |s| {
                let now = s.clock.now();
                // Purge pending messages to departed sites.
                let view = s.view.clone();
                s.pending.retain(|(target, _), _| view.contains(*target));
                // Head-of-line retransmission: per target, only the
                // RETRANSMIT_WINDOW oldest unacked seqs are eligible. The
                // receiver dedups contiguously from its floor, so resending
                // far past an undelivered head is pure flood; a windowed
                // sender advances the head, collects acks, and drains a
                // backlog instead of regenerating it every tick.
                // BTreeMap so resend order is a pure function of the pending
                // set: hooked exploration replays schedules by decision index
                // and diverges if send order varies run to run.
                let mut by_target: std::collections::BTreeMap<SiteId, Vec<u64>> =
                    std::collections::BTreeMap::new();
                for (target, seq) in s.pending.keys() {
                    by_target.entry(*target).or_default().push(*seq);
                }
                let mut resend = Vec::new();
                for (target, mut seqs) in by_target {
                    seqs.sort_unstable();
                    seqs.truncate(RETRANSMIT_WINDOW);
                    let rto = s.rto_for(target);
                    for seq in seqs {
                        let p = s.pending.get_mut(&(target, seq)).expect("pending key");
                        if now.duration_since(p.last) >= p.due(rto) {
                            p.last = now;
                            p.attempts += 1;
                            s.retransmissions += 1;
                            let attempts = p.attempts;
                            if let Some(ins) = &s.instruments {
                                ins.retransmits.inc();
                            }
                            if let Some(t) = &s.tracer {
                                t.emit(samoa_core::TraceKind::Retransmit {
                                    site: t.site().0,
                                    to: target.0,
                                    attempts,
                                });
                            }
                            resend.push((target, seq, p.ctx, p.payload.clone()));
                        }
                    }
                }
                (s.site, resend)
            });
            for (target, seq, wire_ctx, payload) in resend {
                net.send(
                    me,
                    target,
                    Wire::Data {
                        seq,
                        ctx: wire_ctx,
                        payload,
                    }
                    .encode(),
                );
            }
            Ok(())
        })
    };

    let view_change = {
        let state = state.clone();
        let e = ev.view_change;
        b.bind_with_triggers(e, pid, "relcomm.view_change", &[], move |ctx, data| {
            let v: &GroupView = data.expect(e)?;
            let delay = state.with(ctx, |s| s.view_change_delay);
            if !delay.is_zero() {
                // E5's race-window widener: RelComm is still on the old
                // view while upper layers already installed the new one.
                std::thread::sleep(delay);
            }
            state.with(ctx, |s| {
                s.view = v.clone();
                let view = s.view.clone();
                s.pending.retain(|(target, _), _| view.contains(*target));
            });
            Ok(())
        })
    };

    RelCommHandlers {
        send,
        recv_data,
        recv_ack,
        retransmit,
        view_change,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_accepts_fresh_rejects_dup() {
        let mut d = Dedup::default();
        assert!(d.fresh(1));
        assert!(!d.fresh(1));
        assert!(d.fresh(3));
        assert!(!d.fresh(3));
        assert!(d.fresh(2));
        assert!(!d.fresh(2));
        // Compaction: low advanced past 3, extras drained.
        assert_eq!(d.low, 3);
        assert!(d.extra.is_empty());
        assert!(!d.fresh(0));
    }

    #[test]
    fn dedup_handles_large_gaps() {
        let mut d = Dedup::default();
        assert!(d.fresh(100));
        assert_eq!(d.low, 0);
        assert!(d.fresh(1));
        assert_eq!(d.low, 1);
        assert!(!d.fresh(100));
    }

    #[test]
    fn state_counters_start_clean() {
        let s = RelCommState::new(SiteId(0), GroupView::of_first(3), Duration::from_millis(20));
        assert_eq!(s.pending_count(), 0);
        assert_eq!(s.retransmissions, 0);
        assert_eq!(s.view().len(), 3);
    }
}
