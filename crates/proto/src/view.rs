//! Group views (paper §3: the `Membership` microprotocol maintains a view —
//! the current set of sites considered nonfaulty — kept consistent across
//! all sites by funnelling view changes through atomic broadcast).

use std::fmt;

use samoa_net::SiteId;

/// A join or leave operation (the paper's `op: {+,-}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViewOp {
    /// `+ site`
    Join,
    /// `- site`
    Leave,
}

/// A numbered group view: the set of member sites, kept sorted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupView {
    /// Monotonically increasing view number.
    pub id: u64,
    members: Vec<SiteId>,
}

impl GroupView {
    /// The initial view over the given members.
    pub fn initial(members: impl IntoIterator<Item = SiteId>) -> Self {
        let mut members: Vec<SiteId> = members.into_iter().collect();
        members.sort_unstable();
        members.dedup();
        GroupView { id: 0, members }
    }

    /// The initial view of sites `0..n`.
    pub fn of_first(n: usize) -> Self {
        GroupView::initial((0..n as u16).map(SiteId))
    }

    /// Reconstruct a view from its wire representation (id + members). Used
    /// by join-time state transfer.
    pub fn from_parts(id: u64, members: impl IntoIterator<Item = SiteId>) -> Self {
        let mut v = GroupView::initial(members);
        v.id = id;
        v
    }

    /// The member list, sorted ascending.
    pub fn members(&self) -> &[SiteId] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Is the view empty?
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Is `site` a member?
    pub fn contains(&self, site: SiteId) -> bool {
        self.members.binary_search(&site).is_ok()
    }

    /// Apply a view operation, producing the next view. Joining a present
    /// member or removing an absent one still advances the view number
    /// (every delivered view op produces a new view, as the paper's
    /// `view = view op site` does).
    pub fn apply(&self, op: ViewOp, site: SiteId) -> GroupView {
        let mut members = self.members.clone();
        match op {
            ViewOp::Join => {
                if let Err(i) = members.binary_search(&site) {
                    members.insert(i, site);
                }
            }
            ViewOp::Leave => {
                if let Ok(i) = members.binary_search(&site) {
                    members.remove(i);
                }
            }
        }
        GroupView {
            id: self.id + 1,
            members,
        }
    }

    /// Size of a majority quorum of this view.
    pub fn majority(&self) -> usize {
        self.members.len() / 2 + 1
    }

    /// The rotating coordinator for consensus round `round`.
    pub fn coordinator(&self, round: u64) -> Option<SiteId> {
        if self.members.is_empty() {
            None
        } else {
            Some(self.members[(round as usize) % self.members.len()])
        }
    }
}

impl fmt::Display for GroupView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}{{", self.id)?;
        for (i, m) in self.members.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u16) -> SiteId {
        SiteId(i)
    }

    #[test]
    fn initial_sorts_and_dedups() {
        let v = GroupView::initial([s(3), s(1), s(3), s(0)]);
        assert_eq!(v.members(), &[s(0), s(1), s(3)]);
        assert_eq!(v.id, 0);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn apply_join_and_leave() {
        let v = GroupView::of_first(2);
        let v1 = v.apply(ViewOp::Join, s(5));
        assert_eq!(v1.id, 1);
        assert!(v1.contains(s(5)));
        let v2 = v1.apply(ViewOp::Leave, s(0));
        assert_eq!(v2.id, 2);
        assert!(!v2.contains(s(0)));
        assert_eq!(v2.members(), &[s(1), s(5)]);
    }

    #[test]
    fn idempotent_ops_still_advance_view_id() {
        let v = GroupView::of_first(2);
        let v1 = v.apply(ViewOp::Join, s(0));
        assert_eq!(v1.id, 1);
        assert_eq!(v1.members(), v.members());
        let v2 = v.apply(ViewOp::Leave, s(9));
        assert_eq!(v2.id, 1);
        assert_eq!(v2.members(), v.members());
    }

    #[test]
    fn majority_sizes() {
        assert_eq!(GroupView::of_first(1).majority(), 1);
        assert_eq!(GroupView::of_first(2).majority(), 2);
        assert_eq!(GroupView::of_first(3).majority(), 2);
        assert_eq!(GroupView::of_first(4).majority(), 3);
        assert_eq!(GroupView::of_first(5).majority(), 3);
    }

    #[test]
    fn coordinator_rotates() {
        let v = GroupView::of_first(3);
        assert_eq!(v.coordinator(0), Some(s(0)));
        assert_eq!(v.coordinator(1), Some(s(1)));
        assert_eq!(v.coordinator(3), Some(s(0)));
        let empty = GroupView::initial([]);
        assert_eq!(empty.coordinator(0), None);
        assert!(empty.is_empty());
    }

    #[test]
    fn display_format() {
        let v = GroupView::of_first(2);
        assert_eq!(v.to_string(), "v0{s0,s1}");
    }
}
