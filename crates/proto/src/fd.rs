//! Heartbeat failure detector (◇S-style substrate for consensus and
//! membership).
//!
//! On each `FdTick` the detector sends raw heartbeats to every other member
//! and suspects members not heard from within the timeout. Suspicions are
//! announced once per site via the `Suspect` event; a heartbeat from a
//! suspected site rescinds the suspicion (eventual accuracy under the
//! simulator's fault model).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use samoa_core::prelude::*;
use samoa_net::{SiteId, Transport};

use crate::clock::ProtoClock;
use crate::events::Events;
use crate::msgs::Wire;
use crate::view::GroupView;

/// The local state of the failure-detector microprotocol.
pub struct FdState {
    site: SiteId,
    view: GroupView,
    last_heard: HashMap<SiteId, Instant>,
    suspected: HashSet<SiteId>,
    timeout: Duration,
    started: Instant,
    clock: ProtoClock,
}

impl FdState {
    /// Fresh state on the wall clock; every member gets a grace period of
    /// `timeout` from now.
    pub fn new(site: SiteId, view: GroupView, timeout: Duration) -> Self {
        FdState::with_clock(site, view, timeout, ProtoClock::wall())
    }

    /// Fresh state reading time from `clock` (a manual clock makes the
    /// detector fully deterministic: suspicion depends only on explicit
    /// `advance` calls, never on host scheduling).
    pub fn with_clock(site: SiteId, view: GroupView, timeout: Duration, clock: ProtoClock) -> Self {
        FdState {
            site,
            view,
            last_heard: HashMap::new(),
            suspected: HashSet::new(),
            timeout,
            started: clock.now(),
            clock,
        }
    }

    /// Currently suspected sites.
    pub fn suspects(&self) -> Vec<SiteId> {
        let mut v: Vec<SiteId> = self.suspected.iter().copied().collect();
        v.sort_unstable();
        v
    }
}

/// Handler ids of the registered failure detector.
#[derive(Debug, Clone, Copy)]
pub struct FdHandlers {
    /// `tick` (bound to `FdTick`).
    pub tick: HandlerId,
    /// `beat` (bound to `FdBeat`).
    pub beat: HandlerId,
    /// `view_change` (bound to `ViewChange`).
    pub view_change: HandlerId,
}

/// Register the failure detector on the builder.
pub fn register(
    b: &mut StackBuilder,
    pid: ProtocolId,
    ev: &Events,
    state: ProtocolState<FdState>,
    net: Arc<dyn Transport>,
) -> FdHandlers {
    let tick = {
        let state = state.clone();
        let net = Arc::clone(&net);
        let e = ev.fd_tick;
        let suspect_ev = ev.suspect;
        // `tick` announces every standing suspicion (up to one `Suspect`
        // per peer); the static declaration lists the event once.
        b.bind_with_triggers(e, pid, "fd.tick", &[suspect_ev], move |ctx, _| {
            let (me, peers, suspects) = state.with(ctx, |s| {
                let now = s.clock.now();
                let peers: Vec<SiteId> = s
                    .view
                    .members()
                    .iter()
                    .copied()
                    .filter(|&m| m != s.site)
                    .collect();
                for &m in &peers {
                    let heard = *s.last_heard.get(&m).unwrap_or(&s.started);
                    if now.duration_since(heard) > s.timeout {
                        s.suspected.insert(m);
                    }
                }
                // Announce *standing* suspicions every tick (◇S exposes its
                // suspect list continuously): consensus instances created
                // after the first announcement still learn that their
                // round's coordinator is suspected.
                (s.site, peers, s.suspects())
            });
            for &m in &peers {
                net.send(me, m, Wire::Heartbeat.encode());
            }
            for m in suspects {
                ctx.trigger_all(suspect_ev, EventData::new(m))?;
            }
            Ok(())
        })
    };

    let beat = {
        let state = state.clone();
        let e = ev.fd_beat;
        b.bind_with_triggers(e, pid, "fd.beat", &[], move |ctx, data| {
            let sender: &SiteId = data.expect(e)?;
            state.with(ctx, |s| {
                let now = s.clock.now();
                s.last_heard.insert(*sender, now);
                s.suspected.remove(sender);
            });
            Ok(())
        })
    };

    let view_change = {
        let state = state.clone();
        let e = ev.view_change;
        b.bind_with_triggers(e, pid, "fd.view_change", &[], move |ctx, data| {
            let v: &GroupView = data.expect(e)?;
            state.with(ctx, |s| {
                s.view = v.clone();
                let view = s.view.clone();
                s.suspected.retain(|m| view.contains(*m));
            });
            Ok(())
        })
    };

    FdHandlers {
        tick,
        beat,
        view_change,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_suspects_nobody() {
        let s = FdState::new(
            SiteId(0),
            GroupView::of_first(3),
            Duration::from_millis(100),
        );
        assert!(s.suspects().is_empty());
    }

    #[test]
    fn suspects_sorted() {
        let mut s = FdState::new(
            SiteId(0),
            GroupView::of_first(4),
            Duration::from_millis(100),
        );
        s.suspected.insert(SiteId(3));
        s.suspected.insert(SiteId(1));
        assert_eq!(s.suspects(), vec![SiteId(1), SiteId(3)]);
    }
}
