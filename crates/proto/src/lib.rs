//! # samoa-proto — the paper's group-communication stack on SAMOA
//!
//! The running example of the SAMOA paper (§3) is a group-communication
//! middleware built from microprotocols: reliable point-to-point channels
//! (`RelComm`), reliable broadcast (`RelCast`), a failure detector,
//! distributed consensus, atomic broadcast, and view membership. This crate
//! implements that entire stack as SAMOA microprotocols over the simulated
//! network of `samoa-net`, and is the workload for the paper's §7
//! evaluation (experiment E2 in EXPERIMENTS.md) and the §3 "Problem" race
//! (experiment E5).
//!
//! ```no_run
//! use samoa_proto::{Cluster, NodeConfig, StackPolicy};
//! use samoa_net::NetConfig;
//!
//! let cluster = Cluster::new(
//!     3,
//!     NetConfig::fast(42),
//!     NodeConfig::with_policy(StackPolicy::Basic),
//! );
//! cluster.node(0).abcast("hello");
//! cluster.node(1).abcast("world");
//! cluster.settle();
//! // Every site delivered the same totally ordered sequence.
//! let order = cluster.node(0).ab_delivered();
//! assert_eq!(order, cluster.node(2).ab_delivered());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod abcast;
pub mod app;
pub mod clock;
pub mod consensus;
pub mod events;
pub mod fd;
pub mod kv;
pub mod membership;
pub mod msgs;
pub mod node;
pub mod observe;
pub mod relcast;
pub mod relcomm;
pub mod view;

pub use clock::ProtoClock;
pub use events::Events;
pub use kv::{KvApplied, KvCmd, KvPending, KvReply, KvState};
pub use msgs::{
    AbMsg, AbPayload, CastData, CastMsg, ConsMsg, MsgUid, Payload, SyncMsg, TraceCtx, Wire,
};
pub use node::{Cluster, ClusterMetrics, Node, NodeConfig, Observe, StackPolicy, TcpCluster};
pub use observe::ClusterTracer;
pub use view::{GroupView, ViewOp};
