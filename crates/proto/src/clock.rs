//! A pluggable time source for the stack's timeout logic.
//!
//! The failure detector and RelComm's retransmission logic both compare
//! "now" against recorded instants. In production that is the wall clock;
//! under the deterministic checker it must be a **virtual clock** that only
//! moves when the exploring controller decides to fire a tick — otherwise
//! timeouts depend on host scheduling and no schedule replays byte-
//! identically. [`ProtoClock`] is that seam: a cheap cloneable handle that
//! is either the wall clock or a shared monotone counter advanced
//! explicitly by the test harness.
//!
//! ```
//! use std::time::Duration;
//! use samoa_proto::ProtoClock;
//!
//! let clock = ProtoClock::manual();
//! let t0 = clock.now();
//! clock.advance(Duration::from_millis(50));
//! assert_eq!(clock.now().duration_since(t0), Duration::from_millis(50));
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

enum ClockInner {
    /// Real time: `now()` is `Instant::now()`.
    Wall,
    /// Virtual time: `now()` is a fixed epoch plus an explicitly advanced
    /// offset. Deterministic — it moves only via [`ProtoClock::advance`].
    Manual {
        epoch: Instant,
        offset_ns: AtomicU64,
    },
}

/// A cloneable time source: wall clock in production, an explicitly
/// advanced virtual clock under deterministic exploration. See the
/// [module docs](self).
#[derive(Clone)]
pub struct ProtoClock(Arc<ClockInner>);

impl std::fmt::Debug for ProtoClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &*self.0 {
            ClockInner::Wall => write!(f, "ProtoClock::Wall"),
            ClockInner::Manual { offset_ns, .. } => write!(
                f,
                "ProtoClock::Manual({:?})",
                Duration::from_nanos(offset_ns.load(Ordering::Relaxed))
            ),
        }
    }
}

impl Default for ProtoClock {
    fn default() -> Self {
        ProtoClock::wall()
    }
}

impl ProtoClock {
    /// The real wall clock (production default).
    pub fn wall() -> ProtoClock {
        ProtoClock(Arc::new(ClockInner::Wall))
    }

    /// A frozen virtual clock starting at an arbitrary epoch. Time moves
    /// only when [`advance`](ProtoClock::advance) is called; clones share
    /// the same offset, so one clock can drive a whole cluster.
    pub fn manual() -> ProtoClock {
        ProtoClock(Arc::new(ClockInner::Manual {
            epoch: Instant::now(),
            offset_ns: AtomicU64::new(0),
        }))
    }

    /// The current time on this clock.
    pub fn now(&self) -> Instant {
        match &*self.0 {
            ClockInner::Wall => Instant::now(),
            ClockInner::Manual { epoch, offset_ns } => {
                *epoch + Duration::from_nanos(offset_ns.load(Ordering::Acquire))
            }
        }
    }

    /// Advance a manual clock by `d`. No-op on the wall clock (real time
    /// cannot be steered).
    pub fn advance(&self, d: Duration) {
        if let ClockInner::Manual { offset_ns, .. } = &*self.0 {
            offset_ns.fetch_add(d.as_nanos() as u64, Ordering::AcqRel);
        }
    }

    /// Is this a manual (virtual) clock?
    pub fn is_manual(&self) -> bool {
        matches!(&*self.0, ClockInner::Manual { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_tracks_real_time() {
        let c = ProtoClock::wall();
        assert!(!c.is_manual());
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_moves_only_on_advance() {
        let c = ProtoClock::manual();
        assert!(c.is_manual());
        let t0 = c.now();
        assert_eq!(c.now(), t0);
        c.advance(Duration::from_millis(7));
        assert_eq!(c.now().duration_since(t0), Duration::from_millis(7));
    }

    #[test]
    fn clones_share_the_offset() {
        let c = ProtoClock::manual();
        let d = c.clone();
        let t0 = c.now();
        d.advance(Duration::from_secs(1));
        assert_eq!(c.now().duration_since(t0), Duration::from_secs(1));
    }

    #[test]
    fn advance_on_wall_clock_is_a_noop() {
        let c = ProtoClock::wall();
        c.advance(Duration::from_secs(3600));
        // Nothing observable to assert beyond "it did not panic and time
        // is still sane".
        assert!(c.now().elapsed() < Duration::from_secs(3600));
    }
}
