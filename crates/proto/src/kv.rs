//! Replicated key-value store: an application microprotocol on top of
//! atomic broadcast.
//!
//! `put` / `get` / `cas` commands are encoded into
//! [`AbPayload::User`](crate::msgs::AbPayload) frames, totally ordered by
//! the abcast stack, and applied by a deterministic state machine at every
//! site — textbook state-machine replication, with SAMOA providing the
//! total order and the isolation. Because the commands ride the existing
//! `ABcast`/`ADeliver` events, the store runs unchanged over `SimNet` or
//! `TcpNet`, under every [`StackPolicy`](crate::node::StackPolicy).
//!
//! Reads (`get`) are ordered through abcast like writes, so every
//! operation is linearizable: its point of effect is its position in the
//! total order.
//!
//! The originating site completes the client's pending handle when *it*
//! applies the command (origin-local completion): the reply reflects the
//! state machine at the command's position in the total order.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::{BufMut, Bytes, BytesMut};
use parking_lot::{Condvar, Mutex};

use samoa_core::prelude::*;
use samoa_net::SiteId;

use crate::events::Events;
use crate::msgs::{AbPayload, MsgUid};
use crate::observe::{ClusterTracer, KvInstruments};

/// Magic prefix distinguishing KV commands from plain abcast user
/// payloads (which the store ignores).
const MAGIC: [u8; 2] = [0xB5, 0x4B];

/// One replicated command. `req` is an origin-local request id used to
/// route the reply back to the issuing client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvCmd {
    /// Set `key` to `value`; replies with the previous value.
    Put {
        /// Origin-local request id.
        req: u64,
        /// Key.
        key: Bytes,
        /// New value.
        value: Bytes,
    },
    /// Read `key` at the command's position in the total order.
    Get {
        /// Origin-local request id.
        req: u64,
        /// Key.
        key: Bytes,
    },
    /// Compare-and-swap: set `key` to `value` iff its current value equals
    /// `expect` (`None` = expect absent). Replies `ok` on success, with the
    /// post-operation value either way.
    Cas {
        /// Origin-local request id.
        req: u64,
        /// Key.
        key: Bytes,
        /// Expected current value (`None` = key absent).
        expect: Option<Bytes>,
        /// Value to install on match.
        value: Bytes,
    },
}

impl KvCmd {
    /// The origin-local request id.
    pub fn req(&self) -> u64 {
        match self {
            KvCmd::Put { req, .. } | KvCmd::Get { req, .. } | KvCmd::Cas { req, .. } => *req,
        }
    }

    /// The key the command touches.
    pub fn key(&self) -> &Bytes {
        match self {
            KvCmd::Put { key, .. } | KvCmd::Get { key, .. } | KvCmd::Cas { key, .. } => key,
        }
    }

    /// Encode into an abcast user payload.
    pub fn encode(&self) -> Bytes {
        fn put_bytes(out: &mut BytesMut, b: &Bytes) {
            out.put_u32_le(b.len() as u32);
            out.put_slice(b);
        }
        let mut out = BytesMut::new();
        out.put_slice(&MAGIC);
        match self {
            KvCmd::Put { req, key, value } => {
                out.put_u8(0);
                out.put_u64_le(*req);
                put_bytes(&mut out, key);
                put_bytes(&mut out, value);
            }
            KvCmd::Get { req, key } => {
                out.put_u8(1);
                out.put_u64_le(*req);
                put_bytes(&mut out, key);
            }
            KvCmd::Cas {
                req,
                key,
                expect,
                value,
            } => {
                out.put_u8(2);
                out.put_u64_le(*req);
                put_bytes(&mut out, key);
                match expect {
                    None => out.put_u8(0),
                    Some(e) => {
                        out.put_u8(1);
                        put_bytes(&mut out, e);
                    }
                }
                put_bytes(&mut out, value);
            }
        }
        out.freeze()
    }

    /// Decode from an abcast user payload; `None` if it is not a KV frame.
    pub fn decode(b: &Bytes) -> Option<KvCmd> {
        struct Rd<'a>(&'a [u8]);
        impl Rd<'_> {
            fn u8(&mut self) -> Option<u8> {
                let (h, t) = self.0.split_first()?;
                self.0 = t;
                Some(*h)
            }
            fn u64(&mut self) -> Option<u64> {
                if self.0.len() < 8 {
                    return None;
                }
                let (h, t) = self.0.split_at(8);
                self.0 = t;
                Some(u64::from_le_bytes(h.try_into().ok()?))
            }
            fn bytes(&mut self) -> Option<Bytes> {
                if self.0.len() < 4 {
                    return None;
                }
                let (h, t) = self.0.split_at(4);
                let len = u32::from_le_bytes(h.try_into().ok()?) as usize;
                if t.len() < len {
                    return None;
                }
                let (b, rest) = t.split_at(len);
                self.0 = rest;
                Some(Bytes::copy_from_slice(b))
            }
        }
        if b.len() < 3 || b[..2] != MAGIC {
            return None;
        }
        let mut r = Rd(&b[2..]);
        let cmd = match r.u8()? {
            0 => KvCmd::Put {
                req: r.u64()?,
                key: r.bytes()?,
                value: r.bytes()?,
            },
            1 => KvCmd::Get {
                req: r.u64()?,
                key: r.bytes()?,
            },
            2 => {
                let req = r.u64()?;
                let key = r.bytes()?;
                let expect = match r.u8()? {
                    0 => None,
                    1 => Some(r.bytes()?),
                    _ => return None,
                };
                KvCmd::Cas {
                    req,
                    key,
                    expect,
                    value: r.bytes()?,
                }
            }
            _ => return None,
        };
        if r.0.is_empty() {
            Some(cmd)
        } else {
            None
        }
    }
}

/// The outcome of one applied command, reported to the issuing client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvReply {
    /// `true` for `put`/`get`; for `cas`, whether the swap took effect.
    pub ok: bool,
    /// `put`: the previous value; `get`: the read value; `cas`: the
    /// post-operation value.
    pub value: Option<Bytes>,
}

/// One applied command with its position identity in the total order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvApplied {
    /// The abcast uid (origin site + origin sequence number).
    pub uid: MsgUid,
    /// The command.
    pub cmd: KvCmd,
}

/// The deterministic state machine: the map plus the applied-command log.
#[derive(Debug, Default)]
pub struct KvState {
    map: BTreeMap<Bytes, Bytes>,
    log: Vec<KvApplied>,
}

impl KvState {
    /// Apply one command (in total-order position `uid`) and produce its
    /// reply. Pure function of (current state, command) — every site that
    /// applies the same log prefix has byte-identical state.
    pub fn apply(&mut self, uid: MsgUid, cmd: KvCmd) -> KvReply {
        let reply = match &cmd {
            KvCmd::Put { key, value, .. } => KvReply {
                ok: true,
                value: self.map.insert(key.clone(), value.clone()),
            },
            KvCmd::Get { key, .. } => KvReply {
                ok: true,
                value: self.map.get(key).cloned(),
            },
            KvCmd::Cas {
                key, expect, value, ..
            } => {
                let ok = self.map.get(key) == expect.as_ref();
                if ok {
                    self.map.insert(key.clone(), value.clone());
                }
                KvReply {
                    ok,
                    value: self.map.get(key).cloned(),
                }
            }
        };
        self.log.push(KvApplied { uid, cmd });
        reply
    }

    /// Number of applied commands.
    pub fn applied(&self) -> usize {
        self.log.len()
    }

    /// The applied-command log (the site's view of the total order).
    pub fn log(&self) -> &[KvApplied] {
        &self.log
    }

    /// Snapshot of the map.
    pub fn snapshot(&self) -> Vec<(Bytes, Bytes)> {
        self.map
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// FNV-1a digest of the map contents: byte-identical state machines
    /// have equal digests.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |b: &[u8]| {
            for &x in b {
                h ^= x as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for (k, v) in &self.map {
            eat(&(k.len() as u64).to_le_bytes());
            eat(k);
            eat(&(v.len() as u64).to_le_bytes());
            eat(v);
        }
        h
    }
}

#[derive(Debug)]
struct WaitCell {
    slot: Mutex<Option<KvReply>>,
    cv: Condvar,
}

/// Client-latency accounting attached to a waiter set when metric
/// instruments are installed: maps in-flight request ids to their submit
/// instant so `complete` can observe the submit-to-reply latency.
struct KvObserver {
    ins: KvInstruments,
    started: HashMap<u64, Instant>,
}

/// Routes replies from the state machine back to blocked clients on the
/// originating site. Cloneable handle; shared between the KV handler and
/// [`Node::kv_put`](crate::node::Node::kv_put)-style entry points.
#[derive(Clone, Default)]
pub struct KvWaiters {
    cells: Arc<Mutex<HashMap<u64, Arc<WaitCell>>>>,
    observer: Option<Arc<Mutex<KvObserver>>>,
}

impl KvWaiters {
    /// A waiter set that additionally records client-observed apply latency
    /// into `ins` (uninstrumented waiters pay one never-taken branch).
    pub fn with_instruments(ins: KvInstruments) -> KvWaiters {
        KvWaiters {
            cells: Arc::default(),
            observer: Some(Arc::new(Mutex::new(KvObserver {
                ins,
                started: HashMap::new(),
            }))),
        }
    }

    /// Create the pending handle for request `req` (called before the
    /// command is broadcast, so the reply cannot race past the waiter).
    pub fn pending(&self, req: u64) -> KvPending {
        let cell = Arc::new(WaitCell {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        });
        self.cells.lock().insert(req, Arc::clone(&cell));
        if let Some(o) = &self.observer {
            o.lock().started.insert(req, Instant::now());
        }
        KvPending {
            req,
            cell,
            waiters: self.clone(),
        }
    }

    /// Deliver the reply for request `req` (called by the KV handler when
    /// the origin site applies the command).
    pub fn complete(&self, req: u64, reply: KvReply) {
        if let Some(o) = &self.observer {
            let mut o = o.lock();
            if let Some(t0) = o.started.remove(&req) {
                o.ins
                    .apply_latency_us
                    .observe(t0.elapsed().as_micros() as u64);
            }
        }
        let cell = self.cells.lock().remove(&req);
        if let Some(cell) = cell {
            *cell.slot.lock() = Some(reply);
            cell.cv.notify_all();
        }
    }
}

impl std::fmt::Debug for KvWaiters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvWaiters")
            .field("pending", &self.cells.lock().len())
            .finish()
    }
}

/// A client's handle on one in-flight KV operation.
#[derive(Debug)]
pub struct KvPending {
    req: u64,
    cell: Arc<WaitCell>,
    waiters: KvWaiters,
}

impl KvPending {
    /// The origin-local request id.
    pub fn req(&self) -> u64 {
        self.req
    }

    /// Block until the origin site applies the command, or `timeout`
    /// elapses (`None` on timeout — the command may still apply later; the
    /// waiter is deregistered either way).
    pub fn wait(self, timeout: Duration) -> Option<KvReply> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.cell.slot.lock();
        loop {
            if let Some(r) = slot.take() {
                return Some(r);
            }
            if Instant::now() >= deadline {
                drop(slot);
                self.waiters.cells.lock().remove(&self.req);
                if let Some(o) = &self.waiters.observer {
                    o.lock().started.remove(&self.req);
                }
                return None;
            }
            self.cell.cv.wait_until(&mut slot, deadline);
        }
    }
}

/// Observability handles for the KV sink, both optional: absent fields cost
/// one never-taken branch per apply.
#[derive(Default)]
pub struct KvObserve {
    /// Re-emits each apply as a causal `KvApply` trace event.
    pub tracer: Option<ClusterTracer>,
    /// Counts applies into the node's metrics registry.
    pub instruments: Option<KvInstruments>,
}

/// Register the KV store on the builder: one handler bound to `ADeliver`,
/// applying KV-framed payloads in delivery order. A pure sink within the
/// stack — it triggers nothing — so routing patterns stay unchanged.
pub fn register(
    b: &mut StackBuilder,
    pid: ProtocolId,
    ev: &Events,
    state: ProtocolState<KvState>,
    waiters: KvWaiters,
    site: SiteId,
    observe: KvObserve,
) -> HandlerId {
    let KvObserve {
        tracer,
        instruments,
    } = observe;
    let e = ev.adeliver;
    b.bind_with_triggers(e, pid, "kv.on_adeliver", &[], move |ctx, data| {
        let m: &crate::msgs::AbMsg = data.expect(e)?;
        let AbPayload::User(bytes) = &m.payload else {
            return Ok(());
        };
        let Some(cmd) = KvCmd::decode(bytes) else {
            return Ok(());
        };
        let uid = m.uid;
        let req = cmd.req();
        let reply = state.with(ctx, |s| s.apply(uid, cmd));
        if let Some(t) = &tracer {
            t.emit(samoa_core::TraceKind::KvApply {
                site: site.0,
                origin: uid.origin.0,
                op: uid.seq,
            });
        }
        if let Some(ins) = &instruments {
            ins.applies.inc();
        }
        if uid.origin == site {
            waiters.complete(req, reply);
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uid(origin: u16, seq: u64) -> MsgUid {
        MsgUid {
            origin: SiteId(origin),
            seq,
        }
    }

    #[test]
    fn cmd_codec_roundtrips() {
        let cmds = [
            KvCmd::Put {
                req: 7,
                key: Bytes::from_static(b"k"),
                value: Bytes::from_static(b"v"),
            },
            KvCmd::Get {
                req: 8,
                key: Bytes::from_static(b""),
            },
            KvCmd::Cas {
                req: 9,
                key: Bytes::from_static(b"k"),
                expect: None,
                value: Bytes::from_static(b"n"),
            },
            KvCmd::Cas {
                req: 10,
                key: Bytes::from_static(b"k"),
                expect: Some(Bytes::from_static(b"old")),
                value: Bytes::from_static(b"new"),
            },
        ];
        for c in cmds {
            assert_eq!(KvCmd::decode(&c.encode()), Some(c));
        }
    }

    #[test]
    fn non_kv_payloads_are_ignored() {
        assert_eq!(KvCmd::decode(&Bytes::from_static(b"hello")), None);
        assert_eq!(KvCmd::decode(&Bytes::from_static(b"")), None);
        // Truncated KV frame.
        let mut enc = KvCmd::Get {
            req: 1,
            key: Bytes::from_static(b"key"),
        }
        .encode()
        .to_vec();
        enc.pop();
        assert_eq!(KvCmd::decode(&Bytes::from(enc)), None);
        // Trailing garbage.
        let mut enc = KvCmd::Get {
            req: 1,
            key: Bytes::from_static(b"key"),
        }
        .encode()
        .to_vec();
        enc.push(0);
        assert_eq!(KvCmd::decode(&Bytes::from(enc)), None);
    }

    #[test]
    fn state_machine_is_deterministic() {
        let script = [
            KvCmd::Put {
                req: 1,
                key: Bytes::from_static(b"a"),
                value: Bytes::from_static(b"1"),
            },
            KvCmd::Cas {
                req: 2,
                key: Bytes::from_static(b"a"),
                expect: Some(Bytes::from_static(b"1")),
                value: Bytes::from_static(b"2"),
            },
            KvCmd::Cas {
                req: 3,
                key: Bytes::from_static(b"a"),
                expect: Some(Bytes::from_static(b"1")),
                value: Bytes::from_static(b"3"),
            },
            KvCmd::Get {
                req: 4,
                key: Bytes::from_static(b"a"),
            },
        ];
        let mut s1 = KvState::default();
        let mut s2 = KvState::default();
        let r1: Vec<KvReply> = script
            .iter()
            .enumerate()
            .map(|(i, c)| s1.apply(uid(0, i as u64), c.clone()))
            .collect();
        let r2: Vec<KvReply> = script
            .iter()
            .enumerate()
            .map(|(i, c)| s2.apply(uid(0, i as u64), c.clone()))
            .collect();
        assert_eq!(r1, r2);
        assert_eq!(s1.digest(), s2.digest());
        assert!(!r1[2].ok, "stale cas must fail");
        assert_eq!(r1[3].value, Some(Bytes::from_static(b"2")));
        assert_eq!(s1.applied(), 4);
    }

    #[test]
    fn digest_distinguishes_states() {
        let mut a = KvState::default();
        let mut b = KvState::default();
        a.apply(
            uid(0, 0),
            KvCmd::Put {
                req: 1,
                key: Bytes::from_static(b"k"),
                value: Bytes::from_static(b"v1"),
            },
        );
        b.apply(
            uid(0, 0),
            KvCmd::Put {
                req: 1,
                key: Bytes::from_static(b"k"),
                value: Bytes::from_static(b"v2"),
            },
        );
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn waiters_complete_and_timeout() {
        let w = KvWaiters::default();
        let p = w.pending(1);
        w.complete(
            1,
            KvReply {
                ok: true,
                value: None,
            },
        );
        assert!(p.wait(Duration::from_millis(10)).is_some());
        let p2 = w.pending(2);
        assert!(p2.wait(Duration::from_millis(10)).is_none());
        // Completing after timeout is a no-op, not a panic.
        w.complete(
            2,
            KvReply {
                ok: true,
                value: None,
            },
        );
    }
}
