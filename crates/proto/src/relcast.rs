//! `RelCast` — reliable broadcast (paper §3).
//!
//! `bcast` sends a message to every site in the current view via RelComm;
//! on the *first* receipt of a message each site rebroadcasts it before
//! delivering, so the message reaches all sites of the view even if the
//! original sender crashes mid-broadcast.

use samoa_core::prelude::*;
use samoa_net::SiteId;

use crate::events::Events;
use crate::msgs::{CastData, CastMsg, MsgUid, Payload};
use crate::relcomm::RDeliver;
use crate::view::GroupView;

use std::collections::HashSet;

/// The local state of the RelCast microprotocol.
pub struct RelCastState {
    site: SiteId,
    view: GroupView,
    next_seq: u64,
    seen: HashSet<MsgUid>,
}

impl RelCastState {
    /// Fresh state for `site` with the given initial view.
    pub fn new(site: SiteId, view: GroupView) -> Self {
        RelCastState {
            site,
            view,
            next_seq: 0,
            seen: HashSet::new(),
        }
    }

    /// Number of distinct messages seen so far.
    pub fn seen_count(&self) -> usize {
        self.seen.len()
    }

    /// The view RelCast currently believes in.
    pub fn view(&self) -> &GroupView {
        &self.view
    }
}

/// Handler ids of the registered RelCast microprotocol.
#[derive(Debug, Clone, Copy)]
pub struct RelCastHandlers {
    /// `bcast` (bound to `Bcast`).
    pub bcast: HandlerId,
    /// `recv` (bound to `FromRComm`).
    pub recv: HandlerId,
    /// `view_change` (bound to `ViewChange`).
    pub view_change: HandlerId,
}

/// Send `msg` to every other member of `view` through RelComm.
fn fan_out(ctx: &Ctx, ev: &Events, me: SiteId, view: &GroupView, msg: &CastMsg) -> Result<()> {
    for &target in view.members() {
        if target != me {
            ctx.trigger(
                ev.send_out,
                EventData::new((Payload::Cast(msg.clone()), target)),
            )?;
        }
    }
    Ok(())
}

/// Register RelCast on the builder. Returns its handler ids.
pub fn register(
    b: &mut StackBuilder,
    pid: ProtocolId,
    ev: &Events,
    state: ProtocolState<RelCastState>,
) -> RelCastHandlers {
    let events = *ev;

    // Trigger metadata for the static analyzer: both `bcast` and `recv`
    // fan `SendOut` out once per peer (a view-dependent count the static
    // declaration approximates with one occurrence) and deliver locally.
    let bcast = {
        let state = state.clone();
        let e = ev.bcast;
        let triggers = [ev.send_out, ev.deliver_out];
        b.bind_with_triggers(e, pid, "relcast.bcast", &triggers, move |ctx, data| {
            let cast_data: &CastData = data.expect(e)?;
            let (me, view, msg) = state.with(ctx, |s| {
                s.next_seq += 1;
                let msg = CastMsg {
                    uid: MsgUid {
                        origin: s.site,
                        seq: s.next_seq,
                    },
                    data: cast_data.clone(),
                };
                s.seen.insert(msg.uid);
                (s.site, s.view.clone(), msg)
            });
            fan_out(ctx, &events, me, &view, &msg)?;
            // Deliver locally too — the sender is part of the group.
            ctx.async_trigger_all(events.deliver_out, EventData::new(msg))?;
            Ok(())
        })
    };

    let recv = {
        let state = state.clone();
        let e = ev.from_rcomm;
        let triggers = [ev.send_out, ev.deliver_out];
        b.bind_with_triggers(e, pid, "relcast.recv", &triggers, move |ctx, data| {
            let d: &RDeliver = data.expect(e)?;
            let Payload::Cast(msg) = &d.payload else {
                return Ok(()); // consensus traffic; not ours
            };
            let rebroadcast = state.with(ctx, |s| {
                if s.seen.insert(msg.uid) {
                    Some((s.site, s.view.clone()))
                } else {
                    None
                }
            });
            if let Some((me, view)) = rebroadcast {
                // First receipt: rebroadcast, then deliver (paper's recv).
                fan_out(ctx, &events, me, &view, msg)?;
                ctx.async_trigger_all(events.deliver_out, EventData::new(msg.clone()))?;
            }
            Ok(())
        })
    };

    let view_change = {
        let state = state.clone();
        let e = ev.view_change;
        b.bind_with_triggers(e, pid, "relcast.view_change", &[], move |ctx, data| {
            let v: &GroupView = data.expect(e)?;
            state.with(ctx, |s| s.view = v.clone());
            Ok(())
        })
    };

    RelCastHandlers {
        bcast,
        recv,
        view_change,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_tracks_seen() {
        let mut s = RelCastState::new(SiteId(1), GroupView::of_first(2));
        assert_eq!(s.seen_count(), 0);
        s.seen.insert(MsgUid {
            origin: SiteId(0),
            seq: 1,
        });
        assert_eq!(s.seen_count(), 1);
        assert_eq!(s.view().len(), 2);
    }
}
