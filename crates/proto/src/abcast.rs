//! Atomic broadcast — total-order broadcast via repeated consensus on
//! message batches (the classic Chandra–Toueg reduction; this is the
//! protocol the paper's §7 evaluation exercises).
//!
//! Requests are disseminated with RelCast; each site accumulates undelivered
//! requests in `pending` and proposes the pending set for the next undecided
//! consensus instance. Decisions arrive as RelCast floods
//! (`CastData::Decide`), are buffered per instance, and are delivered in
//! instance order — messages within a batch in `uid` order — yielding the
//! same total order at every site.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::time::Instant;

use samoa_core::prelude::*;
use samoa_core::TraceKind;
use samoa_net::SiteId;

use crate::events::Events;
use crate::msgs::{AbMsg, AbPayload, CastData, CastMsg, MsgUid, Payload, SyncMsg};
use crate::observe::{AbcastInstruments, ClusterTracer};
use crate::relcomm::RDeliver;
use crate::view::GroupView;

/// The local state of the atomic-broadcast microprotocol.
pub struct AbcastState {
    site: SiteId,
    view: GroupView,
    next_seq: u64,
    /// Disseminated but not yet delivered requests.
    pending: BTreeMap<MsgUid, AbMsg>,
    /// Uids already delivered (for duplicate suppression).
    delivered: HashSet<MsgUid>,
    /// Next undecided consensus instance.
    next_inst: u64,
    /// Out-of-order decisions buffered until their turn.
    decides: BTreeMap<u64, Vec<AbMsg>>,
    /// The instance we have already proposed for (avoid re-proposing).
    proposed_for: Option<u64>,
    /// Total messages delivered (diagnostics).
    pub delivered_count: u64,
    /// When false, [`note_decide`](AbcastState::note_decide) skips the
    /// instance-order buffering and delivers every arriving decision
    /// immediately — an **injected bug** for the fault explorer
    /// (`samoa-check`): a reordered `Decide` flood then produces divergent
    /// delivery prefixes across sites. Leave true everywhere else.
    pub order_enabled: bool,
    /// Submit times of locally originated requests, for delivery-lag
    /// accounting (populated only when a tracer or instruments are
    /// installed).
    submit_at: HashMap<u64, Instant>,
    /// Cluster tracer, when the node is traced (submit/deliver spans).
    pub tracer: Option<ClusterTracer>,
    /// Metric instruments, when a registry is installed.
    pub instruments: Option<AbcastInstruments>,
}

impl AbcastState {
    /// Fresh state for `site` with the given initial view.
    pub fn new(site: SiteId, view: GroupView) -> Self {
        AbcastState {
            site,
            view,
            next_seq: 0,
            pending: BTreeMap::new(),
            delivered: HashSet::new(),
            next_inst: 0,
            decides: BTreeMap::new(),
            proposed_for: None,
            delivered_count: 0,
            order_enabled: true,
            submit_at: HashMap::new(),
            tracer: None,
            instruments: None,
        }
    }

    /// Number of requests awaiting ordering.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Next undecided instance number.
    pub fn next_instance(&self) -> u64 {
        self.next_inst
    }

    /// Create a new request from this site. `(site, seq)` is the cluster
    /// operation id every downstream causal-context event refers back to.
    fn new_request(&mut self, payload: AbPayload) -> AbMsg {
        self.next_seq += 1;
        if self.tracer.is_some() || self.instruments.is_some() {
            self.submit_at.insert(self.next_seq, Instant::now());
        }
        if let Some(t) = &self.tracer {
            t.emit(TraceKind::ClientSubmit {
                site: self.site.0,
                op: self.next_seq,
            });
        }
        AbMsg {
            uid: MsgUid {
                origin: self.site,
                seq: self.next_seq,
            },
            payload,
        }
    }

    /// Emission-only accounting for a batch of just-delivered messages:
    /// AbDeliver trace spans and delivered/lag instruments. A no-op (two
    /// never-taken branches) when nothing is installed.
    fn observe_delivered(&mut self, out: &[AbMsg]) {
        if self.tracer.is_none() && self.instruments.is_none() {
            return;
        }
        for m in out {
            let lag = if m.uid.origin == self.site {
                self.submit_at.remove(&m.uid.seq).map(|t0| t0.elapsed())
            } else {
                None
            };
            if let Some(t) = &self.tracer {
                t.emit(TraceKind::AbDeliver {
                    site: self.site.0,
                    origin: m.uid.origin.0,
                    op: m.uid.seq,
                    lag_ns: lag.map_or(0, |d| d.as_nanos() as u64),
                });
            }
            if let Some(ins) = &self.instruments {
                ins.delivered.inc();
                if let Some(d) = lag {
                    ins.lag_us.observe(d.as_micros() as u64);
                }
            }
        }
    }

    /// Record a disseminated request; returns true if it is new and
    /// undelivered.
    fn note_request(&mut self, m: &AbMsg) -> bool {
        if self.delivered.contains(&m.uid) || self.pending.contains_key(&m.uid) {
            return false;
        }
        self.pending.insert(m.uid, m.clone());
        true
    }

    /// Should we propose now? Returns the instance and value if so.
    fn proposal(&mut self) -> Option<(u64, Vec<AbMsg>)> {
        if self.pending.is_empty() || self.proposed_for == Some(self.next_inst) {
            return None;
        }
        self.proposed_for = Some(self.next_inst);
        Some((self.next_inst, self.pending.values().cloned().collect()))
    }

    /// Build the state-transfer snapshot for a joiner.
    fn snapshot(&self) -> SyncMsg {
        // Sorted so the encoded snapshot is a pure function of the state:
        // the delivered set is hashed, and hooked exploration needs
        // byte-identical wire traffic across replays.
        let mut delivered: Vec<MsgUid> = self.delivered.iter().copied().collect();
        delivered.sort_unstable();
        SyncMsg {
            next_inst: self.next_inst,
            delivered,
            view_id: self.view.id,
            members: self.view.members().to_vec(),
        }
    }

    /// Adopt a state-transfer snapshot if it is ahead of us; returns true
    /// when adopted.
    fn apply_sync(&mut self, sync: &SyncMsg) -> bool {
        if sync.next_inst <= self.next_inst {
            return false;
        }
        self.next_inst = sync.next_inst;
        self.delivered.extend(sync.delivered.iter().copied());
        let lim = self.next_inst;
        self.decides.retain(|&k, _| k >= lim);
        let delivered = &self.delivered;
        self.pending.retain(|uid, _| !delivered.contains(uid));
        self.proposed_for = None;
        true
    }

    /// Buffer a decision; returns batches now deliverable, in order.
    fn note_decide(&mut self, inst: u64, batch: Vec<AbMsg>) -> Vec<AbMsg> {
        if !self.order_enabled {
            // Injected bug (see `order_enabled`): deliver in arrival order.
            self.next_inst = self.next_inst.max(inst + 1);
            let mut batch = batch;
            batch.sort_by_key(|m| m.uid);
            let mut out = Vec::new();
            for m in batch {
                if self.delivered.insert(m.uid) {
                    self.pending.remove(&m.uid);
                    self.delivered_count += 1;
                    out.push(m);
                }
            }
            self.observe_delivered(&out);
            return out;
        }
        if inst >= self.next_inst {
            self.decides.entry(inst).or_insert(batch);
        }
        let mut out = Vec::new();
        while let Some(batch) = self.decides.remove(&self.next_inst) {
            self.next_inst += 1;
            let mut batch = batch;
            batch.sort_by_key(|m| m.uid);
            for m in batch {
                if self.delivered.insert(m.uid) {
                    self.pending.remove(&m.uid);
                    self.delivered_count += 1;
                    out.push(m);
                }
            }
        }
        self.observe_delivered(&out);
        out
    }
}

/// Handler ids of the registered atomic-broadcast microprotocol.
#[derive(Debug, Clone, Copy)]
pub struct AbcastHandlers {
    /// `request` (bound to `ABcast`).
    pub request: HandlerId,
    /// `on_deliver` (bound to `DeliverOut`).
    pub on_deliver: HandlerId,
    /// `on_sync` (bound to `FromRComm`): join-time state transfer.
    pub on_sync: HandlerId,
    /// `view_change` (bound to `ViewChange`).
    pub view_change: HandlerId,
}

/// Register the atomic-broadcast microprotocol on the builder.
pub fn register(
    b: &mut StackBuilder,
    pid: ProtocolId,
    ev: &Events,
    state: ProtocolState<AbcastState>,
) -> AbcastHandlers {
    let events = *ev;

    let request = {
        let state = state.clone();
        let e = ev.abcast;
        b.bind_with_triggers(e, pid, "abcast.request", &[ev.bcast], move |ctx, data| {
            let payload: &AbPayload = data.expect(e)?;
            let m = state.with(ctx, |s| s.new_request(payload.clone()));
            // Disseminate; our own copy comes back via local DeliverOut.
            ctx.trigger(events.bcast, EventData::new(CastData::AbRequest(m)))
        })
    };

    let on_deliver = {
        let state = state.clone();
        let e = ev.deliver_out;
        // A `Decide` can release a whole backlog of `ADeliver`s; the static
        // declaration lists the event once (the count is payload-dependent).
        let triggers = [ev.adeliver, ev.cons_gc, ev.cons_propose];
        b.bind_with_triggers(e, pid, "abcast.on_deliver", &triggers, move |ctx, data| {
            let msg: &CastMsg = data.expect(e)?;
            match &msg.data {
                CastData::User(_) => Ok(()), // plain reliable broadcast; not ours
                CastData::AbRequest(m) => {
                    let proposal = state.with(ctx, |s| {
                        s.note_request(m);
                        s.proposal()
                    });
                    if let Some((inst, value)) = proposal {
                        ctx.trigger(events.cons_propose, EventData::new((inst, value)))?;
                    }
                    Ok(())
                }
                CastData::Decide { inst, batch } => {
                    let (deliverable, gc_below, proposal) = state.with(ctx, |s| {
                        let out = s.note_decide(*inst, batch.clone());
                        (out, s.next_inst, s.proposal())
                    });
                    // Deliver in total order — synchronously, so the order
                    // is preserved end to end.
                    for m in deliverable {
                        ctx.trigger_all(events.adeliver, EventData::new(m))?;
                    }
                    ctx.trigger(events.cons_gc, EventData::new(gc_below))?;
                    if let Some((inst, value)) = proposal {
                        ctx.trigger(events.cons_propose, EventData::new((inst, value)))?;
                    }
                    Ok(())
                }
            }
        })
    };

    let on_sync = {
        let state = state.clone();
        let e = ev.from_rcomm;
        let triggers = [ev.view_sync, ev.cons_gc, ev.cons_propose];
        b.bind_with_triggers(e, pid, "abcast.on_sync", &triggers, move |ctx, data| {
            let d: &RDeliver = data.expect(e)?;
            let Payload::Sync(sync) = &d.payload else {
                return Ok(()); // not state transfer; not ours
            };
            let (adopted, proposal) = state.with(ctx, |s| {
                let adopted = s.apply_sync(sync);
                (adopted, s.proposal())
            });
            if adopted {
                // The joiner cannot learn the view through ADeliver (it
                // missed the prefix); membership installs it directly.
                ctx.trigger(events.view_sync, EventData::new(sync.clone()))?;
                ctx.trigger(events.cons_gc, EventData::new(sync.next_inst))?;
            }
            if let Some((inst, value)) = proposal {
                ctx.trigger(events.cons_propose, EventData::new((inst, value)))?;
            }
            Ok(())
        })
    };

    let view_change = {
        let state = state.clone();
        let e = ev.view_change;
        b.bind_with_triggers(
            e,
            pid,
            "abcast.view_change",
            &[ev.send_out],
            move |ctx, data| {
                let v: &GroupView = data.expect(e)?;
                // Detect joiners: members of the new view absent from the old.
                let (me, joiners, snapshot) = state.with(ctx, |s| {
                    let joiners: Vec<_> = v
                        .members()
                        .iter()
                        .copied()
                        .filter(|m| !s.view.contains(*m))
                        .collect();
                    s.view = v.clone();
                    let snap = s.snapshot();
                    (s.site, joiners, snap)
                });
                // Every incumbent sends the joiner the ordering state —
                // redundant but loss-tolerant; adoption is idempotent.
                for j in joiners {
                    if j != me {
                        ctx.trigger(
                            events.send_out,
                            EventData::new((Payload::Sync(snapshot.clone()), j)),
                        )?;
                    }
                }
                Ok(())
            },
        )
    };

    AbcastHandlers {
        request,
        on_deliver,
        on_sync,
        view_change,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn st() -> AbcastState {
        AbcastState::new(SiteId(0), GroupView::of_first(3))
    }

    fn m(origin: u16, seq: u64) -> AbMsg {
        AbMsg {
            uid: MsgUid {
                origin: SiteId(origin),
                seq,
            },
            payload: AbPayload::User(Bytes::from_static(b"x")),
        }
    }

    #[test]
    fn requests_accumulate_and_propose_once() {
        let mut s = st();
        assert!(s.note_request(&m(1, 1)));
        assert!(!s.note_request(&m(1, 1)), "duplicate accepted");
        assert!(s.note_request(&m(2, 1)));
        let (inst, v) = s.proposal().unwrap();
        assert_eq!(inst, 0);
        assert_eq!(v.len(), 2);
        assert!(s.proposal().is_none(), "re-proposed same instance");
    }

    #[test]
    fn decide_delivers_in_uid_order_and_unblocks_next() {
        let mut s = st();
        s.note_request(&m(2, 1));
        s.note_request(&m(1, 1));
        let out = s.note_decide(0, vec![m(2, 1), m(1, 1)]);
        assert_eq!(
            out.iter().map(|x| x.uid).collect::<Vec<_>>(),
            vec![m(1, 1).uid, m(2, 1).uid]
        );
        assert_eq!(s.pending_count(), 0);
        assert_eq!(s.next_instance(), 1);
    }

    #[test]
    fn out_of_order_decides_buffered() {
        let mut s = st();
        let out = s.note_decide(1, vec![m(1, 2)]);
        assert!(out.is_empty(), "delivered instance 1 before 0");
        let out = s.note_decide(0, vec![m(1, 1)]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].uid, m(1, 1).uid);
        assert_eq!(out[1].uid, m(1, 2).uid);
        assert_eq!(s.next_instance(), 2);
    }

    #[test]
    fn duplicate_decide_ignored() {
        let mut s = st();
        let out = s.note_decide(0, vec![m(1, 1)]);
        assert_eq!(out.len(), 1);
        let out = s.note_decide(0, vec![m(1, 1)]);
        assert!(out.is_empty());
        assert_eq!(s.delivered_count, 1);
    }

    #[test]
    fn message_in_two_batches_delivered_once() {
        let mut s = st();
        let out = s.note_decide(0, vec![m(1, 1), m(2, 1)]);
        assert_eq!(out.len(), 2);
        let out = s.note_decide(1, vec![m(1, 1), m(3, 1)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].uid.origin, SiteId(3));
    }

    #[test]
    fn proposal_resumes_after_decide_with_leftovers() {
        let mut s = st();
        s.note_request(&m(1, 1));
        s.note_request(&m(2, 1));
        let _ = s.proposal().unwrap();
        // Only m(1,1) got ordered in instance 0.
        let _ = s.note_decide(0, vec![m(1, 1)]);
        let (inst, v) = s.proposal().unwrap();
        assert_eq!(inst, 1);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].uid.origin, SiteId(2));
    }

    #[test]
    fn new_request_uids_are_unique_and_ordered() {
        let mut s = st();
        let a = s.new_request(AbPayload::User(Bytes::new()));
        let b = s.new_request(AbPayload::User(Bytes::new()));
        assert!(a.uid < b.uid);
        assert_eq!(a.uid.origin, SiteId(0));
    }
}
