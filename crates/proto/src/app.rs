//! The Application Module sink: a microprotocol that records what the stack
//! delivered, so tests, examples, and benches can observe protocol-level
//! outcomes (reliable-broadcast deliveries, the atomic-broadcast total
//! order, and installed views).

use bytes::Bytes;
use samoa_core::prelude::*;
use samoa_net::SiteId;

use crate::events::Events;
use crate::msgs::{AbPayload, CastData, CastMsg};
use crate::view::GroupView;

/// Everything the application observed, in arrival order.
#[derive(Debug, Default)]
pub struct AppState {
    /// Reliable-broadcast deliveries `(origin, payload)`; unordered across
    /// sites (RelCast gives reliability, not order).
    pub rb_delivered: Vec<(SiteId, Bytes)>,
    /// Atomic-broadcast deliveries `(origin, payload)`; the same sequence
    /// on every correct site.
    pub ab_delivered: Vec<(SiteId, Bytes)>,
    /// Views installed, in order.
    pub views: Vec<GroupView>,
}

/// Handler ids of the registered application sink.
#[derive(Debug, Clone, Copy)]
pub struct AppHandlers {
    /// `on_deliver` (bound to `DeliverOut`).
    pub on_deliver: HandlerId,
    /// `on_adeliver` (bound to `ADeliver`).
    pub on_adeliver: HandlerId,
    /// `on_view` (bound to `ViewChange`).
    pub on_view: HandlerId,
}

/// Register the application sink on the builder.
pub fn register(
    b: &mut StackBuilder,
    pid: ProtocolId,
    ev: &Events,
    state: ProtocolState<AppState>,
) -> AppHandlers {
    let on_deliver = {
        let state = state.clone();
        let e = ev.deliver_out;
        // The application is a pure sink: no handler triggers anything.
        b.bind_with_triggers(e, pid, "app.on_deliver", &[], move |ctx, data| {
            let msg: &CastMsg = data.expect(e)?;
            if let CastData::User(bytes) = &msg.data {
                let (origin, bytes) = (msg.uid.origin, bytes.clone());
                state.with(ctx, |s| s.rb_delivered.push((origin, bytes)));
            }
            Ok(())
        })
    };

    let on_adeliver = {
        let state = state.clone();
        let e = ev.adeliver;
        b.bind_with_triggers(e, pid, "app.on_adeliver", &[], move |ctx, data| {
            let m: &crate::msgs::AbMsg = data.expect(e)?;
            if let AbPayload::User(bytes) = &m.payload {
                let (origin, bytes) = (m.uid.origin, bytes.clone());
                state.with(ctx, |s| s.ab_delivered.push((origin, bytes)));
            }
            Ok(())
        })
    };

    let on_view = {
        let state = state.clone();
        let e = ev.view_change;
        b.bind_with_triggers(e, pid, "app.on_view", &[], move |ctx, data| {
            let v: &GroupView = data.expect(e)?;
            state.with(ctx, |s| s.views.push(v.clone()));
            Ok(())
        })
    };

    AppHandlers {
        on_deliver,
        on_adeliver,
        on_view,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_state_is_empty() {
        let s = AppState::default();
        assert!(s.rb_delivered.is_empty());
        assert!(s.ab_delivered.is_empty());
        assert!(s.views.is_empty());
    }
}
