//! The event types shared by the group-communication stack.
//!
//! These mirror the paper's §3 event names (`SendOut`, `FromRComm`,
//! `Bcast`, `DeliverOut`, `ABcast`, `ViewChange`, …) plus the external
//! events injected by the Network Module and the timer module.

use samoa_core::prelude::*;

/// All event types of one site's stack, declared once at startup.
#[derive(Debug, Clone, Copy)]
pub struct Events {
    /// Raw RelComm data frame arrived from the network (external).
    pub rc_data: EventType,
    /// Raw RelComm ack arrived from the network (external).
    pub rc_ack: EventType,
    /// Reliable point-to-point send request: `(Payload, target)`.
    pub send_out: EventType,
    /// RelComm delivered a payload reliably: [`RDeliver`](crate::relcomm::RDeliver).
    pub from_rcomm: EventType,
    /// Reliable-broadcast request: payload [`CastData`](crate::msgs::CastData).
    pub bcast: EventType,
    /// Reliable-broadcast delivery: payload [`CastMsg`](crate::msgs::CastMsg).
    pub deliver_out: EventType,
    /// Atomic-broadcast request: payload [`AbPayload`](crate::msgs::AbPayload).
    pub abcast: EventType,
    /// Atomic-broadcast delivery (totally ordered): payload [`AbMsg`](crate::msgs::AbMsg).
    pub adeliver: EventType,
    /// A new view is installed: payload [`GroupView`](crate::view::GroupView).
    pub view_change: EventType,
    /// Join/leave request: payload `(ViewOp, SiteId)` (external).
    pub join_leave: EventType,
    /// Failure-detector timer tick (external).
    pub fd_tick: EventType,
    /// A heartbeat arrived: payload `SiteId` (external).
    pub fd_beat: EventType,
    /// Retransmission timer tick (external).
    pub retransmit_tick: EventType,
    /// The failure detector suspects a site: payload `SiteId`.
    pub suspect: EventType,
    /// Ask consensus to propose: payload `(u64 instance, Vec<AbMsg>)`.
    pub cons_propose: EventType,
    /// Instances below the payload `u64` are decided; consensus may GC.
    pub cons_gc: EventType,
    /// Join-time state transfer carried a view: payload
    /// [`SyncMsg`](crate::msgs::SyncMsg); membership installs it directly.
    pub view_sync: EventType,
}

impl Events {
    /// Declare every event type on the builder.
    pub fn declare(b: &mut StackBuilder) -> Events {
        Events {
            rc_data: b.event("RcData"),
            rc_ack: b.event("RcAck"),
            send_out: b.event("SendOut"),
            from_rcomm: b.event("FromRComm"),
            bcast: b.event("Bcast"),
            deliver_out: b.event("DeliverOut"),
            abcast: b.event("ABcast"),
            adeliver: b.event("ADeliver"),
            view_change: b.event("ViewChange"),
            join_leave: b.event("JoinLeave"),
            fd_tick: b.event("FdTick"),
            fd_beat: b.event("FdBeat"),
            retransmit_tick: b.event("RetransmitTick"),
            suspect: b.event("Suspect"),
            cons_propose: b.event("ConsPropose"),
            cons_gc: b.event("ConsGc"),
            view_sync: b.event("ViewSync"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_registers_distinct_events() {
        let mut b = StackBuilder::new();
        let ev = Events::declare(&mut b);
        let s = b.build();
        assert_eq!(s.event_count(), 17);
        assert_eq!(s.event_name(ev.send_out), "SendOut");
        assert_eq!(s.event_name(ev.view_change), "ViewChange");
        assert_ne!(ev.rc_data, ev.rc_ack);
    }
}
