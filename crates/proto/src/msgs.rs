//! Wire messages of the group-communication stack, with a hand-rolled
//! binary codec (no external serialisation dependency; see DESIGN.md).
//!
//! Layering, bottom-up:
//!
//! * [`Wire`] — what actually crosses the simulated network: RelComm data
//!   frames and acks, plus raw failure-detector heartbeats.
//! * [`Payload`] — what RelComm delivers reliably: RelCast traffic
//!   ([`CastMsg`]) or consensus point-to-point messages ([`ConsMsg`]).
//! * [`CastMsg`] — what RelCast floods: user broadcasts, atomic-broadcast
//!   requests, or consensus decisions (decisions ride RelCast so every site
//!   learns them even if the coordinator crashes mid-broadcast).
//! * [`AbMsg`] — what atomic broadcast orders: user payloads or membership
//!   view operations.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use samoa_net::SiteId;

use crate::view::ViewOp;

/// Unique id of a broadcast message: originating site plus a per-origin
/// sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MsgUid {
    /// The site that created the message.
    pub origin: SiteId,
    /// The origin's sequence number.
    pub seq: u64,
}

/// A payload ordered by atomic broadcast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbPayload {
    /// Application data.
    User(Bytes),
    /// A membership view operation.
    ViewOp(ViewOp, SiteId),
}

/// One atomic-broadcast message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbMsg {
    /// Unique id (also the tie-breaker for in-batch delivery order).
    pub uid: MsgUid,
    /// The payload to order.
    pub payload: AbPayload,
}

/// The payload of a RelCast message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CastData {
    /// Application-level reliable broadcast.
    User(Bytes),
    /// Dissemination of an atomic-broadcast request.
    AbRequest(AbMsg),
    /// A consensus decision: instance number plus the decided batch.
    Decide {
        /// Consensus instance.
        inst: u64,
        /// The decided batch of messages, to deliver in `uid` order.
        batch: Vec<AbMsg>,
    },
}

/// One RelCast message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CastMsg {
    /// Unique id used for duplicate suppression across rebroadcasts.
    pub uid: MsgUid,
    /// The flooded payload.
    pub data: CastData,
}

/// A consensus point-to-point message (rotating-coordinator consensus with
/// a Paxos-style read phase; see `consensus.rs`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConsMsg {
    /// Ask `round`'s coordinator to start (sent by participants that
    /// suspect the previous coordinator or hold undecided proposals). The
    /// kicker's estimate rides along so the coordinator always has a
    /// non-empty value to work with.
    Kick {
        /// Consensus instance.
        inst: u64,
        /// Round to start.
        round: u64,
        /// The kicker's current estimate.
        est: Vec<AbMsg>,
        /// Round in which `est` was adopted (0 = never).
        est_round: u64,
    },
    /// Coordinator's read phase: collect estimates.
    Collect {
        /// Consensus instance.
        inst: u64,
        /// Round being read.
        round: u64,
    },
    /// Participant's reply to `Collect`: its current estimate and the round
    /// in which that estimate was adopted (0 = never adopted).
    Estimate {
        /// Consensus instance.
        inst: u64,
        /// Round being replied to.
        round: u64,
        /// The participant's estimate.
        est: Vec<AbMsg>,
        /// Round in which `est` was adopted.
        est_round: u64,
    },
    /// Coordinator's write phase: adopt this value.
    Propose {
        /// Consensus instance.
        inst: u64,
        /// Round of the proposal.
        round: u64,
        /// Proposed value.
        value: Vec<AbMsg>,
    },
    /// Participant's acknowledgement of a proposal.
    Ack {
        /// Consensus instance.
        inst: u64,
        /// Acknowledged round.
        round: u64,
    },
}

/// Ordering-state snapshot sent to a freshly joined site so it can
/// participate in atomic broadcast from the current instance onward
/// (simplified view-synchronous state transfer: the joiner receives the
/// *ordering* state, not the past message history).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncMsg {
    /// The next undecided consensus instance.
    pub next_inst: u64,
    /// Uids already delivered (so re-flooded requests are not re-ordered).
    pub delivered: Vec<MsgUid>,
    /// The sender's current view (the joiner installs it directly — it
    /// cannot learn it through ADeliver, whose prefix it missed).
    pub view_id: u64,
    /// Members of that view.
    pub members: Vec<SiteId>,
}

/// What RelComm delivers to upper microprotocols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// RelCast traffic.
    Cast(CastMsg),
    /// Consensus point-to-point traffic.
    Cons(ConsMsg),
    /// Join-time state transfer.
    Sync(SyncMsg),
}

impl Payload {
    /// The uid of the cluster operation this payload is causally downstream
    /// of, when one is identifiable: the carried request for casts, the
    /// first batch element for consensus values and decisions. `None` for
    /// pure control traffic (collect/ack/sync), which serves no single
    /// operation. Deterministic in the payload alone, so attaching contexts
    /// derived from it preserves schedule purity.
    pub fn root_uid(&self) -> Option<MsgUid> {
        match self {
            Payload::Cast(c) => match &c.data {
                CastData::User(_) => Some(c.uid),
                CastData::AbRequest(ab) => Some(ab.uid),
                CastData::Decide { batch, .. } => batch.first().map(|m| m.uid).or(Some(c.uid)),
            },
            Payload::Cons(m) => match m {
                ConsMsg::Kick { est, .. } | ConsMsg::Estimate { est, .. } => {
                    est.first().map(|m| m.uid)
                }
                ConsMsg::Propose { value, .. } => value.first().map(|m| m.uid),
                ConsMsg::Collect { .. } | ConsMsg::Ack { .. } => None,
            },
            Payload::Sync(_) => None,
        }
    }
}

/// Compact causal context carried on RelComm data frames: the identity of
/// the cluster operation this frame is causally downstream of, plus a hop
/// counter. Derived deterministically from the payload's root uid at send
/// time, re-derived hop-incremented on forward, and re-emitted into the
/// receiving node's trace sink — the mechanism that stitches one KV `put`
/// into a single cross-site causal tree in the Perfetto exporter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// The site that originated the operation.
    pub origin: SiteId,
    /// The operation id at the origin (the abcast uid sequence).
    pub op: u64,
    /// Causal hops so far (0 = first transmission from the origin).
    pub hop: u8,
}

/// A datagram on the simulated network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Wire {
    /// RelComm data frame: per-destination sequence number plus payload.
    Data {
        /// RelComm sequence number (per sender→receiver channel).
        seq: u64,
        /// Causal context of the operation the payload serves, when known.
        ctx: Option<TraceCtx>,
        /// The reliable payload.
        payload: Payload,
    },
    /// RelComm acknowledgement of `seq`.
    Ack {
        /// The acknowledged sequence number.
        seq: u64,
    },
    /// Raw failure-detector heartbeat (bypasses RelComm).
    Heartbeat,
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

/// Encoding/decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Ran out of bytes.
    Truncated,
    /// Unknown enum tag.
    BadTag(u8),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated message"),
            CodecError::BadTag(t) => write!(f, "unknown tag {t}"),
        }
    }
}

impl std::error::Error for CodecError {}

type DecResult<T> = Result<T, CodecError>;

fn need(buf: &impl Buf, n: usize) -> DecResult<()> {
    if buf.remaining() < n {
        Err(CodecError::Truncated)
    } else {
        Ok(())
    }
}

fn put_bytes(out: &mut BytesMut, b: &Bytes) {
    out.put_u32_le(b.len() as u32);
    out.put_slice(b);
}

fn get_bytes(buf: &mut Bytes) -> DecResult<Bytes> {
    need(buf, 4)?;
    let len = buf.get_u32_le() as usize;
    need(buf, len)?;
    Ok(buf.split_to(len))
}

fn put_uid(out: &mut BytesMut, uid: MsgUid) {
    out.put_u16_le(uid.origin.0);
    out.put_u64_le(uid.seq);
}

fn get_uid(buf: &mut Bytes) -> DecResult<MsgUid> {
    need(buf, 10)?;
    Ok(MsgUid {
        origin: SiteId(buf.get_u16_le()),
        seq: buf.get_u64_le(),
    })
}

fn put_ab(out: &mut BytesMut, m: &AbMsg) {
    put_uid(out, m.uid);
    match &m.payload {
        AbPayload::User(b) => {
            out.put_u8(0);
            put_bytes(out, b);
        }
        AbPayload::ViewOp(op, site) => {
            out.put_u8(1);
            out.put_u8(match op {
                ViewOp::Join => 0,
                ViewOp::Leave => 1,
            });
            out.put_u16_le(site.0);
        }
    }
}

fn get_ab(buf: &mut Bytes) -> DecResult<AbMsg> {
    let uid = get_uid(buf)?;
    need(buf, 1)?;
    let payload = match buf.get_u8() {
        0 => AbPayload::User(get_bytes(buf)?),
        1 => {
            need(buf, 3)?;
            let op = match buf.get_u8() {
                0 => ViewOp::Join,
                1 => ViewOp::Leave,
                t => return Err(CodecError::BadTag(t)),
            };
            AbPayload::ViewOp(op, SiteId(buf.get_u16_le()))
        }
        t => return Err(CodecError::BadTag(t)),
    };
    Ok(AbMsg { uid, payload })
}

fn put_batch(out: &mut BytesMut, batch: &[AbMsg]) {
    out.put_u32_le(batch.len() as u32);
    for m in batch {
        put_ab(out, m);
    }
}

fn get_batch(buf: &mut Bytes) -> DecResult<Vec<AbMsg>> {
    need(buf, 4)?;
    let n = buf.get_u32_le() as usize;
    // Sanity bound: each AbMsg is at least 11 bytes.
    if n > buf.remaining() / 11 + 1 {
        return Err(CodecError::Truncated);
    }
    (0..n).map(|_| get_ab(buf)).collect()
}

fn put_cast(out: &mut BytesMut, m: &CastMsg) {
    put_uid(out, m.uid);
    match &m.data {
        CastData::User(b) => {
            out.put_u8(0);
            put_bytes(out, b);
        }
        CastData::AbRequest(ab) => {
            out.put_u8(1);
            put_ab(out, ab);
        }
        CastData::Decide { inst, batch } => {
            out.put_u8(2);
            out.put_u64_le(*inst);
            put_batch(out, batch);
        }
    }
}

fn get_cast(buf: &mut Bytes) -> DecResult<CastMsg> {
    let uid = get_uid(buf)?;
    need(buf, 1)?;
    let data = match buf.get_u8() {
        0 => CastData::User(get_bytes(buf)?),
        1 => CastData::AbRequest(get_ab(buf)?),
        2 => {
            need(buf, 8)?;
            let inst = buf.get_u64_le();
            CastData::Decide {
                inst,
                batch: get_batch(buf)?,
            }
        }
        t => return Err(CodecError::BadTag(t)),
    };
    Ok(CastMsg { uid, data })
}

fn put_cons(out: &mut BytesMut, m: &ConsMsg) {
    match m {
        ConsMsg::Kick {
            inst,
            round,
            est,
            est_round,
        } => {
            out.put_u8(0);
            out.put_u64_le(*inst);
            out.put_u64_le(*round);
            out.put_u64_le(*est_round);
            put_batch(out, est);
        }
        ConsMsg::Collect { inst, round } => {
            out.put_u8(1);
            out.put_u64_le(*inst);
            out.put_u64_le(*round);
        }
        ConsMsg::Estimate {
            inst,
            round,
            est,
            est_round,
        } => {
            out.put_u8(2);
            out.put_u64_le(*inst);
            out.put_u64_le(*round);
            out.put_u64_le(*est_round);
            put_batch(out, est);
        }
        ConsMsg::Propose { inst, round, value } => {
            out.put_u8(3);
            out.put_u64_le(*inst);
            out.put_u64_le(*round);
            put_batch(out, value);
        }
        ConsMsg::Ack { inst, round } => {
            out.put_u8(4);
            out.put_u64_le(*inst);
            out.put_u64_le(*round);
        }
    }
}

fn get_cons(buf: &mut Bytes) -> DecResult<ConsMsg> {
    need(buf, 1)?;
    let tag = buf.get_u8();
    need(buf, 16)?;
    let inst = buf.get_u64_le();
    let round = buf.get_u64_le();
    Ok(match tag {
        0 => {
            need(buf, 8)?;
            let est_round = buf.get_u64_le();
            ConsMsg::Kick {
                inst,
                round,
                est: get_batch(buf)?,
                est_round,
            }
        }
        1 => ConsMsg::Collect { inst, round },
        2 => {
            need(buf, 8)?;
            let est_round = buf.get_u64_le();
            ConsMsg::Estimate {
                inst,
                round,
                est: get_batch(buf)?,
                est_round,
            }
        }
        3 => ConsMsg::Propose {
            inst,
            round,
            value: get_batch(buf)?,
        },
        4 => ConsMsg::Ack { inst, round },
        t => return Err(CodecError::BadTag(t)),
    })
}

fn put_sync(out: &mut BytesMut, s: &SyncMsg) {
    out.put_u64_le(s.next_inst);
    out.put_u64_le(s.view_id);
    out.put_u32_le(s.members.len() as u32);
    for m in &s.members {
        out.put_u16_le(m.0);
    }
    out.put_u32_le(s.delivered.len() as u32);
    for uid in &s.delivered {
        put_uid(out, *uid);
    }
}

fn get_sync(buf: &mut Bytes) -> DecResult<SyncMsg> {
    need(buf, 20)?;
    let next_inst = buf.get_u64_le();
    let view_id = buf.get_u64_le();
    let n_members = buf.get_u32_le() as usize;
    if n_members > buf.remaining() / 2 + 1 {
        return Err(CodecError::Truncated);
    }
    let members = (0..n_members)
        .map(|_| {
            need(buf, 2)?;
            Ok(SiteId(buf.get_u16_le()))
        })
        .collect::<DecResult<Vec<_>>>()?;
    need(buf, 4)?;
    let n_uids = buf.get_u32_le() as usize;
    if n_uids > buf.remaining() / 10 + 1 {
        return Err(CodecError::Truncated);
    }
    let delivered = (0..n_uids)
        .map(|_| get_uid(buf))
        .collect::<DecResult<Vec<_>>>()?;
    Ok(SyncMsg {
        next_inst,
        delivered,
        view_id,
        members,
    })
}

impl Wire {
    /// Serialise to bytes.
    pub fn encode(&self) -> Bytes {
        let mut out = BytesMut::with_capacity(64);
        match self {
            Wire::Data { seq, ctx, payload } => {
                out.put_u8(0);
                out.put_u64_le(*seq);
                match ctx {
                    Some(c) => {
                        out.put_u8(1);
                        out.put_u16_le(c.origin.0);
                        out.put_u64_le(c.op);
                        out.put_u8(c.hop);
                    }
                    None => out.put_u8(0),
                }
                match payload {
                    Payload::Cast(c) => {
                        out.put_u8(0);
                        put_cast(&mut out, c);
                    }
                    Payload::Cons(c) => {
                        out.put_u8(1);
                        put_cons(&mut out, c);
                    }
                    Payload::Sync(s) => {
                        out.put_u8(2);
                        put_sync(&mut out, s);
                    }
                }
            }
            Wire::Ack { seq } => {
                out.put_u8(1);
                out.put_u64_le(*seq);
            }
            Wire::Heartbeat => {
                out.put_u8(2);
            }
        }
        out.freeze()
    }

    /// Deserialise from bytes.
    pub fn decode(mut buf: Bytes) -> DecResult<Wire> {
        need(&buf, 1)?;
        match buf.get_u8() {
            0 => {
                need(&buf, 9)?;
                let seq = buf.get_u64_le();
                let ctx = match buf.get_u8() {
                    0 => None,
                    1 => {
                        need(&buf, 11)?;
                        Some(TraceCtx {
                            origin: SiteId(buf.get_u16_le()),
                            op: buf.get_u64_le(),
                            hop: buf.get_u8(),
                        })
                    }
                    t => return Err(CodecError::BadTag(t)),
                };
                need(&buf, 1)?;
                let payload = match buf.get_u8() {
                    0 => Payload::Cast(get_cast(&mut buf)?),
                    1 => Payload::Cons(get_cons(&mut buf)?),
                    2 => Payload::Sync(get_sync(&mut buf)?),
                    t => return Err(CodecError::BadTag(t)),
                };
                Ok(Wire::Data { seq, ctx, payload })
            }
            1 => {
                need(&buf, 8)?;
                Ok(Wire::Ack {
                    seq: buf.get_u64_le(),
                })
            }
            2 => Ok(Wire::Heartbeat),
            t => Err(CodecError::BadTag(t)),
        }
    }

    /// Header-only read of the causal context on an encoded frame: inspects
    /// at most the first 21 bytes, no payload decode. `None` for non-data
    /// frames, frames without a context, or anything malformed (full
    /// [`decode`](Wire::decode) is the arbiter of validity).
    pub fn peek_ctx(buf: &Bytes) -> Option<TraceCtx> {
        let b: &[u8] = buf.as_ref();
        if b.len() < 21 || b[0] != 0 || b[9] != 1 {
            return None;
        }
        Some(TraceCtx {
            origin: SiteId(u16::from_le_bytes([b[10], b[11]])),
            op: u64::from_le_bytes([b[12], b[13], b[14], b[15], b[16], b[17], b[18], b[19]]),
            hop: b[20],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uid(o: u16, s: u64) -> MsgUid {
        MsgUid {
            origin: SiteId(o),
            seq: s,
        }
    }

    fn roundtrip(w: Wire) {
        let enc = w.encode();
        let dec = Wire::decode(enc).expect("decode");
        assert_eq!(dec, w);
    }

    #[test]
    fn roundtrip_ack_and_heartbeat() {
        roundtrip(Wire::Ack { seq: 0 });
        roundtrip(Wire::Ack { seq: u64::MAX });
        roundtrip(Wire::Heartbeat);
    }

    #[test]
    fn roundtrip_user_cast() {
        roundtrip(Wire::Data {
            seq: 7,
            ctx: None,
            payload: Payload::Cast(CastMsg {
                uid: uid(3, 9),
                data: CastData::User(Bytes::from_static(b"payload")),
            }),
        });
    }

    #[test]
    fn roundtrip_empty_user_payload() {
        roundtrip(Wire::Data {
            seq: 0,
            ctx: None,
            payload: Payload::Cast(CastMsg {
                uid: uid(0, 0),
                data: CastData::User(Bytes::new()),
            }),
        });
    }

    #[test]
    fn roundtrip_ab_request_and_view_op() {
        roundtrip(Wire::Data {
            seq: 1,
            ctx: None,
            payload: Payload::Cast(CastMsg {
                uid: uid(1, 2),
                data: CastData::AbRequest(AbMsg {
                    uid: uid(1, 5),
                    payload: AbPayload::ViewOp(ViewOp::Leave, SiteId(4)),
                }),
            }),
        });
        roundtrip(Wire::Data {
            seq: 1,
            ctx: None,
            payload: Payload::Cast(CastMsg {
                uid: uid(1, 3),
                data: CastData::AbRequest(AbMsg {
                    uid: uid(1, 6),
                    payload: AbPayload::User(Bytes::from_static(b"x")),
                }),
            }),
        });
    }

    #[test]
    fn roundtrip_decide_with_batch() {
        let batch = vec![
            AbMsg {
                uid: uid(0, 1),
                payload: AbPayload::User(Bytes::from_static(b"a")),
            },
            AbMsg {
                uid: uid(2, 1),
                payload: AbPayload::ViewOp(ViewOp::Join, SiteId(9)),
            },
        ];
        roundtrip(Wire::Data {
            seq: 2,
            ctx: None,
            payload: Payload::Cast(CastMsg {
                uid: uid(0, 4),
                data: CastData::Decide { inst: 11, batch },
            }),
        });
    }

    #[test]
    fn roundtrip_all_consensus_messages() {
        let batch = vec![AbMsg {
            uid: uid(1, 1),
            payload: AbPayload::User(Bytes::from_static(b"v")),
        }];
        for m in [
            ConsMsg::Kick {
                inst: 1,
                round: 2,
                est: batch.clone(),
                est_round: 0,
            },
            ConsMsg::Collect { inst: 1, round: 2 },
            ConsMsg::Estimate {
                inst: 1,
                round: 2,
                est: batch.clone(),
                est_round: 1,
            },
            ConsMsg::Propose {
                inst: 1,
                round: 2,
                value: batch.clone(),
            },
            ConsMsg::Ack { inst: 3, round: 4 },
        ] {
            roundtrip(Wire::Data {
                seq: 5,
                ctx: None,
                payload: Payload::Cons(m),
            });
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Wire::decode(Bytes::new()), Err(CodecError::Truncated));
        assert_eq!(
            Wire::decode(Bytes::from_static(&[9])),
            Err(CodecError::BadTag(9))
        );
        assert_eq!(
            Wire::decode(Bytes::from_static(&[0, 1, 2])),
            Err(CodecError::Truncated)
        );
    }

    #[test]
    fn decode_rejects_oversized_batch_count() {
        // Data frame claiming a huge batch but providing no bytes.
        let mut out = BytesMut::new();
        out.put_u8(0); // Wire::Data
        out.put_u64_le(1); // seq
        out.put_u8(0); // no TraceCtx
        out.put_u8(0); // Payload::Cast
        out.put_u16_le(0); // uid.origin
        out.put_u64_le(0); // uid.seq
        out.put_u8(2); // CastData::Decide
        out.put_u64_le(0); // inst
        out.put_u32_le(u32::MAX); // absurd batch length
        assert_eq!(Wire::decode(out.freeze()), Err(CodecError::Truncated));
    }

    #[test]
    fn roundtrip_trace_ctx() {
        let ctx = TraceCtx {
            origin: SiteId(2),
            op: 0x0123_4567_89ab,
            hop: 3,
        };
        let w = Wire::Data {
            seq: 42,
            ctx: Some(ctx),
            payload: Payload::Cast(CastMsg {
                uid: uid(2, 9),
                data: CastData::User(Bytes::from_static(b"traced")),
            }),
        };
        roundtrip(w.clone());
        // Header-only peek agrees with the full decode.
        assert_eq!(Wire::peek_ctx(&w.encode()), Some(ctx));
    }

    #[test]
    fn peek_ctx_none_cases() {
        // No context on the frame.
        let plain = Wire::Data {
            seq: 1,
            ctx: None,
            payload: Payload::Cast(CastMsg {
                uid: uid(0, 1),
                data: CastData::User(Bytes::new()),
            }),
        };
        assert_eq!(Wire::peek_ctx(&plain.encode()), None);
        // Non-data frames.
        assert_eq!(Wire::peek_ctx(&Wire::Ack { seq: 5 }.encode()), None);
        assert_eq!(Wire::peek_ctx(&Wire::Heartbeat.encode()), None);
        // Garbage too short to hold a context.
        assert_eq!(Wire::peek_ctx(&Bytes::from_static(&[0, 1, 2])), None);
    }

    #[test]
    fn root_uid_follows_the_operation() {
        let ab = AbMsg {
            uid: uid(1, 7),
            payload: AbPayload::User(Bytes::from_static(b"x")),
        };
        let cast = |data| {
            Payload::Cast(CastMsg {
                uid: uid(3, 2),
                data,
            })
        };
        assert_eq!(
            cast(CastData::AbRequest(ab.clone())).root_uid(),
            Some(uid(1, 7))
        );
        assert_eq!(
            cast(CastData::User(Bytes::new())).root_uid(),
            Some(uid(3, 2))
        );
        assert_eq!(
            cast(CastData::Decide {
                inst: 1,
                batch: vec![ab.clone()],
            })
            .root_uid(),
            Some(uid(1, 7))
        );
        assert_eq!(
            Payload::Cons(ConsMsg::Propose {
                inst: 0,
                round: 1,
                value: vec![ab],
            })
            .root_uid(),
            Some(uid(1, 7))
        );
        assert_eq!(
            Payload::Cons(ConsMsg::Collect { inst: 0, round: 1 }).root_uid(),
            None
        );
    }

    #[test]
    fn uid_ordering_is_origin_then_seq() {
        assert!(uid(0, 5) < uid(1, 0));
        assert!(uid(1, 1) < uid(1, 2));
    }
}
