//! One site of the group-communication system: a SAMOA runtime running the
//! full stack (RelComm, RelCast, failure detector, consensus, atomic
//! broadcast, membership, application sink) over the simulated network —
//! plus [`Cluster`], a convenience bundle of `n` such sites.
//!
//! ## External events and their isolation declarations
//!
//! Every external event spawns a computation (paper §4). What the
//! computation declares depends on the node's [`StackPolicy`]:
//!
//! * [`StackPolicy::Basic`] — `isolated M e` with `M` = the microprotocols
//!   the event's cascade can reach (e.g. an inbound ack only touches
//!   RelComm; an inbound consensus message may reach everything). This is
//!   exactly the paper's `isolated [relComm relCast ...] {trigger FromNet m}`.
//! * [`StackPolicy::Bound`] — `isolated bound`, with generous visit bounds
//!   derived from the view size (the paper notes that tight bounds are hard
//!   to state for recursive protocols; ours are safe over-approximations).
//! * [`StackPolicy::Route`] — `isolated route`, with the routing pattern cut
//!   from the stack's static call graph, rooted at the event's handler.
//! * [`StackPolicy::Serial`] — the Appia baseline: every computation
//!   declares every microprotocol.
//! * [`StackPolicy::Unsync`] — the Cactus-without-locks baseline: no
//!   isolation. The §3 "Problem" race is observable under this policy.
//! * [`StackPolicy::TwoPhase`] — conservative 2PL over the same sets as
//!   `Basic`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};

use samoa_core::analysis::infer_route;
use samoa_core::metrics::Registry;
use samoa_core::prelude::*;
use samoa_net::{NetConfig, NetHandle, SimNet, SiteId, TcpMesh, Transport};

use crate::abcast::{self, AbcastState};
use crate::app::{self, AppState};
use crate::clock::ProtoClock;
use crate::consensus::{self, ConsensusState};
use crate::events::Events;
use crate::fd::{self, FdState};
use crate::kv::{self, KvApplied, KvCmd, KvPending, KvState, KvWaiters};
use crate::membership::{self, MembershipState};
use crate::msgs::{AbPayload, CastData, Payload, Wire};
use crate::observe::{
    AbcastInstruments, ClusterTracer, ConsensusInstruments, KvInstruments, RelCommInstruments,
};
use crate::relcast::{self, RelCastState};
use crate::relcomm::{self, RcAckIn, RcDataIn, RelCommState};
use crate::view::{GroupView, ViewOp};

/// Observability attachments for a node or cluster — all optional, all
/// following the one-branch zero-cost-when-uninstalled discipline: a
/// default `Observe` adds nothing to any hot path.
#[derive(Clone, Default)]
pub struct Observe {
    /// Trace sink receiving both the runtime's scheduling events and the
    /// stack's cluster-level causal spans (`ClientSubmit`, `CtxSend`,
    /// `CtxRecv`, `AbDeliver`, `KvApply`, ...).
    pub sink: Option<Arc<dyn samoa_core::TraceSink>>,
    /// Metrics registry the node's per-protocol instruments register into
    /// (names are `site{N}.<proto>.<metric>`).
    pub registry: Option<Arc<Registry>>,
    /// Timestamp epoch. Share one across a cluster so every site's spans
    /// land on a single comparable timeline; defaults to "now" per node.
    pub epoch: Option<Instant>,
}

impl Observe {
    /// Tracing only.
    pub fn traced(sink: Arc<dyn samoa_core::TraceSink>) -> Observe {
        Observe {
            sink: Some(sink),
            ..Observe::default()
        }
    }

    /// Metrics only.
    pub fn metered(registry: Arc<Registry>) -> Observe {
        Observe {
            registry: Some(registry),
            ..Observe::default()
        }
    }
}

impl std::fmt::Debug for Observe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observe")
            .field("sink", &self.sink.is_some())
            .field("registry", &self.registry.is_some())
            .finish()
    }
}

/// Transport decorator that emits a `CtxSend` flow event for every
/// outbound data frame carrying a trace context. Header-only
/// ([`Wire::peek_ctx`]) — the payload is never re-decoded, and frames
/// without a context (acks, heartbeats, un-traced data) cost one length
/// check.
struct TracingTransport {
    inner: Arc<dyn Transport>,
    tracer: ClusterTracer,
}

impl Transport for TracingTransport {
    fn send(&self, from: SiteId, to: SiteId, payload: Bytes) {
        if let Some(c) = Wire::peek_ctx(&payload) {
            self.tracer.emit(samoa_core::TraceKind::CtxSend {
                from: from.0,
                to: to.0,
                origin: c.origin.0,
                op: c.op,
                hop: c.hop,
            });
        }
        self.inner.send(from, to, payload);
    }

    // The default `send_all` fans out through `self.send`, emitting one
    // flow event per destination — exactly what the exporter needs.

    fn site_count(&self) -> usize {
        self.inner.site_count()
    }

    fn sites(&self) -> Vec<SiteId> {
        self.inner.sites()
    }

    fn register(&self, site: SiteId, callback: Arc<samoa_net::sim::DeliveryFn>) {
        self.inner.register(site, callback)
    }

    fn stats_named(&self, site: SiteId) -> Vec<(&'static str, u64)> {
        self.inner.stats_named(site)
    }
}

/// Which isolation policy the node's external events run under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackPolicy {
    /// No isolation (Cactus-without-locks baseline).
    Unsync,
    /// Fully serial computations (Appia baseline).
    Serial,
    /// `isolated M e` — VCAbasic.
    Basic,
    /// `isolated bound M e` — VCAbound.
    Bound,
    /// `isolated route M e` — VCAroute.
    Route,
    /// Conservative two-phase locking.
    TwoPhase,
}

/// Node tunables.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Isolation policy for external events.
    pub policy: StackPolicy,
    /// RelComm retransmission timeout.
    pub rto: Duration,
    /// Timer period (retransmission + failure detection).
    pub tick_interval: Duration,
    /// Failure-detector suspicion timeout.
    pub fd_timeout: Duration,
    /// Run the failure detector (off by default so fault-free workloads can
    /// fully quiesce).
    pub enable_fd: bool,
    /// Run the retransmission timer (on by default).
    pub enable_timers: bool,
    /// Initial group view (defaults to all sites of the network).
    pub initial_members: Option<Vec<SiteId>>,
    /// Worker threads per computation (1 keeps intra-computation event
    /// processing FIFO, which the delivery-order assertions rely on).
    pub intra_threads: usize,
    /// Record history for the isolation checker.
    pub record_history: bool,
    /// Artificial delay in RelComm's `view_change` handler (experiment E5's
    /// race-window widener; zero in normal operation).
    pub view_change_delay: Duration,
    /// Ablation knob (experiment E8): declare *every* microprotocol for
    /// every external event instead of the event-kind-specific tight sets.
    /// The paper notes that `M` "could be inferred statically" — this knob
    /// measures what that inference buys.
    pub declare_all: bool,
    /// Maximum in-flight external computations per node. Every computation
    /// runs on its own thread, so an unbounded arrival rate (real sockets
    /// deliver far faster than the simulator) can pile up thousands of
    /// admission-blocked threads until thread creation fails. The entry
    /// point (reader thread, timer, application) blocks while the node is
    /// at this limit — natural backpressure that TCP propagates to the
    /// sender. Ignored for hooked runtimes (the controller owns
    /// scheduling).
    pub max_inflight_external: usize,
    /// The time source the stack's timeout logic (failure detector,
    /// RelComm retransmission) reads. Defaults to the wall clock; a
    /// [`ProtoClock::manual`] clock shared across a cluster makes every
    /// timeout a function of explicit [`ProtoClock::advance`] calls —
    /// the substrate for deterministic fault exploration.
    pub clock: ProtoClock,
    /// When false, RelComm's inbound duplicate suppression is bypassed —
    /// an **injected fault-surface knob** for the fault explorer: the
    /// upper layers' own uid-based dedup (RelCast, abcast, consensus)
    /// then becomes load-bearing against duplicated frames. Leave true
    /// everywhere else.
    pub dedup_enabled: bool,
    /// When false, abcast delivers decisions in *arrival* order instead of
    /// instance order — an **injected bug** the fault explorer uses to
    /// demonstrate a minimised, replayable cluster-level witness: a
    /// reordered `Decide` flood makes two sites disagree on the delivery
    /// prefix. Leave true everywhere else.
    pub ab_order_enabled: bool,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            policy: StackPolicy::Basic,
            rto: Duration::from_millis(25),
            tick_interval: Duration::from_millis(10),
            fd_timeout: Duration::from_millis(200),
            enable_fd: false,
            enable_timers: true,
            initial_members: None,
            intra_threads: 1,
            record_history: false,
            view_change_delay: Duration::ZERO,
            declare_all: false,
            max_inflight_external: 64,
            clock: ProtoClock::wall(),
            dedup_enabled: true,
            ab_order_enabled: true,
        }
    }
}

impl NodeConfig {
    /// Default config with the given policy.
    pub fn with_policy(policy: StackPolicy) -> Self {
        NodeConfig {
            policy,
            ..NodeConfig::default()
        }
    }
}

/// The kind of external event (selects the isolation declaration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExtKind {
    /// Inbound data frame whose cascade may reach the whole stack.
    DataFull,
    /// Inbound data frame carrying a plain user broadcast.
    DataUser,
    /// Inbound RelComm ack.
    Ack,
    /// Inbound heartbeat.
    Beat,
    /// Application reliable-broadcast request.
    RbRequest,
    /// Application atomic-broadcast request.
    AbRequest,
    /// Join/leave request.
    JoinLeave,
    /// Retransmission tick.
    RetrTick,
    /// Failure-detector tick.
    FdTick,
}

/// Precomputed declarations for each external-event kind.
struct DeclSets {
    all: Vec<ProtocolId>,
    relcomm_only: Vec<ProtocolId>,
    fd_only: Vec<ProtocolId>,
    user_cast: Vec<ProtocolId>,
    bounds_all: Vec<(ProtocolId, u64)>,
    bounds_relcomm: Vec<(ProtocolId, u64)>,
    bounds_fd: Vec<(ProtocolId, u64)>,
    bounds_user_cast: Vec<(ProtocolId, u64)>,
    routes: RouteTable,
}

struct RouteTable {
    data: RoutePattern,
    ack: RoutePattern,
    beat: RoutePattern,
    rb: RoutePattern,
    ab: RoutePattern,
    joinleave: RoutePattern,
    retr: RoutePattern,
    fd_tick: RoutePattern,
}

/// Counting gate bounding in-flight external computations (backpressure
/// from the Network/Timer/Application modules into the runtime).
struct ExtGate {
    count: Mutex<usize>,
    cv: Condvar,
    cap: usize,
}

impl ExtGate {
    fn acquire(self: &Arc<Self>) -> ExtSlot {
        let mut g = self.count.lock();
        while *g >= self.cap {
            self.cv.wait(&mut g);
        }
        *g += 1;
        ExtSlot(Arc::clone(self))
    }
}

/// RAII slot in the gate; released when the computation's body finishes.
struct ExtSlot(Arc<ExtGate>);

impl Drop for ExtSlot {
    fn drop(&mut self) {
        let mut g = self.0.count.lock();
        *g -= 1;
        drop(g);
        self.0.cv.notify_one();
    }
}

/// One site of the group-communication system.
pub struct Node {
    /// This node's site id.
    pub site: SiteId,
    rt: Runtime,
    ev: Events,
    transport: Arc<dyn Transport>,
    tracer: Option<ClusterTracer>,
    cfg: NodeConfig,
    decls: DeclSets,
    app: ProtocolState<AppState>,
    membership: ProtocolState<MembershipState>,
    relcomm: ProtocolState<RelCommState>,
    relcast: ProtocolState<RelCastState>,
    abcast: ProtocolState<AbcastState>,
    fd: ProtocolState<FdState>,
    consensus: ProtocolState<ConsensusState>,
    kv: ProtocolState<KvState>,
    kv_waiters: KvWaiters,
    kv_req: AtomicU64,
    ext_gate: Option<Arc<ExtGate>>,
    stop: Arc<AtomicBool>,
    timer: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Node {
    /// Build the node, wire its stack, register it on the network, and (if
    /// enabled) start its timers.
    pub fn new(net: NetHandle, site: SiteId, cfg: NodeConfig) -> Arc<Node> {
        Node::build(Arc::new(net), site, cfg, None, Observe::default())
    }

    /// [`Node::new`] over any [`Transport`] backend — the same stack runs
    /// unchanged over `SimNet` (via [`Node::new`]) or a real-socket
    /// [`TcpNet`](samoa_net::TcpNet):
    ///
    /// ```no_run
    /// use std::sync::Arc;
    /// use samoa_net::{SiteId, TcpMesh, Transport};
    /// use samoa_proto::{Node, NodeConfig};
    ///
    /// let mesh = TcpMesh::new(3).unwrap();
    /// let t: Arc<dyn Transport> = Arc::clone(mesh.net(0)) as Arc<dyn Transport>;
    /// let node = Node::new_on(t, SiteId(0), NodeConfig::default());
    /// ```
    pub fn new_on(transport: Arc<dyn Transport>, site: SiteId, cfg: NodeConfig) -> Arc<Node> {
        Node::build(transport, site, cfg, None, Observe::default())
    }

    /// [`Node::new`] with a [`TraceSink`](samoa_core::TraceSink) attached to
    /// the node's runtime: every computation spawn, admission wait (with the
    /// blocking computation's identity), handler call, early release, and
    /// completion in this node's stack is delivered to `sink` as a
    /// structured event. Cheap enough to leave on in production; see
    /// `samoa_core::trace`.
    pub fn new_traced(
        net: NetHandle,
        site: SiteId,
        cfg: NodeConfig,
        sink: Arc<dyn samoa_core::TraceSink>,
    ) -> Arc<Node> {
        Node::build(Arc::new(net), site, cfg, None, Observe::traced(sink))
    }

    /// [`Node::new`] with a scheduling hook installed on the node's runtime,
    /// for `samoa-check`-style controlled exploration of the full protocol
    /// stack. Pair with a manual network
    /// ([`SimNet::new_manual`](samoa_net::SimNet::new_manual)) and
    /// `enable_timers: false` / `enable_fd: false` so every thread in the
    /// system is under the controller.
    pub fn new_hooked(
        net: NetHandle,
        site: SiteId,
        cfg: NodeConfig,
        hook: Arc<dyn samoa_core::SchedHook>,
    ) -> Arc<Node> {
        Node::build(Arc::new(net), site, cfg, Some(hook), Observe::default())
    }

    /// [`Node::new_hooked`] over any [`Transport`] backend — lets a fault-
    /// exploring harness interpose an instrumented transport (e.g. one that
    /// announces each send's destination to the hook) between the stack and
    /// the manual network.
    pub fn new_hooked_on(
        transport: Arc<dyn Transport>,
        site: SiteId,
        cfg: NodeConfig,
        hook: Arc<dyn samoa_core::SchedHook>,
    ) -> Arc<Node> {
        Node::build(transport, site, cfg, Some(hook), Observe::default())
    }

    /// The general constructor: any [`Transport`], an optional scheduling
    /// hook, and any combination of [`Observe`] attachments. Hook + trace
    /// compose ([`Runtime::with_hook_and_trace`]): a controlled exploration
    /// records the same structured trace a production run would — the
    /// substrate for `samoa-check`'s trace-guided schedule search and the
    /// cross-site causal-propagation tests.
    pub fn new_observed_on(
        transport: Arc<dyn Transport>,
        site: SiteId,
        cfg: NodeConfig,
        hook: Option<Arc<dyn samoa_core::SchedHook>>,
        observe: Observe,
    ) -> Arc<Node> {
        Node::build(transport, site, cfg, hook, observe)
    }

    fn build(
        transport: Arc<dyn Transport>,
        site: SiteId,
        cfg: NodeConfig,
        hook: Option<Arc<dyn samoa_core::SchedHook>>,
        observe: Observe,
    ) -> Arc<Node> {
        let tracer = observe.sink.as_ref().map(|s| {
            let epoch = observe.epoch.unwrap_or_else(Instant::now);
            ClusterTracer::new(site, Arc::clone(s), epoch)
        });
        let view = match &cfg.initial_members {
            Some(m) => GroupView::initial(m.iter().copied()),
            None => GroupView::initial(transport.sites()),
        };
        let n_sites = transport.site_count() as u64;

        let mut b = StackBuilder::new();
        let p_relcomm = b.protocol("RelComm");
        let p_relcast = b.protocol("RelCast");
        let p_fd = b.protocol("FD");
        let p_consensus = b.protocol("Consensus");
        let p_abcast = b.protocol("ABcast");
        let p_membership = b.protocol("Membership");
        let p_app = b.protocol("App");
        let p_kv = b.protocol("Kv");
        let ev = Events::declare(&mut b);

        let relcomm_st = ProtocolState::new(
            p_relcomm,
            RelCommState::with_clock(site, view.clone(), cfg.rto, cfg.clock.clone()),
        );
        let relcast_st = ProtocolState::new(p_relcast, RelCastState::new(site, view.clone()));
        let fd_st = ProtocolState::new(
            p_fd,
            FdState::with_clock(site, view.clone(), cfg.fd_timeout, cfg.clock.clone()),
        );
        let consensus_st = ProtocolState::new(p_consensus, ConsensusState::new(site, view.clone()));
        let abcast_st = ProtocolState::new(p_abcast, AbcastState::new(site, view.clone()));
        let membership_st = ProtocolState::new(p_membership, MembershipState::new(view));
        let app_st = ProtocolState::new(p_app, AppState::default());
        let kv_st = ProtocolState::new(p_kv, KvState::default());
        let kv_waiters = match &observe.registry {
            Some(reg) => KvWaiters::with_instruments(KvInstruments::new(reg, site)),
            None => KvWaiters::default(),
        };

        if let Some(t) = &tracer {
            relcomm_st.write(|s| s.tracer = Some(t.clone()));
            abcast_st.write(|s| s.tracer = Some(t.clone()));
            membership_st.write(|s| s.tracer = Some(t.clone()));
        }
        if let Some(reg) = &observe.registry {
            relcomm_st.write(|s| s.instruments = Some(RelCommInstruments::new(reg, site)));
            abcast_st.write(|s| s.instruments = Some(AbcastInstruments::new(reg, site)));
            consensus_st.write(|s| s.instruments = Some(ConsensusInstruments::new(reg, site)));
            membership_st.write(|s| s.instruments = Some(ConsensusInstruments::new(reg, site)));
        }

        if !cfg.view_change_delay.is_zero() {
            relcomm_st.write(|s| s.view_change_delay = cfg.view_change_delay);
        }
        if !cfg.dedup_enabled {
            relcomm_st.write(|s| s.dedup_enabled = false);
        }
        if !cfg.ab_order_enabled {
            abcast_st.write(|s| s.order_enabled = false);
        }

        // RelCast registers before RelComm so that `triggerAll ViewChange`
        // updates the upper layer first — the §3 race window: RelCast fans
        // out using the new view while RelComm still holds the old one.
        // When traced, protocol sends go through a decorator that emits one
        // `CtxSend` flow event per outbound context-carrying frame.
        let send_transport: Arc<dyn Transport> = match &tracer {
            Some(t) => Arc::new(TracingTransport {
                inner: Arc::clone(&transport),
                tracer: t.clone(),
            }),
            None => Arc::clone(&transport),
        };
        relcast::register(&mut b, p_relcast, &ev, relcast_st.clone());
        relcomm::register(
            &mut b,
            p_relcomm,
            &ev,
            relcomm_st.clone(),
            Arc::clone(&send_transport),
        );
        fd::register(
            &mut b,
            p_fd,
            &ev,
            fd_st.clone(),
            Arc::clone(&send_transport),
        );
        consensus::register(&mut b, p_consensus, &ev, consensus_st.clone());
        abcast::register(&mut b, p_abcast, &ev, abcast_st.clone());
        membership::register(&mut b, p_membership, &ev, membership_st.clone());
        app::register(&mut b, p_app, &ev, app_st.clone());
        kv::register(
            &mut b,
            p_kv,
            &ev,
            kv_st.clone(),
            kv_waiters.clone(),
            site,
            kv::KvObserve {
                tracer: tracer.clone(),
                instruments: observe
                    .registry
                    .as_ref()
                    .map(|r| KvInstruments::new(r, site)),
            },
        );

        let stack = b.build();

        // `isolated route` patterns, one per external event, cut from the
        // stack's static call graph (each handler declares the events it
        // triggers; see `samoa_core::analysis`). This replaces a hand-kept
        // edge list that had to mirror every handler body.
        debug_assert!(stack.has_full_trigger_metadata());
        let routes = RouteTable {
            data: infer_route(&stack, ev.rc_data),
            ack: infer_route(&stack, ev.rc_ack),
            beat: infer_route(&stack, ev.fd_beat),
            rb: infer_route(&stack, ev.bcast),
            ab: infer_route(&stack, ev.abcast),
            joinleave: infer_route(&stack, ev.join_leave),
            retr: infer_route(&stack, ev.retransmit_tick),
            fd_tick: infer_route(&stack, ev.fd_tick),
        };

        let all = vec![
            p_relcomm,
            p_relcast,
            p_fd,
            p_consensus,
            p_abcast,
            p_membership,
            p_app,
            p_kv,
        ];
        // Plain user casts never reach Kv (it binds only ADeliver), so the
        // cast set stays tight — no needless Kv serialisation under Basic.
        let user_cast = vec![p_relcomm, p_relcast, p_abcast, p_app];
        let generous = 8 * n_sites + 16;
        let bounds = |pids: &[ProtocolId]| -> Vec<(ProtocolId, u64)> {
            pids.iter().map(|&p| (p, generous)).collect()
        };
        let decls = DeclSets {
            bounds_all: bounds(&all),
            bounds_relcomm: bounds(&[p_relcomm]),
            bounds_fd: bounds(&[p_fd]),
            bounds_user_cast: bounds(&user_cast),
            all,
            relcomm_only: vec![p_relcomm],
            fd_only: vec![p_fd],
            user_cast,
            routes,
        };

        let rt_cfg = RuntimeConfig {
            record_history: cfg.record_history,
            max_threads_per_computation: cfg.intra_threads.max(1),
            ..RuntimeConfig::default()
        };
        let hooked = hook.is_some();
        let rt = match (hook, observe.sink) {
            (Some(h), Some(s)) => Runtime::with_hook_and_trace(stack, rt_cfg, h, s),
            (Some(h), None) => Runtime::with_hook(stack, rt_cfg, h),
            (None, Some(s)) => Runtime::with_trace(stack, rt_cfg, s),
            (None, None) => Runtime::with_config(stack, rt_cfg),
        };
        let ext_gate = (!hooked && cfg.max_inflight_external > 0).then(|| {
            Arc::new(ExtGate {
                count: Mutex::new(0),
                cv: Condvar::new(),
                cap: cfg.max_inflight_external,
            })
        });

        let node = Arc::new(Node {
            site,
            rt,
            ev,
            transport,
            tracer,
            cfg,
            decls,
            app: app_st,
            membership: membership_st,
            relcomm: relcomm_st,
            relcast: relcast_st,
            abcast: abcast_st,
            fd: fd_st,
            consensus: consensus_st,
            kv: kv_st,
            kv_waiters,
            kv_req: AtomicU64::new(0),
            ext_gate,
            stop: Arc::new(AtomicBool::new(false)),
            timer: Mutex::new(None),
        });

        // Network Module: decode, classify, spawn an isolated computation.
        {
            let weak = Arc::downgrade(&node);
            node.transport.register(
                site,
                Arc::new(move |dg| {
                    if let Some(node) = weak.upgrade() {
                        node.on_datagram(dg.from, dg.payload);
                    }
                }),
            );
        }

        // Timer Module.
        if node.cfg.enable_timers {
            let weak: Weak<Node> = Arc::downgrade(&node);
            let stop = Arc::clone(&node.stop);
            let interval = node.cfg.tick_interval;
            let fd_enabled = node.cfg.enable_fd;
            let t = std::thread::Builder::new()
                .name(format!("node-{}-timer", site.0))
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        std::thread::sleep(interval);
                        let Some(node) = weak.upgrade() else { break };
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        node.spawn_external(
                            ExtKind::RetrTick,
                            node.ev.retransmit_tick,
                            EventData::empty(),
                        );
                        if fd_enabled {
                            node.spawn_external(
                                ExtKind::FdTick,
                                node.ev.fd_tick,
                                EventData::empty(),
                            );
                        }
                    }
                })
                .expect("spawn timer thread");
            *node.timer.lock() = Some(t);
        }

        node
    }

    /// Handle one inbound datagram (the Network Module).
    fn on_datagram(&self, from: SiteId, payload: Bytes) {
        match Wire::decode(payload) {
            Ok(Wire::Data { seq, ctx, payload }) => {
                if let (Some(t), Some(c)) = (&self.tracer, ctx) {
                    t.emit(samoa_core::TraceKind::CtxRecv {
                        site: t.site().0,
                        origin: c.origin.0,
                        op: c.op,
                        hop: c.hop,
                    });
                }
                let kind = match &payload {
                    Payload::Cast(c) if matches!(c.data, CastData::User(_)) => ExtKind::DataUser,
                    _ => ExtKind::DataFull,
                };
                self.spawn_external(
                    kind,
                    self.ev.rc_data,
                    EventData::new(RcDataIn {
                        sender: from,
                        seq,
                        ctx,
                        payload,
                    }),
                );
            }
            Ok(Wire::Ack { seq }) => {
                self.spawn_external(
                    ExtKind::Ack,
                    self.ev.rc_ack,
                    EventData::new(RcAckIn { sender: from, seq }),
                );
            }
            Ok(Wire::Heartbeat) => {
                self.spawn_external(ExtKind::Beat, self.ev.fd_beat, EventData::new(from));
            }
            Err(_) => { /* malformed datagram: drop, like a real UDP stack */ }
        }
    }

    /// Spawn the isolated computation for an external event, declaring
    /// according to the node's policy (see module docs).
    fn spawn_external(&self, kind: ExtKind, event: EventType, data: EventData) {
        let d = &self.decls;
        let (basic, bound, route): (&[ProtocolId], &[(ProtocolId, u64)], &RoutePattern) = match kind
        {
            ExtKind::DataFull | ExtKind::AbRequest | ExtKind::JoinLeave => {
                let route = match kind {
                    ExtKind::DataFull => &d.routes.data,
                    ExtKind::AbRequest => &d.routes.ab,
                    _ => &d.routes.joinleave,
                };
                (&d.all, &d.bounds_all, route)
            }
            ExtKind::DataUser => (&d.user_cast, &d.bounds_user_cast, &d.routes.data),
            ExtKind::RbRequest => (&d.user_cast, &d.bounds_user_cast, &d.routes.rb),
            ExtKind::Ack => (&d.relcomm_only, &d.bounds_relcomm, &d.routes.ack),
            ExtKind::RetrTick => (&d.relcomm_only, &d.bounds_relcomm, &d.routes.retr),
            ExtKind::Beat => (&d.fd_only, &d.bounds_fd, &d.routes.beat),
            ExtKind::FdTick => (&d.all, &d.bounds_all, &d.routes.fd_tick),
        };
        // E8 ablation: coarse declarations serialise unrelated event kinds.
        let (basic, bound) = if self.cfg.declare_all {
            (&d.all[..], &d.bounds_all[..])
        } else {
            (basic, bound)
        };
        // The slot rides the computation's root thread (not just the body):
        // it is released only when the thread fully exits, so the gate
        // counts every thread the computation still occupies — including
        // ones blocked in the post-body drain phase.
        let slot = self.ext_gate.as_ref().map(|g| g.acquire());
        let body = move |ctx: &Ctx| ctx.trigger(event, data);
        match self.cfg.policy {
            StackPolicy::Unsync => self.rt.spawn_guarded(Decl::Unsync, slot, body),
            StackPolicy::Serial => self.rt.spawn_guarded(Decl::Serial, slot, body),
            StackPolicy::Basic => self.rt.spawn_guarded(Decl::Basic(basic), slot, body),
            StackPolicy::Bound => self.rt.spawn_guarded(Decl::Bound(bound), slot, body),
            StackPolicy::Route => self.rt.spawn_guarded(Decl::Route(route), slot, body),
            StackPolicy::TwoPhase => self.rt.spawn_guarded(Decl::TwoPhase(basic), slot, body),
        };
    }

    /// Inject one retransmission-timer tick, exactly as the timer thread
    /// would. With `enable_timers: false` and a [`ProtoClock::manual`]
    /// clock this is the *only* way RelComm retransmits — the seam that
    /// turns timeout behaviour into an explicit, explorable decision.
    pub fn inject_retransmit_tick(&self) {
        self.spawn_external(
            ExtKind::RetrTick,
            self.ev.retransmit_tick,
            EventData::empty(),
        );
    }

    /// Inject one failure-detector tick (heartbeats + suspicion sweep),
    /// exactly as the timer thread would. Deterministic counterpart of
    /// `enable_fd` under a manual clock.
    pub fn inject_fd_tick(&self) {
        self.spawn_external(ExtKind::FdTick, self.ev.fd_tick, EventData::empty());
    }

    /// The time source this node's stack reads (see [`NodeConfig::clock`]).
    pub fn clock(&self) -> &ProtoClock {
        &self.cfg.clock
    }

    /// Application request: reliable broadcast (RelCast).
    pub fn rbcast(&self, data: impl Into<Bytes>) {
        self.spawn_external(
            ExtKind::RbRequest,
            self.ev.bcast,
            EventData::new(CastData::User(data.into())),
        );
    }

    /// Application request: atomic broadcast.
    pub fn abcast(&self, data: impl Into<Bytes>) {
        self.spawn_external(
            ExtKind::AbRequest,
            self.ev.abcast,
            EventData::new(AbPayload::User(data.into())),
        );
    }

    /// Request that `site` join the group.
    pub fn request_join(&self, site: SiteId) {
        self.spawn_external(
            ExtKind::JoinLeave,
            self.ev.join_leave,
            EventData::new((ViewOp::Join, site)),
        );
    }

    /// Request that `site` leave the group.
    pub fn request_leave(&self, site: SiteId) {
        self.spawn_external(
            ExtKind::JoinLeave,
            self.ev.join_leave,
            EventData::new((ViewOp::Leave, site)),
        );
    }

    fn kv_submit(&self, make: impl FnOnce(u64) -> KvCmd) -> KvPending {
        let req = self.kv_req.fetch_add(1, Ordering::Relaxed);
        // Install the waiter before broadcasting so the reply cannot race
        // past it.
        let pending = self.kv_waiters.pending(req);
        let cmd = make(req);
        self.spawn_external(
            ExtKind::AbRequest,
            self.ev.abcast,
            EventData::new(AbPayload::User(cmd.encode())),
        );
        pending
    }

    /// Replicated KV: set `key` to `value`, totally ordered by abcast.
    /// The returned handle resolves (with the previous value) once this
    /// site applies the command; see [`KvPending::wait`].
    pub fn kv_put(&self, key: impl Into<Bytes>, value: impl Into<Bytes>) -> KvPending {
        let (key, value) = (key.into(), value.into());
        self.kv_submit(|req| KvCmd::Put { req, key, value })
    }

    /// Replicated KV: linearizable read of `key` (ordered through abcast
    /// like a write).
    pub fn kv_get(&self, key: impl Into<Bytes>) -> KvPending {
        let key = key.into();
        self.kv_submit(|req| KvCmd::Get { req, key })
    }

    /// Replicated KV: compare-and-swap — install `value` iff `key`
    /// currently equals `expect` (`None` = expect absent).
    pub fn kv_cas(
        &self,
        key: impl Into<Bytes>,
        expect: Option<Bytes>,
        value: impl Into<Bytes>,
    ) -> KvPending {
        let (key, value) = (key.into(), value.into());
        self.kv_submit(|req| KvCmd::Cas {
            req,
            key,
            expect,
            value,
        })
    }

    /// FNV digest of this site's KV map (equal digests ⇔ byte-identical
    /// replicas).
    pub fn kv_digest(&self) -> u64 {
        self.kv.read(|s| s.digest())
    }

    /// Number of KV commands this site has applied.
    pub fn kv_applied(&self) -> usize {
        self.kv.read(|s| s.applied())
    }

    /// This site's applied-command log (its view of the total order).
    pub fn kv_log(&self) -> Vec<KvApplied> {
        self.kv.read(|s| s.log().to_vec())
    }

    /// Snapshot of this site's KV map.
    pub fn kv_snapshot(&self) -> Vec<(Bytes, Bytes)> {
        self.kv.read(|s| s.snapshot())
    }

    /// Reliable-broadcast deliveries observed by the application.
    pub fn rb_delivered(&self) -> Vec<(SiteId, Bytes)> {
        self.app.read(|s| s.rb_delivered.clone())
    }

    /// Atomic-broadcast deliveries observed by the application (the total
    /// order).
    pub fn ab_delivered(&self) -> Vec<(SiteId, Bytes)> {
        self.app.read(|s| s.ab_delivered.clone())
    }

    /// Views the application saw installed.
    pub fn observed_views(&self) -> Vec<GroupView> {
        self.app.read(|s| s.views.clone())
    }

    /// Membership's current view.
    pub fn current_view(&self) -> GroupView {
        self.membership.read(|s| s.view().clone())
    }

    /// RelComm retransmission count (diagnostics).
    pub fn retransmissions(&self) -> u64 {
        self.relcomm.read(|s| s.retransmissions)
    }

    /// RelComm messages sent but not yet acknowledged (diagnostics).
    pub fn relcomm_pending(&self) -> usize {
        self.relcomm.read(|s| s.pending_count())
    }

    /// Sends RelComm discarded because the target was outside its view
    /// (the §3 race indicator under `Unsync`; see EXPERIMENTS.md E5).
    pub fn relcomm_discards(&self) -> u64 {
        self.relcomm.read(|s| s.discarded)
    }

    /// Distinct RelCast messages seen (diagnostics).
    pub fn cast_seen(&self) -> usize {
        self.relcast.read(|s| s.seen_count())
    }

    /// Undelivered atomic-broadcast requests (diagnostics).
    pub fn ab_pending(&self) -> usize {
        self.abcast.read(|s| s.pending_count())
    }

    /// Sites this node's failure detector currently suspects.
    pub fn suspects(&self) -> Vec<SiteId> {
        self.fd.read(|s| s.suspects())
    }

    /// Live consensus instances (diagnostics).
    pub fn consensus_instances(&self) -> usize {
        self.consensus.read(|s| s.live_instances())
    }

    /// The node's SAMOA runtime (for quiescing and isolation checks).
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }

    /// The stack's event types (for static analysis and direct injection).
    pub fn events(&self) -> &Events {
        &self.ev
    }

    /// The transport this node is attached to.
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// Stop the timer thread. Idempotent.
    pub fn stop_timers(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.timer.lock().take() {
            let _ = t.join();
        }
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The timer thread holds only a Weak reference and wakes every
        // tick_interval, so it exits on its own; join if still present.
        if let Some(t) = self.timer.lock().take() {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("site", &self.site)
            .field("policy", &self.cfg.policy)
            .finish()
    }
}

/// A point-in-time cluster health snapshot: every node's metric
/// instruments (from the shared [`Registry`]) alongside canonical
/// per-site transport counters — the **same counter names over `SimNet`
/// and `TcpNet`** (see [`Transport::stats_named`]), so a health report
/// reads identically whichever backend the cluster runs on.
#[derive(Debug, Clone)]
pub struct ClusterMetrics {
    /// Registry snapshot (instrument names are `site{N}.<proto>.<metric>`).
    pub metrics: samoa_core::MetricsSnapshot,
    /// Canonical transport counters per site.
    pub transport: Vec<(u16, Vec<(&'static str, u64)>)>,
}

impl ClusterMetrics {
    /// JSON object: `{"metrics": <registry snapshot>, "transport":
    /// {"site0": {"sent": ..., ...}, ...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"metrics\": ");
        out.push_str(&self.metrics.to_json());
        out.push_str(", \"transport\": {");
        for (i, (site, counters)) in self.transport.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"site{site}\": {{"));
            for (j, (name, v)) in counters.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{name}\": {v}"));
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }

    /// A plain-text health report: the transport counters per site, then
    /// every registered instrument.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (site, counters) in &self.transport {
            out.push_str(&format!("site{site}.net:"));
            for (name, v) in counters {
                out.push_str(&format!(" {name}={v}"));
            }
            out.push('\n');
        }
        out.push_str(&self.metrics.render());
        out
    }
}

/// A bundle of `n` nodes over one simulated network.
pub struct Cluster {
    net: SimNet,
    nodes: Vec<Arc<Node>>,
    registry: Option<Arc<Registry>>,
}

impl Cluster {
    /// Build `n` nodes over a fresh network.
    pub fn new(n: usize, net_cfg: NetConfig, node_cfg: NodeConfig) -> Cluster {
        let net = SimNet::new(n, net_cfg);
        let nodes = (0..n as u16)
            .map(|i| Node::new(net.handle(), SiteId(i), node_cfg.clone()))
            .collect();
        Cluster {
            net,
            nodes,
            registry: None,
        }
    }

    /// Build `n` nodes with the given [`Observe`] attachments shared across
    /// the cluster: one sink (merged cross-site causal trace), one registry
    /// (aggregate via [`Cluster::metrics`]), one timestamp epoch.
    pub fn new_observed(
        n: usize,
        net_cfg: NetConfig,
        node_cfg: NodeConfig,
        observe: Observe,
    ) -> Cluster {
        let observe = Observe {
            epoch: Some(observe.epoch.unwrap_or_else(Instant::now)),
            ..observe
        };
        let net = SimNet::new(n, net_cfg);
        let nodes = (0..n as u16)
            .map(|i| {
                Node::new_observed_on(
                    Arc::new(net.handle()),
                    SiteId(i),
                    node_cfg.clone(),
                    None,
                    observe.clone(),
                )
            })
            .collect();
        Cluster {
            net,
            nodes,
            registry: observe.registry,
        }
    }

    /// [`Cluster::new_observed`] over a **manual** network
    /// ([`Cluster::new_manual`] semantics), with an optional scheduling
    /// hook on every node — the construction `samoa-check` uses for
    /// deterministic, traced exploration of the full cluster.
    pub fn new_manual_observed(
        n: usize,
        net_cfg: NetConfig,
        node_cfg: NodeConfig,
        hook: Option<Arc<dyn samoa_core::SchedHook>>,
        observe: Observe,
    ) -> Cluster {
        let observe = Observe {
            epoch: Some(observe.epoch.unwrap_or_else(Instant::now)),
            ..observe
        };
        let net = SimNet::new_manual(n, net_cfg);
        let nodes = (0..n as u16)
            .map(|i| {
                Node::new_observed_on(
                    Arc::new(net.handle()),
                    SiteId(i),
                    node_cfg.clone(),
                    hook.clone(),
                    observe.clone(),
                )
            })
            .collect();
        Cluster {
            net,
            nodes,
            registry: observe.registry,
        }
    }

    /// Snapshot the cluster's health: registry instruments plus canonical
    /// per-site transport counters. `None` when the cluster was built
    /// without a registry.
    pub fn metrics(&self) -> Option<ClusterMetrics> {
        let reg = self.registry.as_ref()?;
        Some(ClusterMetrics {
            metrics: reg.snapshot(),
            transport: self
                .nodes
                .iter()
                .map(|n| (n.site.0, n.transport().stats_named(n.site)))
                .collect(),
        })
    }

    /// Build `n` nodes over a **manual** network
    /// ([`SimNet::new_manual`]): no delivery thread — datagrams sit until
    /// [`NetHandle::pump_one`]/[`NetHandle::pump_all`] (and [`Cluster::settle`],
    /// which pumps) deliver them on the calling thread. Pair with
    /// `enable_timers: false` and a shared [`ProtoClock::manual`] in
    /// `node_cfg` for fully deterministic virtual-time tests: drive
    /// retransmissions and failure detection with
    /// [`Node::inject_retransmit_tick`]/[`Node::inject_fd_tick`] after
    /// advancing the clock, instead of polling wall-clock deadlines.
    pub fn new_manual(n: usize, net_cfg: NetConfig, node_cfg: NodeConfig) -> Cluster {
        let net = SimNet::new_manual(n, net_cfg);
        let nodes = (0..n as u16)
            .map(|i| Node::new(net.handle(), SiteId(i), node_cfg.clone()))
            .collect();
        Cluster {
            net,
            nodes,
            registry: None,
        }
    }

    /// [`Cluster::new`] with a [`TraceSink`](samoa_core::TraceSink) per
    /// node: `make_sink` is called once per site and the returned sink is
    /// attached to that node's runtime ([`Node::new_traced`]). Use one
    /// shared buffer for a merged stream, or one buffer per site to export
    /// each node as its own track group.
    pub fn new_traced(
        n: usize,
        net_cfg: NetConfig,
        node_cfg: NodeConfig,
        make_sink: impl Fn(SiteId) -> Arc<dyn samoa_core::TraceSink>,
    ) -> Cluster {
        let net = SimNet::new(n, net_cfg);
        let nodes = (0..n as u16)
            .map(|i| {
                Node::new_traced(
                    net.handle(),
                    SiteId(i),
                    node_cfg.clone(),
                    make_sink(SiteId(i)),
                )
            })
            .collect();
        Cluster {
            net,
            nodes,
            registry: None,
        }
    }

    /// Node `i`.
    pub fn node(&self, i: usize) -> &Arc<Node> {
        &self.nodes[i]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Arc<Node>] {
        &self.nodes
    }

    /// The network handle (for fault injection and stats).
    pub fn net(&self) -> NetHandle {
        self.net.handle()
    }

    /// Drain the whole system to a fixed point: no datagrams in flight and
    /// no computation running anywhere, stable across one full round.
    ///
    /// Only terminates for workloads that stop generating traffic (the
    /// failure detector's heartbeats never stop; use sleeps and polling for
    /// FD scenarios instead).
    pub fn settle(&self) {
        loop {
            let before = self.net.total_stats().sent;
            self.net.quiesce();
            for n in &self.nodes {
                n.runtime().quiesce();
            }
            self.net.quiesce();
            let after = self.net.total_stats().sent;
            if before == after {
                // One more confirmation round: runtimes idle and no new
                // sends appeared while we checked.
                let confirm = self.net.total_stats().sent;
                for n in &self.nodes {
                    n.runtime().quiesce();
                }
                if self.net.total_stats().sent == confirm {
                    return;
                }
            }
        }
    }

    /// Stop all timers and shut the network down.
    pub fn shutdown(&mut self) {
        for n in &self.nodes {
            n.stop_timers();
        }
        self.net.shutdown();
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

/// A bundle of `n` nodes over real localhost TCP sockets
/// ([`TcpMesh`]) — the same stack as [`Cluster`], different backend.
///
/// There is no `settle()` here: real sockets have no global quiescence
/// oracle. Poll observable state with a deadline instead (e.g. all sites'
/// [`Node::kv_applied`] reaching a target).
pub struct TcpCluster {
    mesh: TcpMesh,
    nodes: Vec<Option<Arc<Node>>>,
    registry: Option<Arc<Registry>>,
}

impl TcpCluster {
    /// Build `n` nodes over a fresh localhost TCP mesh (ephemeral ports).
    pub fn new(n: usize, node_cfg: NodeConfig) -> std::io::Result<TcpCluster> {
        TcpCluster::new_observed(n, node_cfg, Observe::default())
    }

    /// [`TcpCluster::new`] with shared [`Observe`] attachments — same
    /// semantics as [`Cluster::new_observed`], real sockets underneath.
    pub fn new_observed(
        n: usize,
        node_cfg: NodeConfig,
        observe: Observe,
    ) -> std::io::Result<TcpCluster> {
        let observe = Observe {
            epoch: Some(observe.epoch.unwrap_or_else(Instant::now)),
            ..observe
        };
        let mesh = TcpMesh::new(n)?;
        let nodes = (0..n)
            .map(|i| {
                let t: Arc<dyn Transport> = Arc::clone(mesh.net(i)) as Arc<dyn Transport>;
                Some(Node::new_observed_on(
                    t,
                    SiteId(i as u16),
                    node_cfg.clone(),
                    None,
                    observe.clone(),
                ))
            })
            .collect();
        Ok(TcpCluster {
            mesh,
            nodes,
            registry: observe.registry,
        })
    }

    /// Snapshot the cluster's health (see [`Cluster::metrics`]); crashed
    /// sites report no transport counters. `None` without a registry.
    pub fn metrics(&self) -> Option<ClusterMetrics> {
        let reg = self.registry.as_ref()?;
        Some(ClusterMetrics {
            metrics: reg.snapshot(),
            transport: self
                .live_nodes()
                .map(|(_, n)| (n.site.0, n.transport().stats_named(n.site)))
                .collect(),
        })
    }

    /// Node `i`.
    ///
    /// # Panics
    ///
    /// Panics if site `i` was crashed.
    pub fn node(&self, i: usize) -> &Arc<Node> {
        self.nodes[i].as_ref().expect("site was crashed")
    }

    /// All live nodes with their site indices.
    pub fn live_nodes(&self) -> impl Iterator<Item = (usize, &Arc<Node>)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|n| (i, n)))
    }

    /// Is site `i` still up?
    pub fn is_live(&self, i: usize) -> bool {
        self.nodes[i].is_some()
    }

    /// The underlying mesh (for stats and addresses).
    pub fn mesh(&self) -> &TcpMesh {
        &self.mesh
    }

    /// Crash site `i`: tear its TCP endpoint down (it neither sends nor
    /// receives afterwards), stop its timers, and drop the node. Survivors'
    /// failure detectors will suspect it and consensus will rotate away —
    /// this is the failover injection for the e12 scenario.
    pub fn crash(&mut self, i: usize) {
        self.mesh.crash(i);
        if let Some(n) = self.nodes[i].take() {
            n.stop_timers();
        }
    }

    /// Stop all timers and tear every endpoint down.
    pub fn shutdown(&mut self) {
        for n in self.nodes.iter().flatten() {
            n.stop_timers();
        }
        self.mesh.shutdown();
    }
}

impl Drop for TcpCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for TcpCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpCluster")
            .field("sites", &self.nodes.len())
            .field("live", &self.nodes.iter().flatten().count())
            .finish()
    }
}
