//! One site of the group-communication system: a SAMOA runtime running the
//! full stack (RelComm, RelCast, failure detector, consensus, atomic
//! broadcast, membership, application sink) over the simulated network —
//! plus [`Cluster`], a convenience bundle of `n` such sites.
//!
//! ## External events and their isolation declarations
//!
//! Every external event spawns a computation (paper §4). What the
//! computation declares depends on the node's [`StackPolicy`]:
//!
//! * [`StackPolicy::Basic`] — `isolated M e` with `M` = the microprotocols
//!   the event's cascade can reach (e.g. an inbound ack only touches
//!   RelComm; an inbound consensus message may reach everything). This is
//!   exactly the paper's `isolated [relComm relCast ...] {trigger FromNet m}`.
//! * [`StackPolicy::Bound`] — `isolated bound`, with generous visit bounds
//!   derived from the view size (the paper notes that tight bounds are hard
//!   to state for recursive protocols; ours are safe over-approximations).
//! * [`StackPolicy::Route`] — `isolated route`, with the routing pattern cut
//!   from the stack's static call graph, rooted at the event's handler.
//! * [`StackPolicy::Serial`] — the Appia baseline: every computation
//!   declares every microprotocol.
//! * [`StackPolicy::Unsync`] — the Cactus-without-locks baseline: no
//!   isolation. The §3 "Problem" race is observable under this policy.
//! * [`StackPolicy::TwoPhase`] — conservative 2PL over the same sets as
//!   `Basic`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;

use samoa_core::analysis::infer_route;
use samoa_core::prelude::*;
use samoa_net::{NetConfig, NetHandle, SimNet, SiteId, Transport};

use crate::abcast::{self, AbcastState};
use crate::app::{self, AppState};
use crate::consensus::{self, ConsensusState};
use crate::events::Events;
use crate::fd::{self, FdState};
use crate::membership::{self, MembershipState};
use crate::msgs::{AbPayload, CastData, Payload, Wire};
use crate::relcast::{self, RelCastState};
use crate::relcomm::{self, RcAckIn, RcDataIn, RelCommState};
use crate::view::{GroupView, ViewOp};

/// Which isolation policy the node's external events run under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackPolicy {
    /// No isolation (Cactus-without-locks baseline).
    Unsync,
    /// Fully serial computations (Appia baseline).
    Serial,
    /// `isolated M e` — VCAbasic.
    Basic,
    /// `isolated bound M e` — VCAbound.
    Bound,
    /// `isolated route M e` — VCAroute.
    Route,
    /// Conservative two-phase locking.
    TwoPhase,
}

/// Node tunables.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Isolation policy for external events.
    pub policy: StackPolicy,
    /// RelComm retransmission timeout.
    pub rto: Duration,
    /// Timer period (retransmission + failure detection).
    pub tick_interval: Duration,
    /// Failure-detector suspicion timeout.
    pub fd_timeout: Duration,
    /// Run the failure detector (off by default so fault-free workloads can
    /// fully quiesce).
    pub enable_fd: bool,
    /// Run the retransmission timer (on by default).
    pub enable_timers: bool,
    /// Initial group view (defaults to all sites of the network).
    pub initial_members: Option<Vec<SiteId>>,
    /// Worker threads per computation (1 keeps intra-computation event
    /// processing FIFO, which the delivery-order assertions rely on).
    pub intra_threads: usize,
    /// Record history for the isolation checker.
    pub record_history: bool,
    /// Artificial delay in RelComm's `view_change` handler (experiment E5's
    /// race-window widener; zero in normal operation).
    pub view_change_delay: Duration,
    /// Ablation knob (experiment E8): declare *every* microprotocol for
    /// every external event instead of the event-kind-specific tight sets.
    /// The paper notes that `M` "could be inferred statically" — this knob
    /// measures what that inference buys.
    pub declare_all: bool,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            policy: StackPolicy::Basic,
            rto: Duration::from_millis(25),
            tick_interval: Duration::from_millis(10),
            fd_timeout: Duration::from_millis(200),
            enable_fd: false,
            enable_timers: true,
            initial_members: None,
            intra_threads: 1,
            record_history: false,
            view_change_delay: Duration::ZERO,
            declare_all: false,
        }
    }
}

impl NodeConfig {
    /// Default config with the given policy.
    pub fn with_policy(policy: StackPolicy) -> Self {
        NodeConfig {
            policy,
            ..NodeConfig::default()
        }
    }
}

/// The kind of external event (selects the isolation declaration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExtKind {
    /// Inbound data frame whose cascade may reach the whole stack.
    DataFull,
    /// Inbound data frame carrying a plain user broadcast.
    DataUser,
    /// Inbound RelComm ack.
    Ack,
    /// Inbound heartbeat.
    Beat,
    /// Application reliable-broadcast request.
    RbRequest,
    /// Application atomic-broadcast request.
    AbRequest,
    /// Join/leave request.
    JoinLeave,
    /// Retransmission tick.
    RetrTick,
    /// Failure-detector tick.
    FdTick,
}

/// Precomputed declarations for each external-event kind.
struct DeclSets {
    all: Vec<ProtocolId>,
    relcomm_only: Vec<ProtocolId>,
    fd_only: Vec<ProtocolId>,
    user_cast: Vec<ProtocolId>,
    bounds_all: Vec<(ProtocolId, u64)>,
    bounds_relcomm: Vec<(ProtocolId, u64)>,
    bounds_fd: Vec<(ProtocolId, u64)>,
    bounds_user_cast: Vec<(ProtocolId, u64)>,
    routes: RouteTable,
}

struct RouteTable {
    data: RoutePattern,
    ack: RoutePattern,
    beat: RoutePattern,
    rb: RoutePattern,
    ab: RoutePattern,
    joinleave: RoutePattern,
    retr: RoutePattern,
    fd_tick: RoutePattern,
}

/// One site of the group-communication system.
pub struct Node {
    /// This node's site id.
    pub site: SiteId,
    rt: Runtime,
    ev: Events,
    net: NetHandle,
    cfg: NodeConfig,
    decls: DeclSets,
    app: ProtocolState<AppState>,
    membership: ProtocolState<MembershipState>,
    relcomm: ProtocolState<RelCommState>,
    relcast: ProtocolState<RelCastState>,
    abcast: ProtocolState<AbcastState>,
    fd: ProtocolState<FdState>,
    consensus: ProtocolState<ConsensusState>,
    stop: Arc<AtomicBool>,
    timer: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Node {
    /// Build the node, wire its stack, register it on the network, and (if
    /// enabled) start its timers.
    pub fn new(net: NetHandle, site: SiteId, cfg: NodeConfig) -> Arc<Node> {
        Node::build(net, site, cfg, None, None)
    }

    /// [`Node::new`] with a [`TraceSink`](samoa_core::TraceSink) attached to
    /// the node's runtime: every computation spawn, admission wait (with the
    /// blocking computation's identity), handler call, early release, and
    /// completion in this node's stack is delivered to `sink` as a
    /// structured event. Cheap enough to leave on in production; see
    /// `samoa_core::trace`.
    pub fn new_traced(
        net: NetHandle,
        site: SiteId,
        cfg: NodeConfig,
        sink: Arc<dyn samoa_core::TraceSink>,
    ) -> Arc<Node> {
        Node::build(net, site, cfg, None, Some(sink))
    }

    /// [`Node::new`] with a scheduling hook installed on the node's runtime,
    /// for `samoa-check`-style controlled exploration of the full protocol
    /// stack. Pair with a manual network
    /// ([`SimNet::new_manual`](samoa_net::SimNet::new_manual)) and
    /// `enable_timers: false` / `enable_fd: false` so every thread in the
    /// system is under the controller.
    pub fn new_hooked(
        net: NetHandle,
        site: SiteId,
        cfg: NodeConfig,
        hook: Arc<dyn samoa_core::SchedHook>,
    ) -> Arc<Node> {
        Node::build(net, site, cfg, Some(hook), None)
    }

    fn build(
        net: NetHandle,
        site: SiteId,
        cfg: NodeConfig,
        hook: Option<Arc<dyn samoa_core::SchedHook>>,
        trace: Option<Arc<dyn samoa_core::TraceSink>>,
    ) -> Arc<Node> {
        let view = match &cfg.initial_members {
            Some(m) => GroupView::initial(m.iter().copied()),
            None => GroupView::initial(net.sites()),
        };
        let n_sites = net.site_count() as u64;

        let mut b = StackBuilder::new();
        let p_relcomm = b.protocol("RelComm");
        let p_relcast = b.protocol("RelCast");
        let p_fd = b.protocol("FD");
        let p_consensus = b.protocol("Consensus");
        let p_abcast = b.protocol("ABcast");
        let p_membership = b.protocol("Membership");
        let p_app = b.protocol("App");
        let ev = Events::declare(&mut b);

        let relcomm_st =
            ProtocolState::new(p_relcomm, RelCommState::new(site, view.clone(), cfg.rto));
        let relcast_st = ProtocolState::new(p_relcast, RelCastState::new(site, view.clone()));
        let fd_st = ProtocolState::new(p_fd, FdState::new(site, view.clone(), cfg.fd_timeout));
        let consensus_st = ProtocolState::new(p_consensus, ConsensusState::new(site, view.clone()));
        let abcast_st = ProtocolState::new(p_abcast, AbcastState::new(site, view.clone()));
        let membership_st = ProtocolState::new(p_membership, MembershipState::new(view));
        let app_st = ProtocolState::new(p_app, AppState::default());

        if !cfg.view_change_delay.is_zero() {
            relcomm_st.write(|s| s.view_change_delay = cfg.view_change_delay);
        }

        let transport: Arc<dyn Transport> = Arc::new(net.clone());
        // RelCast registers before RelComm so that `triggerAll ViewChange`
        // updates the upper layer first — the §3 race window: RelCast fans
        // out using the new view while RelComm still holds the old one.
        relcast::register(&mut b, p_relcast, &ev, relcast_st.clone());
        relcomm::register(
            &mut b,
            p_relcomm,
            &ev,
            relcomm_st.clone(),
            Arc::clone(&transport),
        );
        fd::register(&mut b, p_fd, &ev, fd_st.clone(), transport);
        consensus::register(&mut b, p_consensus, &ev, consensus_st.clone());
        abcast::register(&mut b, p_abcast, &ev, abcast_st.clone());
        membership::register(&mut b, p_membership, &ev, membership_st.clone());
        app::register(&mut b, p_app, &ev, app_st.clone());

        let stack = b.build();

        // `isolated route` patterns, one per external event, cut from the
        // stack's static call graph (each handler declares the events it
        // triggers; see `samoa_core::analysis`). This replaces a hand-kept
        // edge list that had to mirror every handler body.
        debug_assert!(stack.has_full_trigger_metadata());
        let routes = RouteTable {
            data: infer_route(&stack, ev.rc_data),
            ack: infer_route(&stack, ev.rc_ack),
            beat: infer_route(&stack, ev.fd_beat),
            rb: infer_route(&stack, ev.bcast),
            ab: infer_route(&stack, ev.abcast),
            joinleave: infer_route(&stack, ev.join_leave),
            retr: infer_route(&stack, ev.retransmit_tick),
            fd_tick: infer_route(&stack, ev.fd_tick),
        };

        let all = vec![
            p_relcomm,
            p_relcast,
            p_fd,
            p_consensus,
            p_abcast,
            p_membership,
            p_app,
        ];
        let user_cast = vec![p_relcomm, p_relcast, p_abcast, p_app];
        let generous = 8 * n_sites + 16;
        let bounds = |pids: &[ProtocolId]| -> Vec<(ProtocolId, u64)> {
            pids.iter().map(|&p| (p, generous)).collect()
        };
        let decls = DeclSets {
            bounds_all: bounds(&all),
            bounds_relcomm: bounds(&[p_relcomm]),
            bounds_fd: bounds(&[p_fd]),
            bounds_user_cast: bounds(&user_cast),
            all,
            relcomm_only: vec![p_relcomm],
            fd_only: vec![p_fd],
            user_cast,
            routes,
        };

        let rt_cfg = RuntimeConfig {
            record_history: cfg.record_history,
            max_threads_per_computation: cfg.intra_threads.max(1),
            ..RuntimeConfig::default()
        };
        let rt = match (hook, trace) {
            (Some(h), _) => Runtime::with_hook(stack, rt_cfg, h),
            (None, Some(s)) => Runtime::with_trace(stack, rt_cfg, s),
            (None, None) => Runtime::with_config(stack, rt_cfg),
        };

        let node = Arc::new(Node {
            site,
            rt,
            ev,
            net: net.clone(),
            cfg,
            decls,
            app: app_st,
            membership: membership_st,
            relcomm: relcomm_st,
            relcast: relcast_st,
            abcast: abcast_st,
            fd: fd_st,
            consensus: consensus_st,
            stop: Arc::new(AtomicBool::new(false)),
            timer: Mutex::new(None),
        });

        // Network Module: decode, classify, spawn an isolated computation.
        {
            let weak = Arc::downgrade(&node);
            net.register(site, move |dg| {
                if let Some(node) = weak.upgrade() {
                    node.on_datagram(dg.from, dg.payload);
                }
            });
        }

        // Timer Module.
        if node.cfg.enable_timers {
            let weak: Weak<Node> = Arc::downgrade(&node);
            let stop = Arc::clone(&node.stop);
            let interval = node.cfg.tick_interval;
            let fd_enabled = node.cfg.enable_fd;
            let t = std::thread::Builder::new()
                .name(format!("node-{}-timer", site.0))
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        std::thread::sleep(interval);
                        let Some(node) = weak.upgrade() else { break };
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        node.spawn_external(
                            ExtKind::RetrTick,
                            node.ev.retransmit_tick,
                            EventData::empty(),
                        );
                        if fd_enabled {
                            node.spawn_external(
                                ExtKind::FdTick,
                                node.ev.fd_tick,
                                EventData::empty(),
                            );
                        }
                    }
                })
                .expect("spawn timer thread");
            *node.timer.lock() = Some(t);
        }

        node
    }

    /// Handle one inbound datagram (the Network Module).
    fn on_datagram(&self, from: SiteId, payload: Bytes) {
        match Wire::decode(payload) {
            Ok(Wire::Data { seq, payload }) => {
                let kind = match &payload {
                    Payload::Cast(c) if matches!(c.data, CastData::User(_)) => ExtKind::DataUser,
                    _ => ExtKind::DataFull,
                };
                self.spawn_external(
                    kind,
                    self.ev.rc_data,
                    EventData::new(RcDataIn {
                        sender: from,
                        seq,
                        payload,
                    }),
                );
            }
            Ok(Wire::Ack { seq }) => {
                self.spawn_external(
                    ExtKind::Ack,
                    self.ev.rc_ack,
                    EventData::new(RcAckIn { sender: from, seq }),
                );
            }
            Ok(Wire::Heartbeat) => {
                self.spawn_external(ExtKind::Beat, self.ev.fd_beat, EventData::new(from));
            }
            Err(_) => { /* malformed datagram: drop, like a real UDP stack */ }
        }
    }

    /// Spawn the isolated computation for an external event, declaring
    /// according to the node's policy (see module docs).
    fn spawn_external(&self, kind: ExtKind, event: EventType, data: EventData) {
        let d = &self.decls;
        let (basic, bound, route): (&[ProtocolId], &[(ProtocolId, u64)], &RoutePattern) = match kind
        {
            ExtKind::DataFull | ExtKind::AbRequest | ExtKind::JoinLeave => {
                let route = match kind {
                    ExtKind::DataFull => &d.routes.data,
                    ExtKind::AbRequest => &d.routes.ab,
                    _ => &d.routes.joinleave,
                };
                (&d.all, &d.bounds_all, route)
            }
            ExtKind::DataUser => (&d.user_cast, &d.bounds_user_cast, &d.routes.data),
            ExtKind::RbRequest => (&d.user_cast, &d.bounds_user_cast, &d.routes.rb),
            ExtKind::Ack => (&d.relcomm_only, &d.bounds_relcomm, &d.routes.ack),
            ExtKind::RetrTick => (&d.relcomm_only, &d.bounds_relcomm, &d.routes.retr),
            ExtKind::Beat => (&d.fd_only, &d.bounds_fd, &d.routes.beat),
            ExtKind::FdTick => (&d.all, &d.bounds_all, &d.routes.fd_tick),
        };
        // E8 ablation: coarse declarations serialise unrelated event kinds.
        let (basic, bound) = if self.cfg.declare_all {
            (&d.all[..], &d.bounds_all[..])
        } else {
            (basic, bound)
        };
        let body = move |ctx: &Ctx| ctx.trigger(event, data);
        match self.cfg.policy {
            StackPolicy::Unsync => self.rt.spawn(Decl::Unsync, body),
            StackPolicy::Serial => self.rt.spawn(Decl::Serial, body),
            StackPolicy::Basic => self.rt.spawn(Decl::Basic(basic), body),
            StackPolicy::Bound => self.rt.spawn(Decl::Bound(bound), body),
            StackPolicy::Route => self.rt.spawn(Decl::Route(route), body),
            StackPolicy::TwoPhase => self.rt.spawn(Decl::TwoPhase(basic), body),
        };
    }

    /// Application request: reliable broadcast (RelCast).
    pub fn rbcast(&self, data: impl Into<Bytes>) {
        self.spawn_external(
            ExtKind::RbRequest,
            self.ev.bcast,
            EventData::new(CastData::User(data.into())),
        );
    }

    /// Application request: atomic broadcast.
    pub fn abcast(&self, data: impl Into<Bytes>) {
        self.spawn_external(
            ExtKind::AbRequest,
            self.ev.abcast,
            EventData::new(AbPayload::User(data.into())),
        );
    }

    /// Request that `site` join the group.
    pub fn request_join(&self, site: SiteId) {
        self.spawn_external(
            ExtKind::JoinLeave,
            self.ev.join_leave,
            EventData::new((ViewOp::Join, site)),
        );
    }

    /// Request that `site` leave the group.
    pub fn request_leave(&self, site: SiteId) {
        self.spawn_external(
            ExtKind::JoinLeave,
            self.ev.join_leave,
            EventData::new((ViewOp::Leave, site)),
        );
    }

    /// Reliable-broadcast deliveries observed by the application.
    pub fn rb_delivered(&self) -> Vec<(SiteId, Bytes)> {
        self.app.read(|s| s.rb_delivered.clone())
    }

    /// Atomic-broadcast deliveries observed by the application (the total
    /// order).
    pub fn ab_delivered(&self) -> Vec<(SiteId, Bytes)> {
        self.app.read(|s| s.ab_delivered.clone())
    }

    /// Views the application saw installed.
    pub fn observed_views(&self) -> Vec<GroupView> {
        self.app.read(|s| s.views.clone())
    }

    /// Membership's current view.
    pub fn current_view(&self) -> GroupView {
        self.membership.read(|s| s.view().clone())
    }

    /// RelComm retransmission count (diagnostics).
    pub fn retransmissions(&self) -> u64 {
        self.relcomm.read(|s| s.retransmissions)
    }

    /// RelComm messages sent but not yet acknowledged (diagnostics).
    pub fn relcomm_pending(&self) -> usize {
        self.relcomm.read(|s| s.pending_count())
    }

    /// Sends RelComm discarded because the target was outside its view
    /// (the §3 race indicator under `Unsync`; see EXPERIMENTS.md E5).
    pub fn relcomm_discards(&self) -> u64 {
        self.relcomm.read(|s| s.discarded)
    }

    /// Distinct RelCast messages seen (diagnostics).
    pub fn cast_seen(&self) -> usize {
        self.relcast.read(|s| s.seen_count())
    }

    /// Undelivered atomic-broadcast requests (diagnostics).
    pub fn ab_pending(&self) -> usize {
        self.abcast.read(|s| s.pending_count())
    }

    /// Sites this node's failure detector currently suspects.
    pub fn suspects(&self) -> Vec<SiteId> {
        self.fd.read(|s| s.suspects())
    }

    /// Live consensus instances (diagnostics).
    pub fn consensus_instances(&self) -> usize {
        self.consensus.read(|s| s.live_instances())
    }

    /// The node's SAMOA runtime (for quiescing and isolation checks).
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }

    /// The stack's event types (for static analysis and direct injection).
    pub fn events(&self) -> &Events {
        &self.ev
    }

    /// The network this node is attached to.
    pub fn net(&self) -> &NetHandle {
        &self.net
    }

    /// Stop the timer thread. Idempotent.
    pub fn stop_timers(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.timer.lock().take() {
            let _ = t.join();
        }
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The timer thread holds only a Weak reference and wakes every
        // tick_interval, so it exits on its own; join if still present.
        if let Some(t) = self.timer.lock().take() {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("site", &self.site)
            .field("policy", &self.cfg.policy)
            .finish()
    }
}

/// A bundle of `n` nodes over one simulated network.
pub struct Cluster {
    net: SimNet,
    nodes: Vec<Arc<Node>>,
}

impl Cluster {
    /// Build `n` nodes over a fresh network.
    pub fn new(n: usize, net_cfg: NetConfig, node_cfg: NodeConfig) -> Cluster {
        let net = SimNet::new(n, net_cfg);
        let nodes = (0..n as u16)
            .map(|i| Node::new(net.handle(), SiteId(i), node_cfg.clone()))
            .collect();
        Cluster { net, nodes }
    }

    /// [`Cluster::new`] with a [`TraceSink`](samoa_core::TraceSink) per
    /// node: `make_sink` is called once per site and the returned sink is
    /// attached to that node's runtime ([`Node::new_traced`]). Use one
    /// shared buffer for a merged stream, or one buffer per site to export
    /// each node as its own track group.
    pub fn new_traced(
        n: usize,
        net_cfg: NetConfig,
        node_cfg: NodeConfig,
        make_sink: impl Fn(SiteId) -> Arc<dyn samoa_core::TraceSink>,
    ) -> Cluster {
        let net = SimNet::new(n, net_cfg);
        let nodes = (0..n as u16)
            .map(|i| {
                Node::new_traced(
                    net.handle(),
                    SiteId(i),
                    node_cfg.clone(),
                    make_sink(SiteId(i)),
                )
            })
            .collect();
        Cluster { net, nodes }
    }

    /// Node `i`.
    pub fn node(&self, i: usize) -> &Arc<Node> {
        &self.nodes[i]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Arc<Node>] {
        &self.nodes
    }

    /// The network handle (for fault injection and stats).
    pub fn net(&self) -> NetHandle {
        self.net.handle()
    }

    /// Drain the whole system to a fixed point: no datagrams in flight and
    /// no computation running anywhere, stable across one full round.
    ///
    /// Only terminates for workloads that stop generating traffic (the
    /// failure detector's heartbeats never stop; use sleeps and polling for
    /// FD scenarios instead).
    pub fn settle(&self) {
        loop {
            let before = self.net.total_stats().sent;
            self.net.quiesce();
            for n in &self.nodes {
                n.runtime().quiesce();
            }
            self.net.quiesce();
            let after = self.net.total_stats().sent;
            if before == after {
                // One more confirmation round: runtimes idle and no new
                // sends appeared while we checked.
                let confirm = self.net.total_stats().sent;
                for n in &self.nodes {
                    n.runtime().quiesce();
                }
                if self.net.total_stats().sent == confirm {
                    return;
                }
            }
        }
    }

    /// Stop all timers and shut the network down.
    pub fn shutdown(&mut self) {
        for n in &self.nodes {
            n.stop_timers();
        }
        self.net.shutdown();
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.nodes.len())
            .finish()
    }
}
