//! # samoa-bench — benchmark harness for the SAMOA reproduction
//!
//! Workload generators, experiment drivers, and table rendering for the
//! experiments of DESIGN.md §3 and EXPERIMENTS.md (E1–E12), including the
//! replicated-cluster client-fleet driver of [`cluster`]. The `tables`
//! binary prints every experiment's table; the Criterion benches under
//! `benches/` measure the same workloads statistically.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod experiments;
pub mod gc;
pub mod report;
pub mod synth;
