//! # samoa-bench — benchmark harness for the SAMOA reproduction
//!
//! Workload generators, experiment drivers, and table rendering for the six
//! experiments of DESIGN.md §3 (E1–E6). The `tables` binary prints every
//! experiment's table; the Criterion benches under `benches/` measure the
//! same workloads statistically.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod gc;
pub mod report;
pub mod synth;
