//! Synthetic microprotocol stacks and workload drivers for experiments
//! E3 (concurrency grain), E4 (policy parallelism on pipelines), and E6
//! (baseline comparison over a conflict sweep).

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use samoa_core::prelude::*;

/// How a handler burns its per-visit work budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkKind {
    /// CPU-bound: spin for the duration (models in-memory protocol work;
    /// exposes multiprocessor speedups, the paper's motivation #3).
    Cpu,
    /// I/O-bound: sleep for the duration (models the paper's "slow I/O
    /// operations in background", motivation #1).
    Io,
}

/// Busy-wait for `d` (coarse; used for simulated CPU work only).
pub fn spin(d: Duration) {
    let end = Instant::now() + d;
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

/// A flat stack of `n` independent microprotocols; protocol `i`'s handler
/// burns the configured work and bumps a counter.
pub struct FlatStack {
    /// The runtime.
    pub rt: Runtime,
    /// One microprotocol per slot.
    pub protocols: Vec<ProtocolId>,
    /// Event `i` triggers protocol `i`'s handler.
    pub events: Vec<EventType>,
    /// Visit counters.
    pub counters: Vec<ProtocolState<u64>>,
}

/// Build a flat stack whose handlers burn `work` per visit.
pub fn flat_stack(n: usize, work: Duration, kind: WorkKind) -> FlatStack {
    let mut b = StackBuilder::new();
    let mut protocols = Vec::new();
    let mut events = Vec::new();
    let mut counters = Vec::new();
    for i in 0..n {
        let p = b.protocol(&format!("P{i}"));
        let e = b.event(&format!("E{i}"));
        let c = ProtocolState::new(p, 0u64);
        {
            let c = c.clone();
            b.bind(e, p, &format!("h{i}"), move |ctx, _| {
                match kind {
                    WorkKind::Cpu => spin(work),
                    WorkKind::Io => {
                        if !work.is_zero() {
                            std::thread::sleep(work)
                        }
                    }
                }
                c.with(ctx, |v| *v += 1);
                Ok(())
            });
        }
        protocols.push(p);
        events.push(e);
        counters.push(c);
    }
    FlatStack {
        rt: Runtime::new(b.build()),
        protocols,
        events,
        counters,
    }
}

/// A pipeline stack: stage `i`'s handler burns work and *asynchronously*
/// triggers stage `i + 1` (asynchronous hand-off is what lets `VCAbound`
/// and `VCAroute` release a finished stage early; a synchronous chain keeps
/// the first stage's handler on the stack until the whole chain finishes,
/// making early release impossible by construction).
pub struct PipelineStack {
    /// The runtime.
    pub rt: Runtime,
    /// One microprotocol per stage.
    pub protocols: Vec<ProtocolId>,
    /// The entry event (stage 0).
    pub entry: EventType,
    /// Handler ids, stage order (for routing patterns).
    pub handlers: Vec<HandlerId>,
    /// Per-stage visit counters.
    pub counters: Vec<ProtocolState<u64>>,
}

/// Build a pipeline of `stages` stages with `work` per stage.
pub fn pipeline_stack(stages: usize, work: Duration, kind: WorkKind) -> PipelineStack {
    pipeline_stack_inner(stages, work, kind, None)
}

/// [`pipeline_stack`] with a [`TraceSink`] installed on the runtime: every
/// run through the returned stack records admission waits, handler service
/// times, and early releases for [`ContentionProfile`] aggregation.
pub fn pipeline_stack_with_sink(
    stages: usize,
    work: Duration,
    kind: WorkKind,
    sink: Arc<dyn TraceSink>,
) -> PipelineStack {
    pipeline_stack_inner(stages, work, kind, Some(sink))
}

fn pipeline_stack_inner(
    stages: usize,
    work: Duration,
    kind: WorkKind,
    sink: Option<Arc<dyn TraceSink>>,
) -> PipelineStack {
    let mut b = StackBuilder::new();
    let protocols: Vec<ProtocolId> = (0..stages).map(|i| b.protocol(&format!("S{i}"))).collect();
    let events: Vec<EventType> = (0..stages).map(|i| b.event(&format!("Stage{i}"))).collect();
    let counters: Vec<ProtocolState<u64>> = protocols
        .iter()
        .map(|&p| ProtocolState::new(p, 0u64))
        .collect();
    let mut handlers = Vec::new();
    for i in 0..stages {
        let c = counters[i].clone();
        let next = events.get(i + 1).copied();
        handlers.push(b.bind(
            events[i],
            protocols[i],
            &format!("stage{i}"),
            move |ctx, ev| {
                match kind {
                    WorkKind::Cpu => spin(work),
                    WorkKind::Io => {
                        if !work.is_zero() {
                            std::thread::sleep(work)
                        }
                    }
                }
                c.with(ctx, |v| *v += 1);
                if let Some(next) = next {
                    ctx.async_trigger(next, ev.clone())?;
                }
                Ok(())
            },
        ));
    }
    let stack = b.build();
    let rt = match sink {
        Some(s) => Runtime::with_trace(stack, RuntimeConfig::default(), s),
        None => Runtime::new(stack),
    };
    PipelineStack {
        rt,
        protocols,
        entry: events[0],
        handlers,
        counters,
    }
}

impl PipelineStack {
    /// The chain routing pattern (stage0 as root).
    pub fn route_pattern(&self) -> RoutePattern {
        let mut pat = RoutePattern::new().root(self.handlers[0]);
        for w in self.handlers.windows(2) {
            pat = pat.edge(w[0], w[1]);
        }
        pat
    }

    /// The `isolated bound` declaration: each stage visited exactly once.
    pub fn bound_decl(&self) -> Vec<(ProtocolId, u64)> {
        self.protocols.iter().map(|&p| (p, 1)).collect()
    }
}

/// Policy selector for the synthetic drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchPolicy {
    /// Cactus-without-locks baseline (no isolation; unsafe in general).
    Unsync,
    /// Appia baseline (serial computations).
    Serial,
    /// Conservative two-phase locking.
    TwoPhase,
    /// VCAbasic over the visited protocols.
    Basic,
    /// VCAbound with exact per-protocol bounds.
    Bound,
    /// VCAroute over the pipeline's chain pattern (pipelines only).
    Route,
}

impl BenchPolicy {
    /// Display label used by the tables.
    pub fn label(self) -> &'static str {
        match self {
            BenchPolicy::Unsync => "unsync",
            BenchPolicy::Serial => "serial",
            BenchPolicy::TwoPhase => "two-phase",
            BenchPolicy::Basic => "vca-basic",
            BenchPolicy::Bound => "vca-bound",
            BenchPolicy::Route => "vca-route",
        }
    }
}

/// A generated flat-stack workload: each computation visits a list of
/// protocol slots (each slot visited exactly once per computation).
pub struct FlatWorkload {
    /// Per-computation visit lists (indices into the stack).
    pub visits: Vec<Vec<usize>>,
}

/// Generate a conflict-parameterised workload: each computation visits
/// `per_comp` distinct protocols; with probability `hot` its first visit is
/// protocol 0 (the shared hot spot), the rest are drawn uniformly.
pub fn flat_workload(
    n_protocols: usize,
    n_comps: usize,
    per_comp: usize,
    hot: f64,
    seed: u64,
) -> FlatWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let per_comp = per_comp.min(n_protocols);
    let visits = (0..n_comps)
        .map(|_| {
            let mut v: Vec<usize> = Vec::with_capacity(per_comp);
            if hot > 0.0 && rng.gen_bool(hot) {
                v.push(0);
            }
            while v.len() < per_comp {
                let p = rng.gen_range(0..n_protocols);
                if !v.contains(&p) {
                    v.push(p);
                }
            }
            v
        })
        .collect();
    FlatWorkload { visits }
}

/// Run a flat workload under `policy` with `injectors` spawner threads;
/// returns the wall-clock time from first spawn to full quiescence.
pub fn run_flat(
    stack: &FlatStack,
    wl: &FlatWorkload,
    policy: BenchPolicy,
    injectors: usize,
) -> Duration {
    let rt = stack.rt.clone();
    let events = Arc::new(stack.events.clone());
    let protocols = Arc::new(stack.protocols.clone());
    let chunks: Vec<Vec<Vec<usize>>> = split_round_robin(&wl.visits, injectors.max(1));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for chunk in &chunks {
            let rt = rt.clone();
            let events = Arc::clone(&events);
            let protocols = Arc::clone(&protocols);
            scope.spawn(move || {
                for visit in chunk {
                    let decl: Vec<ProtocolId> = visit.iter().map(|&i| protocols[i]).collect();
                    let evs: Vec<EventType> = visit.iter().map(|&i| events[i]).collect();
                    let body = move |ctx: &Ctx| {
                        for e in &evs {
                            ctx.trigger(*e, EventData::empty())?;
                        }
                        Ok(())
                    };
                    match policy {
                        BenchPolicy::Unsync => rt.spawn(Decl::Unsync, body),
                        BenchPolicy::Serial => rt.spawn(Decl::Serial, body),
                        BenchPolicy::TwoPhase => rt.spawn(Decl::TwoPhase(&decl), body),
                        BenchPolicy::Basic => rt.spawn(Decl::Basic(&decl), body),
                        BenchPolicy::Bound => {
                            let bd: Vec<(ProtocolId, u64)> = decl.iter().map(|&p| (p, 1)).collect();
                            rt.spawn(Decl::Bound(&bd), body)
                        }
                        BenchPolicy::Route => {
                            unreachable!("route applies to pipeline workloads")
                        }
                    };
                }
            });
        }
    });
    rt.quiesce();
    start.elapsed()
}

/// Run `n_comps` computations through a pipeline under `policy`; returns
/// the wall-clock time from first spawn to full quiescence.
pub fn run_pipeline(
    stack: &PipelineStack,
    n_comps: usize,
    policy: BenchPolicy,
    injectors: usize,
) -> Duration {
    let rt = stack.rt.clone();
    let entry = stack.entry;
    let decl = stack.protocols.clone();
    let bounds = stack.bound_decl();
    let pattern = stack.route_pattern();
    let per: Vec<usize> = split_counts(n_comps, injectors.max(1));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for &count in &per {
            let rt = rt.clone();
            let decl = decl.clone();
            let bounds = bounds.clone();
            let pattern = pattern.clone();
            scope.spawn(move || {
                for _ in 0..count {
                    let body = move |ctx: &Ctx| ctx.trigger(entry, EventData::empty());
                    match policy {
                        BenchPolicy::Unsync => rt.spawn(Decl::Unsync, body),
                        BenchPolicy::Serial => rt.spawn(Decl::Serial, body),
                        BenchPolicy::TwoPhase => rt.spawn(Decl::TwoPhase(&decl), body),
                        BenchPolicy::Basic => rt.spawn(Decl::Basic(&decl), body),
                        BenchPolicy::Bound => rt.spawn(Decl::Bound(&bounds), body),
                        BenchPolicy::Route => rt.spawn(Decl::Route(&pattern), body),
                    };
                }
            });
        }
    });
    rt.quiesce();
    start.elapsed()
}

/// Run `n_comps` computations through the pipeline from a single injector,
/// spawning one every `stagger`; returns the wall time to quiescence.
///
/// With `work < stagger < stages × work` this is exactly the schedule where
/// Rule 4 pays: `VCAbasic` holds every stage until Rule 3 completion so the
/// next computation blocks at stage 0, while `VCAbound`/`VCAroute` released
/// stage 0 long before the next spawn arrives.
pub fn run_pipeline_staggered(
    stack: &PipelineStack,
    n_comps: usize,
    policy: BenchPolicy,
    stagger: Duration,
) -> Duration {
    let rt = stack.rt.clone();
    let entry = stack.entry;
    let decl = stack.protocols.clone();
    let bounds = stack.bound_decl();
    let pattern = stack.route_pattern();
    let start = Instant::now();
    for i in 0..n_comps {
        if i > 0 && !stagger.is_zero() {
            std::thread::sleep(stagger);
        }
        let body = move |ctx: &Ctx| ctx.trigger(entry, EventData::empty());
        match policy {
            BenchPolicy::Unsync => rt.spawn(Decl::Unsync, body),
            BenchPolicy::Serial => rt.spawn(Decl::Serial, body),
            BenchPolicy::TwoPhase => rt.spawn(Decl::TwoPhase(&decl), body),
            BenchPolicy::Basic => rt.spawn(Decl::Basic(&decl), body),
            BenchPolicy::Bound => rt.spawn(Decl::Bound(&bounds), body),
            BenchPolicy::Route => rt.spawn(Decl::Route(&pattern), body),
        };
    }
    rt.quiesce();
    start.elapsed()
}

/// A single-microprotocol stack with a read-only `lookup` handler and a
/// read-write `update` handler — the workload for the §7 isolation-levels
/// extension (experiment E7).
pub struct RwStack {
    /// The runtime.
    pub rt: Runtime,
    /// The registry microprotocol.
    pub registry: ProtocolId,
    /// Event bound to the read-only handler.
    pub lookup: EventType,
    /// Event bound to the read-write handler.
    pub update: EventType,
    /// The value the writers bump.
    pub value: ProtocolState<u64>,
}

/// Build the read/write stack; both handlers burn `work` (I/O-style).
pub fn rw_stack(work: Duration) -> RwStack {
    let mut b = StackBuilder::new();
    let registry = b.protocol("Registry");
    let lookup = b.event("Lookup");
    let update = b.event("Update");
    let value = ProtocolState::new(registry, 0u64);
    {
        let value = value.clone();
        b.bind_read_only(lookup, registry, "lookup", move |ctx, _| {
            let _ = value.read_with(ctx, |v| *v);
            if !work.is_zero() {
                std::thread::sleep(work);
            }
            Ok(())
        });
    }
    {
        let value = value.clone();
        b.bind(update, registry, "update", move |ctx, _| {
            if !work.is_zero() {
                std::thread::sleep(work);
            }
            value.with(ctx, |v| *v += 1);
            Ok(())
        });
    }
    RwStack {
        rt: Runtime::new(b.build()),
        registry,
        lookup,
        update,
        value,
    }
}

/// Run a read-heavy workload: computation `i` writes when
/// `i % write_every == 0`, otherwise reads. With `use_read_mode` the readers
/// declare [`AccessMode::Read`] and share; without it everything declares
/// write mode (the paper's original semantics). Returns the wall time.
pub fn run_rw(
    stack: &RwStack,
    n_comps: usize,
    write_every: usize,
    use_read_mode: bool,
    injectors: usize,
) -> Duration {
    let rt = stack.rt.clone();
    let (registry, lookup, update) = (stack.registry, stack.lookup, stack.update);
    let per: Vec<(usize, usize)> = {
        // (start, count) slices of the computation index space.
        let n = injectors.max(1);
        let mut out = Vec::new();
        let mut start = 0;
        for i in 0..n {
            let count = n_comps / n + usize::from(i < n_comps % n);
            out.push((start, count));
            start += count;
        }
        out
    };
    let start_t = Instant::now();
    std::thread::scope(|scope| {
        for &(start, count) in &per {
            let rt = rt.clone();
            scope.spawn(move || {
                for i in start..start + count {
                    let is_write = i % write_every == 0;
                    if is_write {
                        rt.spawn_isolated(&[registry], move |ctx| {
                            ctx.trigger(update, EventData::empty())
                        });
                    } else if use_read_mode {
                        rt.spawn_isolated_rw(&[(registry, AccessMode::Read)], move |ctx| {
                            ctx.trigger(lookup, EventData::empty())
                        });
                    } else {
                        rt.spawn_isolated(&[registry], move |ctx| {
                            ctx.trigger(lookup, EventData::empty())
                        });
                    }
                }
            });
        }
    });
    rt.quiesce();
    start_t.elapsed()
}

/// Experiment E9: the paper's two algorithm families head to head on an
/// identical read-modify-write workload. Both run `n_comps` computations
/// from `injectors` threads, each computation touching one slot (the hot
/// slot with probability `hot`), reading, working for `work`, writing.
pub mod families {
    use super::*;
    use samoa_core::optimistic::{OccCell, OccRuntime};

    /// Result of one family run.
    #[derive(Debug, Clone, Copy)]
    pub struct FamilyOutcome {
        /// Wall-clock time.
        pub wall: Duration,
        /// Aborted attempts (0 for the versioning family — it never aborts).
        pub aborts: u64,
    }

    fn slot_choices(n_slots: usize, n_comps: usize, hot: f64, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n_comps)
            .map(|_| {
                if hot > 0.0 && rng.gen_bool(hot) {
                    0
                } else {
                    rng.gen_range(0..n_slots)
                }
            })
            .collect()
    }

    /// Optimistic family (rollback/retry).
    pub fn run_occ(
        n_slots: usize,
        n_comps: usize,
        hot: f64,
        work: Duration,
        kind: WorkKind,
        injectors: usize,
        seed: u64,
    ) -> FamilyOutcome {
        let rt = OccRuntime::new();
        let cells: Vec<OccCell<u64>> = (0..n_slots).map(|_| OccCell::new(0)).collect();
        let choices = slot_choices(n_slots, n_comps, hot, seed);
        let chunks: Vec<Vec<usize>> = {
            let mut out = vec![Vec::new(); injectors.max(1)];
            for (i, &c) in choices.iter().enumerate() {
                out[i % injectors.max(1)].push(c);
            }
            out
        };
        let start = Instant::now();
        std::thread::scope(|scope| {
            for chunk in &chunks {
                let rt = rt.clone();
                let cells = cells.clone();
                scope.spawn(move || {
                    for &slot in chunk {
                        rt.execute(|tx| {
                            let v = cells[slot].read(tx, |c| *c);
                            match kind {
                                WorkKind::Cpu => spin(work),
                                WorkKind::Io => {
                                    if !work.is_zero() {
                                        std::thread::sleep(work)
                                    }
                                }
                            }
                            cells[slot].write(tx, |c| *c = v + 1);
                            Ok(())
                        })
                        .expect("occ execute");
                    }
                });
            }
        });
        let wall = start.elapsed();
        assert_eq!(
            cells.iter().map(|c| c.read_committed(|v| *v)).sum::<u64>(),
            n_comps as u64,
            "occ lost updates"
        );
        FamilyOutcome {
            wall,
            aborts: rt.aborts(),
        }
    }

    /// Versioning family (VCAbasic; blocking `isolated` so both families
    /// have exactly `injectors` concurrent computations).
    pub fn run_vca(
        n_slots: usize,
        n_comps: usize,
        hot: f64,
        work: Duration,
        kind: WorkKind,
        injectors: usize,
        seed: u64,
    ) -> FamilyOutcome {
        let stack = flat_stack(n_slots, work, kind);
        let choices = slot_choices(n_slots, n_comps, hot, seed);
        let chunks: Vec<Vec<usize>> = {
            let mut out = vec![Vec::new(); injectors.max(1)];
            for (i, &c) in choices.iter().enumerate() {
                out[i % injectors.max(1)].push(c);
            }
            out
        };
        let rt = stack.rt.clone();
        let protocols = Arc::new(stack.protocols.clone());
        let events = Arc::new(stack.events.clone());
        let start = Instant::now();
        std::thread::scope(|scope| {
            for chunk in &chunks {
                let rt = rt.clone();
                let protocols = Arc::clone(&protocols);
                let events = Arc::clone(&events);
                scope.spawn(move || {
                    for &slot in chunk {
                        rt.isolated(&[protocols[slot]], |ctx| {
                            ctx.trigger(events[slot], EventData::empty())
                        })
                        .expect("vca isolated");
                    }
                });
            }
        });
        let wall = start.elapsed();
        assert_eq!(
            total_visits(&stack.counters),
            n_comps as u64,
            "vca lost visits"
        );
        FamilyOutcome { wall, aborts: 0 }
    }
}

/// Total visits across the stack's counters (workload sanity check).
pub fn total_visits(counters: &[ProtocolState<u64>]) -> u64 {
    counters.iter().map(|c| c.read(|v| *v)).sum()
}

fn split_round_robin<T: Clone>(items: &[T], n: usize) -> Vec<Vec<T>> {
    let mut out = vec![Vec::new(); n];
    for (i, item) in items.iter().enumerate() {
        out[i % n].push(item.clone());
    }
    out
}

fn split_counts(total: usize, n: usize) -> Vec<usize> {
    (0..n)
        .map(|i| total / n + usize::from(i < total % n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_workload_respects_parameters() {
        let wl = flat_workload(8, 20, 3, 1.0, 1);
        assert_eq!(wl.visits.len(), 20);
        for v in &wl.visits {
            assert_eq!(v.len(), 3);
            assert!(v.contains(&0), "hot=1.0 must include the hot protocol");
            let mut dedup = v.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "visits must be distinct");
        }
    }

    #[test]
    fn run_flat_executes_every_visit() {
        let stack = flat_stack(4, Duration::ZERO, WorkKind::Cpu);
        let wl = flat_workload(4, 12, 2, 0.5, 2);
        let expected: u64 = wl.visits.iter().map(|v| v.len() as u64).sum();
        for policy in [
            BenchPolicy::Basic,
            BenchPolicy::Bound,
            BenchPolicy::Serial,
            BenchPolicy::TwoPhase,
            BenchPolicy::Unsync,
        ] {
            let d = run_flat(&stack, &wl, policy, 2);
            assert!(d > Duration::ZERO);
        }
        assert_eq!(total_visits(&stack.counters), expected * 5);
    }

    #[test]
    fn run_pipeline_executes_all_stages() {
        let stack = pipeline_stack(3, Duration::ZERO, WorkKind::Cpu);
        for policy in [
            BenchPolicy::Basic,
            BenchPolicy::Bound,
            BenchPolicy::Route,
            BenchPolicy::Serial,
        ] {
            run_pipeline(&stack, 5, policy, 2);
            let _ = policy;
        }
        assert_eq!(total_visits(&stack.counters), 3 * 5 * 4);
    }

    #[test]
    fn split_helpers_cover_everything() {
        assert_eq!(split_counts(10, 3), vec![4, 3, 3]);
        let rr = split_round_robin(&[1, 2, 3, 4, 5], 2);
        assert_eq!(rr[0], vec![1, 3, 5]);
        assert_eq!(rr[1], vec![2, 4]);
    }
}
