//! Client-fleet load driver for replicated KV clusters (experiment E12).
//!
//! A fleet of closed-loop client threads issues `put`/`get`/`cas` commands
//! against a running cluster — each client is homed on one site, submits an
//! operation, waits for its abcast-ordered completion, and only then issues
//! the next. The driver measures committed throughput and p50/p95/p99
//! completion latency (via [`samoa_core::percentile_us`], the same
//! nearest-rank percentile the trace layer's `ContentionProfile` reports),
//! then verifies that every site converged to an identical state machine.
//!
//! Two backends run the identical workload through the `Transport` seam:
//! [`Backend::Sim`] (the in-process simulated network) and [`Backend::Tcp`]
//! (real framed localhost sockets). [`failover_run`] additionally kills the
//! round-0 consensus coordinator mid-load and measures how long the
//! survivors take to exclude it from the view and commit again.
//!
//! Convergence is always checked by deadline-bounded polling, never by
//! `Cluster::settle` — real sockets have no quiescence oracle, and using
//! one idiom for both backends keeps the measurements comparable.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use samoa_core::percentile_us;
use samoa_net::{NetConfig, SiteId};
use samoa_proto::{Cluster, ClusterMetrics, Node, NodeConfig, Observe, StackPolicy, TcpCluster};

/// Which transport backend carries the cluster's datagrams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The in-process simulated network (`SimNet`).
    Sim,
    /// Real length-prefixed framed TCP sockets on localhost (`TcpNet`).
    Tcp,
}

impl Backend {
    /// Human-readable label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Tcp => "tcp",
        }
    }
}

/// Parameters of one closed-loop fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Transport backend under test.
    pub backend: Backend,
    /// Cluster size.
    pub sites: usize,
    /// Number of closed-loop client threads (homed round-robin on sites).
    pub clients: usize,
    /// Operations each client issues.
    pub ops_per_client: usize,
    /// Isolation policy every node runs under.
    pub policy: StackPolicy,
    /// Seed for the per-client operation mix.
    pub seed: u64,
    /// Per-operation completion timeout (a miss counts as `timed_out`).
    pub op_timeout: Duration,
    /// Deadline for post-load convergence polling.
    pub converge_timeout: Duration,
    /// Install a metrics [`Registry`](samoa_core::Registry) on every node
    /// and snapshot it into [`FleetOutcome::health`] after the run. Off by
    /// default so the measured hot path is the uninstrumented one.
    pub metered: bool,
}

impl FleetConfig {
    /// A fleet run with the default timeouts (10 s per op, 30 s to
    /// converge).
    pub fn new(
        backend: Backend,
        sites: usize,
        clients: usize,
        ops_per_client: usize,
        policy: StackPolicy,
    ) -> FleetConfig {
        FleetConfig {
            backend,
            sites,
            clients,
            ops_per_client,
            policy,
            seed: 42,
            op_timeout: Duration::from_secs(10),
            converge_timeout: Duration::from_secs(30),
            metered: false,
        }
    }

    /// The same run with the metrics registry installed.
    pub fn metered(mut self) -> FleetConfig {
        self.metered = true;
        self
    }
}

/// Measurements from one fleet run.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Operations that completed within their timeout.
    pub committed: usize,
    /// Operations whose completion wait timed out (they may still commit
    /// later — the convergence check accounts for every submission).
    pub timed_out: usize,
    /// Wall-clock of the load phase (first submission to last completion).
    pub wall: Duration,
    /// Median completion latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile completion latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile completion latency, microseconds.
    pub p99_us: f64,
    /// All sites applied every submitted command and agree byte-for-byte.
    pub converged: bool,
    /// Frames the transport dropped (loss, backpressure, crash, shutdown,
    /// no receiver) — nonzero values flag truncated measurements.
    pub dropped_frames: u64,
    /// Frames the TCP writer re-queued after a write error (0 on Sim).
    pub retried_frames: u64,
    /// TCP reconnect attempts (0 on Sim).
    pub reconnects: u64,
    /// Post-run cluster health snapshot (`Some` iff the run was
    /// [`metered`](FleetConfig::metered)).
    pub health: Option<ClusterMetrics>,
}

impl FleetOutcome {
    /// Committed operations per second of load wall-clock.
    pub fn throughput(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.committed as f64 / self.wall.as_secs_f64()
        }
    }
}

/// Parameters of a mid-load leader-failover run (TCP backend).
#[derive(Debug, Clone)]
pub struct FailoverConfig {
    /// Cluster size (site 0 — the round-0 consensus coordinator — dies).
    pub sites: usize,
    /// Closed-loop clients, homed round-robin on the surviving sites.
    pub clients: usize,
    /// Seed for the per-client operation mix.
    pub seed: u64,
    /// Per-operation completion timeout.
    pub op_timeout: Duration,
    /// Deadline for view exclusion / recovery / convergence waits.
    pub recover_timeout: Duration,
}

impl FailoverConfig {
    /// A failover run with the default timeouts.
    pub fn new(sites: usize, clients: usize) -> FailoverConfig {
        FailoverConfig {
            sites,
            clients,
            seed: 42,
            op_timeout: Duration::from_secs(15),
            recover_timeout: Duration::from_secs(30),
        }
    }
}

/// Measurements from one leader-failover run.
#[derive(Debug, Clone)]
pub struct FailoverOutcome {
    /// Crash → every survivor's view excludes the dead coordinator.
    pub exclusion: Duration,
    /// Crash → a fresh probe command commits on the survivor quorum.
    pub recovery: Duration,
    /// Client operations that committed across the whole run.
    pub committed: usize,
    /// Client operations that timed out (expected during the fault window).
    pub timed_out: usize,
    /// Survivors converged to identical state after the fleet drained.
    pub converged: bool,
    /// Frames dropped by the transport (the fault window makes this > 0).
    pub dropped_frames: u64,
    /// Frames re-queued after write errors.
    pub retried_frames: u64,
    /// Reconnect attempts against the dead (and live) endpoints.
    pub reconnects: u64,
}

/// The two cluster flavours behind one polling interface.
enum Fleet {
    Sim(Cluster),
    Tcp(TcpCluster),
}

impl Fleet {
    fn node(&self, i: usize) -> &Arc<Node> {
        match self {
            Fleet::Sim(c) => c.node(i),
            Fleet::Tcp(c) => c.node(i),
        }
    }

    fn metrics(&self) -> Option<ClusterMetrics> {
        match self {
            Fleet::Sim(c) => c.metrics(),
            Fleet::Tcp(c) => c.metrics(),
        }
    }
}

fn wait_until(deadline: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    pred()
}

/// One closed-loop client: `ops` operations against `node`, drawn from a
/// seeded mix (~50% put / 40% get / 10% cas) over a 32-key space. Returns
/// (completion latencies in ns, timed-out count). Stops early when `stop`
/// is raised (used by the failover driver to drain the fleet).
fn run_client(
    node: Arc<Node>,
    client: usize,
    ops: usize,
    seed: u64,
    op_timeout: Duration,
    stop: Arc<AtomicBool>,
    submitted: Arc<AtomicUsize>,
) -> (Vec<u64>, usize) {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(client as u64).wrapping_mul(0x9e37));
    let mut lat = Vec::with_capacity(ops.min(1 << 10));
    let mut timed_out = 0usize;
    for op in 0..ops {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let key = format!("key-{}", rng.gen_range(0..32u32));
        let value = format!("c{client}-o{op}");
        let roll = rng.gen_range(0..10u32);
        let start = Instant::now();
        submitted.fetch_add(1, Ordering::Relaxed);
        let pending = match roll {
            0..=4 => node.kv_put(key, value),
            5..=8 => node.kv_get(key),
            _ => node.kv_cas(key, None, value),
        };
        match pending.wait(op_timeout) {
            Some(_) => lat.push(start.elapsed().as_nanos() as u64),
            None => timed_out += 1,
        }
    }
    (lat, timed_out)
}

/// Drive a closed-loop client fleet against a fresh cluster and measure
/// throughput, tail latency, and convergence.
pub fn kv_fleet_run(cfg: &FleetConfig) -> FleetOutcome {
    let node_cfg = NodeConfig::with_policy(cfg.policy);
    let observe = cfg
        .metered
        .then(|| Observe::metered(Arc::new(samoa_core::Registry::new())));
    let fleet = match (cfg.backend, observe) {
        (Backend::Sim, None) => {
            Fleet::Sim(Cluster::new(cfg.sites, NetConfig::fast(cfg.seed), node_cfg))
        }
        (Backend::Sim, Some(obs)) => Fleet::Sim(Cluster::new_observed(
            cfg.sites,
            NetConfig::fast(cfg.seed),
            node_cfg,
            obs,
        )),
        (Backend::Tcp, None) => {
            Fleet::Tcp(TcpCluster::new(cfg.sites, node_cfg).expect("bind localhost mesh"))
        }
        (Backend::Tcp, Some(obs)) => Fleet::Tcp(
            TcpCluster::new_observed(cfg.sites, node_cfg, obs).expect("bind localhost mesh"),
        ),
    };

    let stop = Arc::new(AtomicBool::new(false));
    let submitted = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let handles: Vec<_> = (0..cfg.clients)
        .map(|c| {
            let node = Arc::clone(fleet.node(c % cfg.sites));
            let (stop, submitted) = (Arc::clone(&stop), Arc::clone(&submitted));
            let (ops, seed, t) = (cfg.ops_per_client, cfg.seed, cfg.op_timeout);
            std::thread::spawn(move || run_client(node, c, ops, seed, t, stop, submitted))
        })
        .collect();
    let mut lat_ns = Vec::new();
    let mut timed_out = 0usize;
    for h in handles {
        let (l, t) = h.join().expect("client thread");
        lat_ns.extend(l);
        timed_out += t;
    }
    let wall = start.elapsed();

    // Every submitted command must apply on every site, identically.
    let total = submitted.load(Ordering::Relaxed);
    let applied = wait_until(cfg.converge_timeout, || {
        (0..cfg.sites).all(|i| fleet.node(i).kv_applied() == total)
    });
    let d0 = fleet.node(0).kv_digest();
    let converged = applied && (1..cfg.sites).all(|i| fleet.node(i).kv_digest() == d0);

    lat_ns.sort_unstable();
    let (dropped_frames, retried_frames, reconnects) = match &fleet {
        Fleet::Sim(c) => (c.net().total_stats().dropped(), 0, 0),
        Fleet::Tcp(c) => {
            let s = c.mesh().total_stats();
            (s.dropped(), s.retried, s.reconnects)
        }
    };
    FleetOutcome {
        committed: lat_ns.len(),
        timed_out,
        wall,
        p50_us: percentile_us(&lat_ns, 0.50),
        p95_us: percentile_us(&lat_ns, 0.95),
        p99_us: percentile_us(&lat_ns, 0.99),
        converged,
        dropped_frames,
        retried_frames,
        reconnects,
        health: fleet.metrics(),
    }
}

/// Kill the round-0 consensus coordinator (site 0) under client load on a
/// real-socket cluster and measure the survivors' recovery: the time until
/// every surviving view excludes the dead site, and the time until a fresh
/// probe command commits again.
pub fn failover_run(cfg: &FailoverConfig) -> FailoverOutcome {
    let mut node_cfg = NodeConfig::with_policy(StackPolicy::Basic);
    node_cfg.enable_fd = true;
    node_cfg.fd_timeout = Duration::from_millis(300);
    let mut tcp = TcpCluster::new(cfg.sites, node_cfg).expect("bind localhost mesh");

    // Warm up: one command commits while the coordinator is alive.
    assert!(
        tcp.node(1)
            .kv_put("warm", "up")
            .wait(cfg.op_timeout)
            .is_some(),
        "warm-up command never committed"
    );

    // Open-ended clients on the survivors; drained via `stop` at the end.
    let stop = Arc::new(AtomicBool::new(false));
    let submitted = Arc::new(AtomicUsize::new(0));
    let survivors: Vec<usize> = (1..cfg.sites).collect();
    let handles: Vec<_> = (0..cfg.clients)
        .map(|c| {
            let node = Arc::clone(tcp.node(survivors[c % survivors.len()]));
            let (stop, submitted) = (Arc::clone(&stop), Arc::clone(&submitted));
            let (seed, t) = (cfg.seed, cfg.op_timeout);
            std::thread::spawn(move || run_client(node, c, usize::MAX, seed, t, stop, submitted))
        })
        .collect();

    // Let the fleet get in flight, then kill the coordinator.
    std::thread::sleep(Duration::from_millis(100));
    let crash_at = Instant::now();
    tcp.crash(0);

    // The FD clears its suspicion once membership excludes the site, so
    // the durable recovery signal is the view itself.
    let excluded = wait_until(cfg.recover_timeout, || {
        survivors
            .iter()
            .all(|&i| !tcp.node(i).current_view().contains(SiteId(0)))
    });
    assert!(excluded, "survivors never excluded the crashed coordinator");
    let exclusion = crash_at.elapsed();

    let probe = tcp.node(1).kv_put("after", "failover");
    assert!(
        probe.wait(cfg.recover_timeout).is_some(),
        "post-failover probe never committed"
    );
    let recovery = crash_at.elapsed();

    // Drain the fleet and let the survivors converge.
    stop.store(true, Ordering::Relaxed);
    let mut committed = 0usize;
    let mut timed_out = 0usize;
    for h in handles {
        let (l, t) = h.join().expect("client thread");
        committed += l.len();
        timed_out += t;
    }
    let converged = wait_until(cfg.recover_timeout, || {
        let a1 = tcp.node(1).kv_applied();
        survivors.iter().all(|&i| tcp.node(i).kv_applied() == a1)
    }) && {
        let d1 = tcp.node(1).kv_digest();
        survivors.iter().all(|&i| tcp.node(i).kv_digest() == d1)
    };

    let s = tcp.mesh().total_stats();
    FailoverOutcome {
        exclusion,
        recovery,
        committed: committed + 1, // + the probe
        timed_out,
        converged,
        dropped_frames: s.dropped(),
        retried_frames: s.retried,
        reconnects: s.reconnects,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sim_fleet_commits_and_converges() {
        let mut cfg = FleetConfig::new(Backend::Sim, 3, 2, 5, StackPolicy::Basic);
        cfg.seed = 7;
        let o = kv_fleet_run(&cfg);
        assert_eq!(o.committed, 10);
        assert_eq!(o.timed_out, 0);
        assert!(o.converged, "replicas diverged");
        assert!(o.p50_us > 0.0 && o.p99_us >= o.p50_us);
        assert!(o.throughput() > 0.0);
    }

    #[test]
    fn metered_sim_fleet_reports_health() {
        let cfg = FleetConfig::new(Backend::Sim, 3, 2, 4, StackPolicy::Basic).metered();
        let o = kv_fleet_run(&cfg);
        assert!(o.converged, "replicas diverged");
        let health = o.health.expect("metered run must snapshot health");
        // Every site's abcast and KV instruments must have fired.
        for site in 0..3 {
            let delivered = health
                .metrics
                .counters
                .get(&format!("site{site}.abcast.delivered"))
                .copied()
                .unwrap_or(0);
            assert!(delivered > 0, "site {site} delivered nothing: {health:?}");
            let applies = health
                .metrics
                .counters
                .get(&format!("site{site}.kv.applies"))
                .copied()
                .unwrap_or(0);
            assert_eq!(applies, 8, "site {site} applied {applies}/8 commands");
        }
        // And the JSON/text renderings carry the transport counters.
        assert!(health.to_json().contains("\"site0\""));
        assert!(health.render().contains("site0.net:"));
    }

    #[test]
    fn unmetered_fleet_reports_no_health() {
        let cfg = FleetConfig::new(Backend::Sim, 3, 1, 2, StackPolicy::Basic);
        assert!(kv_fleet_run(&cfg).health.is_none());
    }

    #[test]
    fn small_tcp_fleet_commits_and_converges() {
        let cfg = FleetConfig::new(Backend::Tcp, 3, 2, 5, StackPolicy::Basic);
        let o = kv_fleet_run(&cfg);
        assert_eq!(o.committed, 10);
        assert!(o.converged, "replicas diverged over TCP");
        assert!(o.p95_us >= o.p50_us);
    }
}
