//! Group-communication experiment drivers: E2 (atomic-broadcast overhead,
//! the paper's §7 experiment) and E5 (the §3 view-change race).

use std::time::{Duration, Instant};

use bytes::Bytes;
use samoa_net::{NetConfig, SiteId};
use samoa_proto::{Cluster, NodeConfig, StackPolicy};

/// Outcome of one atomic-broadcast run.
#[derive(Debug, Clone)]
pub struct AbcastOutcome {
    /// Wall-clock time from the first request to full quiescence.
    pub wall: Duration,
    /// Messages delivered at site 0.
    pub delivered: usize,
    /// Did all sites deliver the identical sequence?
    pub agreement: bool,
    /// Datagrams sent across the network.
    pub datagrams: u64,
}

impl AbcastOutcome {
    /// Delivered messages per second.
    pub fn throughput(&self) -> f64 {
        self.delivered as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// E2: broadcast `msgs` messages round-robin from `sites` sites under
/// `policy`; measure wall time to deliver and check agreement.
pub fn abcast_run(sites: usize, msgs: usize, policy: StackPolicy, seed: u64) -> AbcastOutcome {
    let cfg = NodeConfig::with_policy(policy);
    let c = Cluster::new(sites, NetConfig::fast(seed), cfg);
    let start = Instant::now();
    for i in 0..msgs {
        c.node(i % sites).abcast(Bytes::from(format!("m{i}")));
    }
    c.settle();
    let wall = start.elapsed();
    let order0 = c.node(0).ab_delivered();
    let agreement = (1..sites).all(|i| c.node(i).ab_delivered() == order0);
    AbcastOutcome {
        wall,
        delivered: order0.len(),
        agreement,
        datagrams: c.net().total_stats().sent,
    }
}

/// Outcome of one §3 view-change race trial.
#[derive(Debug, Clone, Default)]
pub struct RaceOutcome {
    /// RelComm sends discarded because the target was outside its view —
    /// under an isolating policy this is 0 in the join-only scenario; under
    /// `Unsync` it counts occurrences of the paper's race.
    pub stale_discards: u64,
    /// Broadcast messages the joining site missed entirely.
    pub missed_at_joiner: usize,
    /// Total broadcasts sent after the join request.
    pub total_after_join: usize,
}

/// E5: a site joins while broadcasts stream; `view_change_delay` widens the
/// race window exactly as the paper's motivation (slow view installation)
/// describes.
pub fn view_race_run(policy: StackPolicy, seed: u64, bursts: usize) -> RaceOutcome {
    let mut cfg = NodeConfig::with_policy(policy);
    cfg.initial_members = Some(vec![SiteId(0), SiteId(1), SiteId(2)]);
    cfg.view_change_delay = Duration::from_millis(2);
    let c = Cluster::new(4, NetConfig::fast(seed), cfg);

    // The join churns through atomic broadcast while user broadcasts
    // stream from all three original members.
    c.node(0).request_join(SiteId(3));
    let mut total = 0;
    for round in 0..bursts {
        for i in 0..3 {
            c.node(i).rbcast(Bytes::from(format!("r{round}-s{i}")));
            total += 1;
        }
        // A short stagger keeps broadcasts overlapping the view change.
        std::thread::sleep(Duration::from_micros(500));
    }
    c.settle();

    let stale_discards: u64 = (0..4).map(|i| c.node(i).relcomm_discards()).sum();
    let joiner: std::collections::BTreeSet<_> = c
        .node(3)
        .rb_delivered()
        .into_iter()
        .map(|(_, b)| b)
        .collect();
    let reference: std::collections::BTreeSet<_> = c
        .node(0)
        .rb_delivered()
        .into_iter()
        .map(|(_, b)| b)
        .collect();
    let missed_at_joiner = reference.difference(&joiner).count();
    RaceOutcome {
        stale_discards,
        missed_at_joiner,
        total_after_join: total,
    }
}

/// E8: reliable-broadcast throughput with the failure detector running,
/// with tight per-event-kind declarations vs declare-everything. Tight
/// declarations let heartbeat processing (`[fd]`) and broadcast processing
/// (`[relcomm, relcast, abcast, app]`) proceed concurrently; coarse ones
/// serialise every external event behind every other.
pub fn declaration_tightness_run(declare_all: bool, seed: u64, msgs: usize) -> Duration {
    let mut cfg = NodeConfig::with_policy(StackPolicy::Basic);
    cfg.declare_all = declare_all;
    cfg.enable_fd = true;
    cfg.tick_interval = Duration::from_millis(2); // heartbeat-heavy
    cfg.fd_timeout = Duration::from_secs(10); // never actually suspect
    let c = Cluster::new(3, NetConfig::fast(seed), cfg);
    std::thread::sleep(Duration::from_millis(20)); // let heartbeats flow
    let start = Instant::now();
    for i in 0..msgs {
        c.node(i % 3).rbcast(Bytes::from(format!("m{i}")));
    }
    // Poll for full delivery instead of settle(): heartbeats never quiesce.
    let deadline = Instant::now() + Duration::from_secs(60);
    while (0..3).any(|i| c.node(i).rb_delivered().len() < msgs) {
        assert!(
            Instant::now() < deadline,
            "broadcasts never fully delivered"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    start.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abcast_run_small_agreement() {
        let o = abcast_run(3, 4, StackPolicy::Basic, 1);
        assert!(o.agreement);
        assert_eq!(o.delivered, 4);
        assert!(o.throughput() > 0.0);
        assert!(o.datagrams > 0);
    }

    #[test]
    fn view_race_isolated_has_no_stale_discards() {
        let o = view_race_run(StackPolicy::Basic, 2, 4);
        assert_eq!(o.stale_discards, 0, "isolating policy produced the §3 race");
        assert_eq!(o.total_after_join, 12);
    }
}
