//! The experiment implementations behind the `tables` binary: one function
//! per experiment id of DESIGN.md §3 / EXPERIMENTS.md.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
// (Duration::sum over an iterator is used by the E8 averaging.)

use samoa_core::prelude::*;
use samoa_proto::StackPolicy;

use crate::cluster::{failover_run, kv_fleet_run, Backend, FailoverConfig, FleetConfig};
use crate::gc::{abcast_run, declaration_tightness_run, view_race_run};
use crate::report::{ms, per_sec, ratio, Table};
use crate::synth::{
    flat_stack, flat_workload, pipeline_stack, pipeline_stack_with_sink, run_flat, run_pipeline,
    run_rw, rw_stack, BenchPolicy, WorkKind,
};

/// E1 — the paper's Fig. 1: which runs each policy admits, verified by the
/// recorded run and the serializability checker.
pub fn e1() -> String {
    let mut out = String::new();
    out.push_str("E1 (Fig. 1): runs of the P/Q/R/S diamond under two external events\n\n");

    // Build the diamond with a gate that stalls computation 1 before S, so
    // an unsynchronised execution produces exactly run r3.
    let build = |gate_on: bool| -> (Runtime, EventType, EventType, Arc<AtomicBool>) {
        let mut b = StackBuilder::new();
        let p = b.protocol("P");
        let q = b.protocol("Q");
        let r = b.protocol("R");
        let s = b.protocol("S");
        let a0 = b.event("a0");
        let b0 = b.event("b0");
        let to_r = b.event("a1/b1");
        let to_s = b.event("a2/b2");
        let _ = (p, q, r, s);
        let gate = Arc::new(AtomicBool::new(false));
        b.bind(a0, p, "P", move |ctx, ev| ctx.trigger(to_r, ev.clone()));
        b.bind(b0, q, "Q", move |ctx, ev| ctx.trigger(to_r, ev.clone()));
        let rst = ProtocolState::new(r, ());
        {
            let rst = rst.clone();
            b.bind(to_r, r, "R", move |ctx, ev| {
                rst.with(ctx, |_| ());
                ctx.trigger(to_s, ev.clone())
            });
        }
        let sst = ProtocolState::new(s, ());
        {
            let gate = Arc::clone(&gate);
            b.bind(to_s, s, "S", move |ctx, _| {
                if gate_on && ctx.comp_id() == 1 {
                    while !gate.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
                sst.with(ctx, |_| ());
                Ok(())
            });
        }
        (
            Runtime::with_config(b.build(), RuntimeConfig::recording()),
            a0,
            b0,
            gate,
        )
    };

    // Unsync with the gate: run r3 occurs and the checker rejects it.
    {
        let (rt, a0, b0, gate) = build(true);
        let ka = rt.spawn_unsync(move |ctx| ctx.trigger(a0, EventData::empty()));
        std::thread::sleep(Duration::from_millis(20));
        let kb = rt.spawn_unsync(move |ctx| ctx.trigger(b0, EventData::empty()));
        let _ = kb; // kb overtakes ka at S
        std::thread::sleep(Duration::from_millis(40));
        gate.store(true, Ordering::SeqCst);
        rt.quiesce();
        let _ = ka;
        out.push_str("cactus-style unsync, schedule forced toward r3:\n");
        out.push_str(&rt.history().format_run(rt.stack()));
        match rt.check_isolation() {
            Ok(order) => out.push_str(&format!("  checker: serializable as {order:?}\n")),
            Err(v) => out.push_str(&format!("  checker: VIOLATION — {v}\n")),
        }
    }

    // SAMOA (VCAbasic) under the same schedule pressure: r3 impossible.
    {
        let (rt, a0, b0, gate) = build(true);
        let stack = rt.stack().clone();
        let p = stack.all_protocols();
        let (pp, qq, rr, ss) = (p[0], p[1], p[2], p[3]);
        let ka = rt.spawn_isolated(&[pp, rr, ss], move |ctx| {
            ctx.trigger(a0, EventData::empty())
        });
        std::thread::sleep(Duration::from_millis(20));
        let kb = rt.spawn_isolated(&[qq, rr, ss], move |ctx| {
            ctx.trigger(b0, EventData::empty())
        });
        std::thread::sleep(Duration::from_millis(20));
        gate.store(true, Ordering::SeqCst);
        rt.quiesce();
        let (_, _) = (ka, kb);
        out.push_str("\nsamoa isolated (VCAbasic), same schedule pressure:\n");
        out.push_str(&rt.history().format_run(rt.stack()));
        match rt.check_isolation() {
            Ok(order) => out.push_str(&format!(
                "  checker: serializable, equivalent serial order {order:?}\n"
            )),
            Err(v) => out.push_str(&format!("  checker: VIOLATION — {v}\n")),
        }
    }
    out
}

/// E2 — §7's experiment: atomic broadcast over the simulated network;
/// overhead of each concurrency-control policy relative to `unsync`.
pub fn e2(sites: usize, msgs: usize) -> Table {
    let mut t = Table::new(&[
        "policy",
        "wall_ms (median of 3)",
        "msgs/s",
        "agreement",
        "datagrams",
        "vs-unsync",
    ]);
    let median_run = |policy: StackPolicy| {
        let mut runs: Vec<_> = (0..3)
            .map(|s| abcast_run(sites, msgs, policy, 42 + s))
            .collect();
        runs.sort_by_key(|o| o.wall);
        let agreement = runs.iter().all(|o| o.agreement);
        let mut mid = runs.swap_remove(1);
        mid.agreement = agreement;
        mid
    };
    let base = median_run(StackPolicy::Unsync);
    for (policy, label) in [
        (StackPolicy::Unsync, "unsync"),
        (StackPolicy::Serial, "serial (appia)"),
        (StackPolicy::TwoPhase, "two-phase"),
        (StackPolicy::Basic, "vca-basic"),
        (StackPolicy::Bound, "vca-bound"),
        (StackPolicy::Route, "vca-route"),
    ] {
        let o = if policy == StackPolicy::Unsync {
            base.clone()
        } else {
            median_run(policy)
        };
        t.row(&[
            label.to_string(),
            ms(o.wall),
            per_sec(o.throughput()),
            if o.agreement { "yes" } else { "NO" }.to_string(),
            o.datagrams.to_string(),
            ratio(o.wall.as_secs_f64() / base.wall.as_secs_f64()),
        ]);
    }
    t
}

/// E3 — concurrency grain: throughput as per-handler work grows, for
/// I/O-style (sleeping) handlers. Serial pays the full sum; versioning
/// policies overlap independent computations.
pub fn e3() -> Table {
    let mut t = Table::new(&[
        "work_us",
        "policy",
        "wall_ms",
        "blocked_ms",
        "comps/s",
        "vs-serial",
    ]);
    let n_protocols = 8;
    let n_comps = 48;
    for work_us in [0u64, 100, 500, 2000] {
        let work = Duration::from_micros(work_us);
        let wl = flat_workload(n_protocols, n_comps, 2, 0.0, 7);
        let mut serial_wall = None;
        for policy in [
            BenchPolicy::Serial,
            BenchPolicy::TwoPhase,
            BenchPolicy::Basic,
            BenchPolicy::Bound,
            BenchPolicy::Unsync,
        ] {
            let stack = flat_stack(n_protocols, work, WorkKind::Io);
            let wall = run_flat(&stack, &wl, policy, 4);
            if policy == BenchPolicy::Serial {
                serial_wall = Some(wall);
            }
            let vs = serial_wall
                .map(|s| ratio(s.as_secs_f64() / wall.as_secs_f64()))
                .unwrap_or_default();
            // The instrumented cost of isolation: total admission blocking.
            let blocked = stack.rt.stats().admission_wait;
            t.row(&[
                work_us.to_string(),
                policy.label().to_string(),
                ms(wall),
                ms(blocked),
                per_sec(n_comps as f64 / wall.as_secs_f64()),
                vs,
            ]);
        }
    }
    t
}

/// E4 — policy parallelism on a pipeline: VCAbound/VCAroute release stages
/// early and pipeline computations; VCAbasic holds every stage to
/// completion and serialises them.
pub fn e4() -> Table {
    let mut t = Table::new(&["stages", "policy", "wall_ms", "vs-basic"]);
    let n_comps = 24;
    for stages in [2usize, 4, 6] {
        let work = Duration::from_micros(400);
        let mut basic_wall = None;
        for policy in [
            BenchPolicy::Basic,
            BenchPolicy::Bound,
            BenchPolicy::Route,
            BenchPolicy::Serial,
            BenchPolicy::Unsync,
        ] {
            let stack = pipeline_stack(stages, work, WorkKind::Io);
            let wall = run_pipeline(&stack, n_comps, policy, 4);
            if policy == BenchPolicy::Basic {
                basic_wall = Some(wall);
            }
            let vs = basic_wall
                .map(|b| ratio(b.as_secs_f64() / wall.as_secs_f64()))
                .unwrap_or_default();
            t.row(&[stages.to_string(), policy.label().to_string(), ms(wall), vs]);
        }
    }
    t
}

/// E5 — the §3 view-change race: stale-view discards and joiner message
/// gaps per policy, over several trials.
pub fn e5(trials: u64) -> Table {
    let mut t = Table::new(&[
        "policy",
        "trials",
        "stale_discards",
        "trials_with_race",
        "missed_at_joiner",
    ]);
    for (policy, label) in [
        (StackPolicy::Unsync, "unsync"),
        (StackPolicy::Serial, "serial (appia)"),
        (StackPolicy::Basic, "vca-basic"),
        (StackPolicy::Route, "vca-route"),
    ] {
        let mut discards = 0u64;
        let mut racy_trials = 0u64;
        let mut missed = 0usize;
        for seed in 0..trials {
            let o = view_race_run(policy, 100 + seed, 6);
            discards += o.stale_discards;
            racy_trials += u64::from(o.stale_discards > 0);
            missed += o.missed_at_joiner;
        }
        t.row(&[
            label.to_string(),
            trials.to_string(),
            discards.to_string(),
            racy_trials.to_string(),
            missed.to_string(),
        ]);
    }
    t
}

/// E7 (extension — the paper's §7 future work, implemented): read-only
/// declarations let readers share a microprotocol; on read-heavy workloads
/// this recovers most of the parallelism the all-write semantics forfeits.
pub fn e7() -> Table {
    let mut t = Table::new(&["write_every", "mode", "wall_ms", "speedup"]);
    let n_comps = 32;
    let work = Duration::from_micros(500);
    for write_every in [32usize, 8, 2] {
        let all_write = {
            let stack = rw_stack(work);
            run_rw(&stack, n_comps, write_every, false, 4)
        };
        let read_mode = {
            let stack = rw_stack(work);
            run_rw(&stack, n_comps, write_every, true, 4)
        };
        t.row(&[
            write_every.to_string(),
            "all-write (paper)".to_string(),
            ms(all_write),
            ratio(1.0),
        ]);
        t.row(&[
            write_every.to_string(),
            "read/write modes".to_string(),
            ms(read_mode),
            ratio(all_write.as_secs_f64() / read_mode.as_secs_f64()),
        ]);
    }
    t
}

/// E9 — the paper's two algorithm families head to head: versioning
/// (never aborts, blocks) vs optimistic timestamp/validation with rollback
/// (never blocks, re-executes). §1 names both; only family 1 is specified,
/// so family 2 is represented by classical backward-validation OCC.
pub fn e9() -> Table {
    use crate::synth::families::{run_occ, run_vca};
    let mut t = Table::new(&["work", "hot", "family", "wall_ms", "aborts", "speedup"]);
    let (n_slots, n_comps, injectors) = (16, 64, 8);
    let work = Duration::from_micros(500);
    for kind in [WorkKind::Io, WorkKind::Cpu] {
        let kind_label = match kind {
            WorkKind::Io => "io",
            WorkKind::Cpu => "cpu",
        };
        for hot in [0.0f64, 1.0] {
            let vca = run_vca(n_slots, n_comps, hot, work, kind, injectors, 77);
            let occ = run_occ(n_slots, n_comps, hot, work, kind, injectors, 77);
            t.row(&[
                kind_label.to_string(),
                format!("{hot:.1}"),
                "versioning (vca)".to_string(),
                ms(vca.wall),
                "0".to_string(),
                ratio(1.0),
            ]);
            t.row(&[
                kind_label.to_string(),
                format!("{hot:.1}"),
                "optimistic (occ)".to_string(),
                ms(occ.wall),
                occ.aborts.to_string(),
                ratio(vca.wall.as_secs_f64() / occ.wall.as_secs_f64()),
            ]);
        }
    }
    t
}

/// E8 (ablation): tight per-event-kind declarations vs declaring every
/// microprotocol, on a heartbeat-heavy reliable-broadcast workload.
pub fn e8() -> Table {
    let mut t = Table::new(&["declaration", "wall_ms (avg of 5)", "speedup"]);
    let msgs = 60;
    let trials = 5;
    let avg = |declare_all: bool| -> Duration {
        let total: Duration = (0..trials)
            .map(|s| declaration_tightness_run(declare_all, 31 + s, msgs))
            .sum();
        total / trials as u32
    };
    let coarse = avg(true);
    let tight = avg(false);
    t.row(&["declare-all (coarse)".to_string(), ms(coarse), ratio(1.0)]);
    t.row(&[
        "per-event-kind (tight)".to_string(),
        ms(tight),
        ratio(coarse.as_secs_f64() / tight.as_secs_f64()),
    ]);
    t
}

/// E10 (observability) — per-microprotocol contention profiles from the
/// trace layer: where each policy's admission waits concentrate on a
/// contended pipeline, and how Rule 4 early release dissolves them. The
/// rows are [`ContentionProfile`] aggregates (p50/p95/p99 admission-wait
/// latency, handler service medians, early-release counts) rather than
/// wall-clock times, so they expose *why* E4's speedups happen.
pub fn e10(stages: usize, n_comps: usize) -> Table {
    let mut t = Table::new(&[
        "policy",
        "protocol",
        "waits",
        "wait_p50_us",
        "wait_p95_us",
        "wait_p99_us",
        "wait_total_ms",
        "svc_p50_us",
        "early_releases",
    ]);
    let work = Duration::from_micros(400);
    for policy in [BenchPolicy::Basic, BenchPolicy::Bound, BenchPolicy::Route] {
        let sink = TraceBuffer::new();
        let stack = pipeline_stack_with_sink(stages, work, WorkKind::Io, sink.clone());
        run_pipeline(&stack, n_comps, policy, 4);
        let profile = ContentionProfile::from_events(&sink.drain(), stack.rt.stack());
        for p in &profile.protocols {
            t.row(&[
                policy.label().to_string(),
                p.name.clone(),
                p.waits.to_string(),
                format!("{:.1}", p.wait_p50_us),
                format!("{:.1}", p.wait_p95_us),
                format!("{:.1}", p.wait_p99_us),
                format!("{:.3}", p.wait_total.as_secs_f64() * 1e3),
                format!("{:.1}", p.service_p50_us),
                (p.bound_releases + p.route_releases).to_string(),
            ]);
        }
    }
    t
}

/// E6 — baseline comparison over a conflict sweep: as the probability of
/// touching the shared hot microprotocol falls, versioning throughput
/// approaches unsync while serial stays flat.
pub fn e6() -> Table {
    let mut t = Table::new(&["hot", "policy", "wall_ms", "vs-serial"]);
    let n_protocols = 8;
    let n_comps = 48;
    let work = Duration::from_micros(500);
    for hot in [1.0f64, 0.5, 0.1, 0.0] {
        let wl = flat_workload(n_protocols, n_comps, 1, hot, 11);
        let mut serial_wall = None;
        for policy in [BenchPolicy::Serial, BenchPolicy::Basic, BenchPolicy::Unsync] {
            let stack = flat_stack(n_protocols, work, WorkKind::Io);
            let wall = run_flat(&stack, &wl, policy, 4);
            if policy == BenchPolicy::Serial {
                serial_wall = Some(wall);
            }
            let vs = serial_wall
                .map(|s| ratio(s.as_secs_f64() / wall.as_secs_f64()))
                .unwrap_or_default();
            t.row(&[
                format!("{hot:.1}"),
                policy.label().to_string(),
                ms(wall),
                vs,
            ]);
        }
    }
    t
}

/// E12 — replicated-cluster throughput and tail latency: a closed-loop
/// client fleet issues KV commands (put/get/cas totally ordered by abcast)
/// against 3/5/9-site clusters under each isolation policy, over the
/// simulated network and — for the 3-site configuration — over real framed
/// localhost TCP sockets through the same `Transport` seam. `dropped` and
/// `retried` surface transport-level frame loss/requeues so a truncated
/// measurement is visible in the row itself; `converged` is the safety
/// check (every site applied every command, byte-identical state).
/// `Unsync` is deliberately absent: the KV service's correctness depends on
/// the isolation the policy provides.
pub fn e12(quick: bool) -> Table {
    let mut t = Table::new(&[
        "backend",
        "sites",
        "policy",
        "clients",
        "ops",
        "committed",
        "ops/s",
        "p50_us",
        "p95_us",
        "p99_us",
        "dropped",
        "retried",
        "converged",
    ]);
    let policies: &[(StackPolicy, &str)] = &[
        (StackPolicy::Serial, "serial (appia)"),
        (StackPolicy::TwoPhase, "two-phase"),
        (StackPolicy::Basic, "vca-basic"),
        (StackPolicy::Bound, "vca-bound"),
        (StackPolicy::Route, "vca-route"),
    ];
    let (clients, ops) = if quick { (3, 8) } else { (4, 20) };
    let run = |t: &mut Table, backend: Backend, sites: usize, policy, label: &str| {
        let cfg = FleetConfig::new(backend, sites, clients, ops, policy);
        let o = kv_fleet_run(&cfg);
        t.row(&[
            backend.label().to_string(),
            sites.to_string(),
            label.to_string(),
            clients.to_string(),
            (clients * ops).to_string(),
            o.committed.to_string(),
            per_sec(o.throughput()),
            format!("{:.1}", o.p50_us),
            format!("{:.1}", o.p95_us),
            format!("{:.1}", o.p99_us),
            o.dropped_frames.to_string(),
            o.retried_frames.to_string(),
            if o.converged { "yes" } else { "NO" }.to_string(),
        ]);
    };
    for &sites in &[3usize, 5, 9] {
        for &(policy, label) in policies {
            // Quick mode keeps the full 3/5/9 sweep but only sweeps every
            // policy at 3 sites; the larger clusters run vca-basic.
            if quick && sites > 3 && policy != StackPolicy::Basic {
                continue;
            }
            run(&mut t, Backend::Sim, sites, policy, label);
        }
    }
    // The real-socket row: identical workload, identical stack, different
    // backend behind `Arc<dyn Transport>`.
    run(&mut t, Backend::Tcp, 3, StackPolicy::Basic, "vca-basic");
    t
}

/// E12 (failover) — mid-load leader failover on the real-socket backend:
/// kill the round-0 consensus coordinator under closed-loop client load and
/// measure how long the survivors take to exclude it from the membership
/// view (`exclusion_ms`) and to commit a fresh command again
/// (`recovery_ms`). Timed-out client operations during the fault window are
/// expected; `converged` checks the survivors ended byte-identical.
pub fn e12_failover(quick: bool) -> Table {
    let mut t = Table::new(&[
        "sites",
        "clients",
        "exclusion_ms",
        "recovery_ms",
        "committed",
        "timed_out",
        "dropped",
        "retried",
        "reconnects",
        "converged",
    ]);
    let sizes: &[usize] = if quick { &[3] } else { &[3, 5] };
    for &sites in sizes {
        let o = failover_run(&FailoverConfig::new(sites, 2));
        t.row(&[
            sites.to_string(),
            "2".to_string(),
            ms(o.exclusion),
            ms(o.recovery),
            o.committed.to_string(),
            o.timed_out.to_string(),
            o.dropped_frames.to_string(),
            o.retried_frames.to_string(),
            o.reconnects.to_string(),
            if o.converged { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t
}

/// E12 (metrics overhead) — the observability tax: the identical closed-loop
/// fleet run with and without a metrics [`Registry`](samoa_core::Registry)
/// installed on every node. With no registry the instrument fields are
/// `None` and the hot path is a single branch, so the two rows must sit
/// within run-to-run noise of each other; the `overhead` column pins the
/// ratio. The metered run's registry is also the source of the cluster
/// health report the harness prints (see `tables`).
pub fn e12_metrics(quick: bool) -> (Table, String) {
    let mut t = Table::new(&[
        "backend",
        "sites",
        "metered",
        "committed",
        "ops/s",
        "p50_us",
        "p95_us",
        "overhead",
    ]);
    let (clients, ops) = if quick { (3, 8) } else { (4, 20) };
    let mut health = String::new();
    for &(backend, sites) in &[(Backend::Sim, 3usize), (Backend::Tcp, 3)] {
        let base_cfg = FleetConfig::new(backend, sites, clients, ops, StackPolicy::Basic);
        let plain = kv_fleet_run(&base_cfg);
        let metered = kv_fleet_run(&base_cfg.clone().metered());
        for (label, o) in [("no", &plain), ("yes", &metered)] {
            t.row(&[
                backend.label().to_string(),
                sites.to_string(),
                label.to_string(),
                o.committed.to_string(),
                per_sec(o.throughput()),
                format!("{:.1}", o.p50_us),
                format!("{:.1}", o.p95_us),
                ratio(plain.wall.as_secs_f64() / o.wall.as_secs_f64().max(1e-9)),
            ]);
        }
        if let Some(h) = &metered.health {
            health.push_str(&format!("[{} x{}]\n{}", backend.label(), sites, h.render()));
        }
    }
    (t, health)
}

/// E13 — trace-guided schedule search: schedules to the first §3
/// view-change violation under plain PCT vs PCT whose change points are
/// steered by the previous run's contention trace ([`Strategy::Guided`]).
/// Both start from the same seed and bug depth; guidance only biases
/// *where* the priority demotions land (toward steps whose footprints touch
/// the microprotocol with the largest admission-wait mass), so the PCT
/// detection bound is preserved and every witness still replays. The
/// summary row pins the acceptance criterion: guided must need no more
/// schedules in total than unguided across the seed sweep.
pub fn e13(quick: bool) -> Table {
    use samoa_check::{Explorer, ExplorerConfig, ScenarioPolicy, Strategy, ViewChangeScenario};
    let mut t = Table::new(&["seed", "pct", "guided-pct", "speedup"]);
    let seeds: &[u64] = if quick {
        &[1, 2, 3]
    } else {
        &[1, 2, 3, 4, 5, 6, 7, 8]
    };
    let depth = 2;
    let budget = 500;
    let to_first = |got: samoa_check::Exploration| -> Option<u64> {
        got.violation.map(|w| w.schedule_index as u64 + 1)
    };
    let (mut pct_total, mut guided_total) = (0u64, 0u64);
    for &seed in seeds {
        let mut cfg = ExplorerConfig::new(budget, Strategy::Pct { seed, depth });
        cfg.minimise = false;
        let pct = to_first(Explorer::explore(
            &ViewChangeScenario::new(ScenarioPolicy::Unsync, 9),
            &cfg,
        ));
        cfg.strategy = Strategy::Guided { seed, depth };
        let guided = to_first(Explorer::explore(
            &ViewChangeScenario::traced(ScenarioPolicy::Unsync, 9),
            &cfg,
        ));
        let cell = |v: Option<u64>| v.map_or("miss".to_string(), |n| n.to_string());
        pct_total += pct.unwrap_or(budget as u64);
        guided_total += guided.unwrap_or(budget as u64);
        let speedup = match (pct, guided) {
            (Some(p), Some(g)) => ratio(p as f64 / g as f64),
            _ => "-".to_string(),
        };
        t.row(&[seed.to_string(), cell(pct), cell(guided), speedup]);
    }
    t.row(&[
        "total".to_string(),
        pct_total.to_string(),
        guided_total.to_string(),
        ratio(pct_total as f64 / guided_total.max(1) as f64),
    ]);
    t
}

/// E11 — DPOR reduction ratios: for each bounded checking scenario, the
/// number of schedules exhaustive enumeration explores vs the DPOR-reduced
/// search, with the failure sets compared signature-by-signature. The
/// `pruned` column is the static-pruning ratio: the fraction of fallback
/// backtrack candidates the stack's conflict-matrix-derived
/// `StaticIndependence` relation suppressed. A `match=no` row or a
/// shrinking reduction is a regression in the dynamic-checking layer.
pub fn e11(quick: bool) -> Table {
    use samoa_check::{
        DiamondScenario, DisjointClustersScenario, Explorer, ExplorerConfig, OccScenario, Scenario,
        ScenarioPolicy, Strategy, ViewChangeScenario,
    };
    use std::collections::BTreeSet;

    let mut t = Table::new(&[
        "scenario",
        "exhaustive",
        "dpor",
        "reduction",
        "pruned",
        "failures",
        "match",
    ]);
    let mut scenarios: Vec<(Box<dyn Scenario>, usize)> = vec![
        (
            Box::new(DiamondScenario::new(ScenarioPolicy::Unsync)),
            1_000,
        ),
        (
            Box::new(DiamondScenario::new(ScenarioPolicy::VcaBasic)),
            1_000,
        ),
        (
            Box::new(ViewChangeScenario::new(ScenarioPolicy::Unsync, 7)),
            1_000,
        ),
        (
            Box::new(DisjointClustersScenario::new(ScenarioPolicy::VcaBasic)),
            40_000,
        ),
        (Box::new(OccScenario::lost_update(2)), 2_000),
        (Box::new(OccScenario::serialised(2)), 2_000),
    ];
    if !quick {
        // The acceptance-scale space: > 100k exhaustive schedules.
        scenarios.push((
            Box::new(DiamondScenario::sized(ScenarioPolicy::Unsync, 3)),
            150_000,
        ));
    }
    for (scenario, budget) in scenarios {
        let mut cfg = ExplorerConfig::new(budget, Strategy::Exhaustive);
        cfg.minimise = false;
        let ex = Explorer::sweep(scenario.as_ref(), &cfg);
        cfg.strategy = Strategy::Dpor;
        let dp = Explorer::sweep(scenario.as_ref(), &cfg);
        let sigs = |s: &samoa_check::Sweep| -> BTreeSet<String> {
            s.failures.iter().map(|w| w.failure.signature()).collect()
        };
        let same = sigs(&ex) == sigs(&dp) && ex.exhausted && dp.exhausted;
        t.row(&[
            scenario.name().to_string(),
            ex.schedules_run.to_string(),
            dp.schedules_run.to_string(),
            ratio(ex.schedules_run as f64 / dp.schedules_run.max(1) as f64),
            format!("{:.2}", dp.pruned_ratio()),
            sigs(&ex).len().to_string(),
            if same { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t
}

/// E14 — the admission fast path: per-admission cost of each policy on a
/// strictly uncontended workload (sequential computations, joined one by
/// one, so every Rule-2 check and Rule-1 sweep takes its lock-free path),
/// with the parking-seam counters (`samoa_core::version`) alongside. The
/// `parks`/`gate_spins` columns must read 0 on every row — an uncontended
/// admission that parks or spins is the regression this experiment exists
/// to catch — and `ns/adm` vs the `unsync` row is the *absolute* overhead
/// of the versioning machinery: one atomic load per admission plus one
/// CAS+store per declared cell per spawn.
pub fn e14(quick: bool) -> Table {
    use samoa_core::version::{gate_spins, parks};

    let mut t = Table::new(&[
        "policy",
        "admissions",
        "wall_ms",
        "ns/adm",
        "vs-unsync",
        "parks",
        "gate_spins",
    ]);
    let n_protocols = 4;
    let (rounds, triggers_per) = if quick {
        (64usize, 64usize)
    } else {
        (256, 256)
    };

    let build = || -> (Runtime, Vec<ProtocolId>, Vec<EventType>) {
        let mut b = StackBuilder::new();
        let mut protocols = Vec::new();
        let mut events = Vec::new();
        for i in 0..n_protocols {
            let p = b.protocol(&format!("P{i}"));
            let e = b.event(&format!("E{i}"));
            b.bind(e, p, &format!("h{i}"), move |_ctx, _ev| Ok(()));
            protocols.push(p);
            events.push(e);
        }
        (Runtime::new(b.build()), protocols, events)
    };

    let mut base_ns = None;
    for policy in [
        BenchPolicy::Unsync,
        BenchPolicy::Basic,
        BenchPolicy::Bound,
        BenchPolicy::TwoPhase,
        BenchPolicy::Serial,
    ] {
        let (rt, protocols, events) = build();
        let bounds: Vec<(ProtocolId, u64)> = protocols
            .iter()
            .map(|&p| (p, (triggers_per * n_protocols) as u64))
            .collect();
        let (p0, g0) = (parks(), gate_spins());
        let start = std::time::Instant::now();
        for _ in 0..rounds {
            let evs = events.clone();
            let body = move |ctx: &Ctx| {
                for _ in 0..triggers_per {
                    for e in &evs {
                        ctx.trigger(*e, EventData::empty())?;
                    }
                }
                Ok(())
            };
            match policy {
                BenchPolicy::Unsync => rt.spawn(Decl::Unsync, body),
                BenchPolicy::Serial => rt.spawn(Decl::Serial, body),
                BenchPolicy::TwoPhase => rt.spawn(Decl::TwoPhase(&protocols), body),
                BenchPolicy::Basic => rt.spawn(Decl::Basic(&protocols), body),
                BenchPolicy::Bound => rt.spawn(Decl::Bound(&bounds), body),
                BenchPolicy::Route => unreachable!("route needs a pipeline stack"),
            }
            .join()
            .expect("e14 computation");
        }
        let wall = start.elapsed();
        rt.quiesce();
        let admissions = rounds * triggers_per * n_protocols;
        let ns = wall.as_nanos() as f64 / admissions as f64;
        if policy == BenchPolicy::Unsync {
            base_ns = Some(ns);
        }
        t.row(&[
            policy.label().to_string(),
            admissions.to_string(),
            ms(wall),
            format!("{ns:.1}"),
            base_ns.map(|b| ratio(ns / b)).unwrap_or_default(),
            (parks() - p0).to_string(),
            (gate_spins() - g0).to_string(),
        ]);
    }
    t
}
