//! Minimal fixed-width table printer for the experiment tables.

/// A simple table: header row plus data rows, printed with aligned columns.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i] - cells[i].len();
                line.push_str(&cells[i]);
                line.push_str(&" ".repeat(pad));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a duration in milliseconds with 2 decimals.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Format a throughput (per second) with no decimals.
pub fn per_sec(x: f64) -> String {
    format!("{x:.0}")
}

/// Format a speedup ratio with 2 decimals.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["policy", "ms"]);
        t.row(&["serial".into(), "12.00".into()]);
        t.row(&["vca-basic".into(), "3.50".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("policy"));
        assert!(lines[2].starts_with("serial"));
        // Columns align: "ms" header starts at same offset in each row.
        let col = lines[0].find("ms").unwrap();
        assert_eq!(&lines[2][col..col + 2], "12");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["x".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(std::time::Duration::from_millis(1500)), "1500.00");
        assert_eq!(per_sec(123.4), "123");
        assert_eq!(ratio(2.0), "2.00x");
    }
}
