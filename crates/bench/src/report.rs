//! Minimal fixed-width table printer for the experiment tables.

/// A simple table: header row plus data rows, printed with aligned columns.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i] - cells[i].len();
                line.push_str(&cells[i]);
                line.push_str(&" ".repeat(pad));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Render as a JSON array of row objects keyed by the column headers.
    /// Cells that parse as numbers are emitted as JSON numbers, everything
    /// else as strings (the workspace has no serde; this is hand-emitted).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (r, row) in self.rows.iter().enumerate() {
            if r > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{}: {}",
                    json_string(&self.header[i]),
                    json_cell(cell)
                ));
            }
            out.push('}');
        }
        out.push_str("\n  ]");
        out
    }
}

/// Quote and escape a JSON string.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A table cell as a JSON value: plain numbers stay numbers (so downstream
/// tooling can compare them), everything else (including `"2.00x"` ratios
/// and annotated cells) stays a string.
fn json_cell(cell: &str) -> String {
    if !cell.is_empty() && cell.parse::<f64>().map(f64::is_finite).unwrap_or(false) {
        cell.to_string()
    } else {
        json_string(cell)
    }
}

/// Format a duration in milliseconds with 2 decimals.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Format a throughput (per second) with no decimals.
pub fn per_sec(x: f64) -> String {
    format!("{x:.0}")
}

/// Format a speedup ratio with 2 decimals.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["policy", "ms"]);
        t.row(&["serial".into(), "12.00".into()]);
        t.row(&["vca-basic".into(), "3.50".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("policy"));
        assert!(lines[2].starts_with("serial"));
        // Columns align: "ms" header starts at same offset in each row.
        let col = lines[0].find("ms").unwrap();
        assert_eq!(&lines[2][col..col + 2], "12");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["x".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(std::time::Duration::from_millis(1500)), "1500.00");
        assert_eq!(per_sec(123.4), "123");
        assert_eq!(ratio(2.0), "2.00x");
    }

    #[test]
    fn json_numbers_stay_numbers_strings_get_quoted() {
        let mut t = Table::new(&["policy", "ms", "speedup"]);
        t.row(&["vca-basic".into(), "3.50".into(), "2.00x".into()]);
        let j = t.to_json();
        assert!(j.contains("\"policy\": \"vca-basic\""), "{j}");
        assert!(j.contains("\"ms\": 3.50"), "{j}");
        assert!(j.contains("\"speedup\": \"2.00x\""), "{j}");
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
