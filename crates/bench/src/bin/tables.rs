//! Regenerate the experiment tables of EXPERIMENTS.md.
//!
//! ```text
//! tables            # run all experiments
//! tables --exp e2   # run one experiment
//! tables --quick    # smaller parameters (CI-friendly)
//! ```

use samoa_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let exp = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.to_lowercase());
    let want = |name: &str| exp.as_deref().is_none_or(|e| e == name);

    if want("e1") {
        println!("==============================================================");
        println!("{}", experiments::e1());
    }
    if want("e2") {
        println!("==============================================================");
        let (sites, msgs) = if quick { (3, 20) } else { (5, 60) };
        println!("E2 (§7): atomic broadcast, {sites} sites, {msgs} messages — concurrency-control overhead\n");
        experiments::e2(sites, msgs).print();
        println!();
    }
    if want("e3") {
        println!("==============================================================");
        println!("E3: concurrency grain — throughput vs per-handler work (I/O-style)\n");
        experiments::e3().print();
        println!();
    }
    if want("e4") {
        println!("==============================================================");
        println!("E4 (§5.2/§5.3): pipeline parallelism per policy\n");
        experiments::e4().print();
        println!();
    }
    if want("e5") {
        println!("==============================================================");
        let trials = if quick { 3 } else { 10 };
        println!("E5 (§3 Problem): view change racing a broadcast burst\n");
        experiments::e5(trials).print();
        println!();
    }
    if want("e6") {
        println!("==============================================================");
        println!("E6: conflict-ratio sweep — serial floor vs versioning vs unsync\n");
        experiments::e6().print();
        println!();
    }
    if want("e7") {
        println!("==============================================================");
        println!("E7 (extension, paper §7 future work): read-only declarations share readers\n");
        experiments::e7().print();
        println!();
    }
    if want("e8") {
        println!("==============================================================");
        println!("E8 (ablation): tight vs coarse isolation declarations on the GC stack\n");
        experiments::e8().print();
        println!();
    }
    if want("e9") {
        println!("==============================================================");
        println!("E9: the two algorithm families — versioning (blocking, never aborts)\n    vs optimistic rollback/retry (never blocks, re-executes)\n");
        experiments::e9().print();
        println!();
    }
}
