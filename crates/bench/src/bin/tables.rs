//! Regenerate the experiment tables of EXPERIMENTS.md.
//!
//! ```text
//! tables                         # run all experiments
//! tables --exp e2                # run one experiment
//! tables --quick                 # smaller parameters (CI-friendly)
//! tables --json results.json    # also write machine-readable results
//! ```
//!
//! `--json` writes one object per executed experiment (keyed `e1`…`e11`)
//! with its parameters and table rows — the format `BENCH_baseline.json`
//! is checked in as, so perf regressions diff structurally instead of by
//! scraping stdout.

use samoa_bench::experiments;
use samoa_bench::report::{json_string, Table};

/// Accumulates per-experiment JSON fragments for `--json`.
struct JsonOut {
    entries: Vec<String>,
    quick: bool,
}

impl JsonOut {
    fn table(&mut self, name: &str, title: &str, t: &Table) {
        self.entries.push(format!(
            "{{\"experiment\": {}, \"title\": {}, \"rows\": {}}}",
            json_string(name),
            json_string(title),
            t.to_json()
        ));
    }

    fn text(&mut self, name: &str, title: &str, body: &str) {
        self.entries.push(format!(
            "{{\"experiment\": {}, \"title\": {}, \"text\": {}}}",
            json_string(name),
            json_string(title),
            json_string(body)
        ));
    }

    fn render(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str("  \"experiments\": [\n  ");
        out.push_str(&self.entries.join(",\n  "));
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let exp = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.to_lowercase());
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let want = |name: &str| exp.as_deref().is_none_or(|e| e == name);
    let mut json = JsonOut {
        entries: Vec::new(),
        quick,
    };

    if want("e1") {
        println!("==============================================================");
        let body = experiments::e1();
        println!("{body}");
        json.text(
            "e1",
            "Figure 1 runs r1-r3 and the checker's verdicts",
            &body,
        );
    }
    if want("e2") {
        println!("==============================================================");
        let (sites, msgs) = if quick { (3, 20) } else { (5, 60) };
        let title = format!(
            "E2 (§7): atomic broadcast, {sites} sites, {msgs} messages — concurrency-control overhead"
        );
        println!("{title}\n");
        let t = experiments::e2(sites, msgs);
        t.print();
        println!();
        json.table("e2", &title, &t);
    }
    if want("e3") {
        println!("==============================================================");
        let title = "E3: concurrency grain — throughput vs per-handler work (I/O-style)";
        println!("{title}\n");
        let t = experiments::e3();
        t.print();
        println!();
        json.table("e3", title, &t);
    }
    if want("e4") {
        println!("==============================================================");
        let title = "E4 (§5.2/§5.3): pipeline parallelism per policy";
        println!("{title}\n");
        let t = experiments::e4();
        t.print();
        println!();
        json.table("e4", title, &t);
    }
    if want("e5") {
        println!("==============================================================");
        let trials = if quick { 3 } else { 10 };
        let title = "E5 (§3 Problem): view change racing a broadcast burst";
        println!("{title}\n");
        let t = experiments::e5(trials);
        t.print();
        println!();
        json.table("e5", title, &t);
    }
    if want("e6") {
        println!("==============================================================");
        let title = "E6: conflict-ratio sweep — serial floor vs versioning vs unsync";
        println!("{title}\n");
        let t = experiments::e6();
        t.print();
        println!();
        json.table("e6", title, &t);
    }
    if want("e7") {
        println!("==============================================================");
        let title = "E7 (extension, paper §7 future work): read-only declarations share readers";
        println!("{title}\n");
        let t = experiments::e7();
        t.print();
        println!();
        json.table("e7", title, &t);
    }
    if want("e8") {
        println!("==============================================================");
        let title = "E8 (ablation): tight vs coarse isolation declarations on the GC stack";
        println!("{title}\n");
        let t = experiments::e8();
        t.print();
        println!();
        json.table("e8", title, &t);
    }
    if want("e9") {
        println!("==============================================================");
        let title = "E9: the two algorithm families — versioning (blocking, never aborts)\n    vs optimistic rollback/retry (never blocks, re-executes)";
        println!("{title}\n");
        let t = experiments::e9();
        t.print();
        println!();
        json.table("e9", title, &t);
    }

    if want("e10") {
        println!("==============================================================");
        let (stages, n_comps) = if quick { (3, 12) } else { (4, 24) };
        let title = format!(
            "E10 (observability): per-microprotocol contention profiles — pipeline, {stages} stages, {n_comps} computations"
        );
        println!("{title}\n");
        let t = experiments::e10(stages, n_comps);
        t.print();
        println!();
        json.table("e10", &title, &t);
    }

    if want("e11") {
        println!("==============================================================");
        let title = if quick {
            "E11 (checking): DPOR vs exhaustive schedule counts, small scenarios"
        } else {
            "E11 (checking): DPOR vs exhaustive schedule counts, incl. the width-3 diamond"
        };
        println!("{title}\n");
        let t = experiments::e11(quick);
        t.print();
        println!();
        json.table("e11", title, &t);
    }

    if want("e12") {
        println!("==============================================================");
        let title = "E12 (cluster): replicated KV over SimNet and TcpNet — client-fleet\n    throughput, tail latency, and convergence at 3/5/9 sites";
        println!("{title}\n");
        let t = experiments::e12(quick);
        t.print();
        println!();
        json.table("e12", title, &t);

        let title = "E12 (failover): kill the round-0 coordinator mid-load over TCP —\n    view-exclusion and recovery latency on the survivors";
        println!("{title}\n");
        let t = experiments::e12_failover(quick);
        t.print();
        println!();
        json.table("e12-failover", title, &t);

        let title = "E12 (metrics): observability overhead — the same fleet with and\n    without a metrics registry installed, plus the cluster health report";
        println!("{title}\n");
        let (t, health) = experiments::e12_metrics(quick);
        t.print();
        println!("\ncluster health (metered run):\n{health}");
        json.table("e12-metrics", title, &t);
        json.text("e12-health", "E12 cluster health report", &health);
    }

    if want("e13") {
        println!("==============================================================");
        let title = "E13 (checking): trace-guided PCT — schedules to the first §3\n    view-change violation, guided vs unguided change-point placement";
        println!("{title}\n");
        let t = experiments::e13(quick);
        t.print();
        println!();
        json.table("e13", title, &t);
    }

    if want("e14") {
        println!("==============================================================");
        let title = "E14 (fast path): uncontended admission cost per policy —\n    lock-free probe + CAS sweep, parking-seam counters pinned at zero";
        println!("{title}\n");
        let t = experiments::e14(quick);
        t.print();
        println!();
        json.table("e14", title, &t);
    }

    if let Some(path) = json_path {
        std::fs::write(&path, json.render()).expect("write --json output");
        eprintln!("wrote {path}");
    }
}
