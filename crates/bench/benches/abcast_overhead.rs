//! E2 (paper §7): overhead of the concurrency-control algorithms on the
//! atomic-broadcast protocol over the simulated network.
//!
//! Paper claim: "the overhead incurred by J-SAMOA's concurrency control
//! algorithms while executing our example protocol is relatively low" —
//! i.e. the versioning policies should sit close to `unsync` and well below
//! the cost of losing correctness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use samoa_bench::gc::abcast_run;
use samoa_proto::StackPolicy;

fn bench_abcast(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_abcast_overhead");
    g.sample_size(10);
    let sites = 3;
    let msgs = 20;
    for (policy, label) in [
        (StackPolicy::Unsync, "unsync"),
        (StackPolicy::Serial, "serial"),
        (StackPolicy::TwoPhase, "two-phase"),
        (StackPolicy::Basic, "vca-basic"),
        (StackPolicy::Bound, "vca-bound"),
        (StackPolicy::Route, "vca-route"),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &policy, |b, &p| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let o = abcast_run(sites, msgs, p, seed);
                assert_eq!(o.delivered, msgs);
                o
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_abcast);
criterion_main!(benches);
