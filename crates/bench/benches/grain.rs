//! E3: throughput as per-handler work grows (the "grain of concurrent
//! execution" of paper §7). The coarser the grain, the more the isolating
//! policies gain over the Appia-style serial baseline.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use samoa_bench::synth::{flat_stack, flat_workload, run_flat, BenchPolicy, WorkKind};

fn bench_grain(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_grain");
    g.sample_size(10);
    let n_protocols = 8;
    let n_comps = 24;
    for work_us in [100u64, 500] {
        for policy in [
            BenchPolicy::Serial,
            BenchPolicy::TwoPhase,
            BenchPolicy::Basic,
            BenchPolicy::Bound,
            BenchPolicy::Unsync,
        ] {
            let id = BenchmarkId::new(policy.label(), work_us);
            g.bench_with_input(id, &(work_us, policy), |b, &(w, p)| {
                let stack = flat_stack(n_protocols, Duration::from_micros(w), WorkKind::Io);
                let wl = flat_workload(n_protocols, n_comps, 2, 0.0, 7);
                b.iter(|| run_flat(&stack, &wl, p, 4))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_grain);
criterion_main!(benches);
