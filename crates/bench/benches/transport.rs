//! Transport-stack throughput under injected faults: how much goodput the
//! Chunker/Window/Checksum microprotocols sustain as the network degrades.

#![allow(clippy::field_reassign_with_default)]
use std::time::{Duration, Instant};

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use samoa_net::{NetConfig, SiteId};
use samoa_transport::{TransportConfig, TransportNet};

fn transfer(loss_pct: u64, corruption_pct: u64, bytes_len: usize, seed: u64) -> Duration {
    let net_cfg = NetConfig::fast(seed)
        .with_loss(loss_pct as f64 / 100.0)
        .with_corruption(corruption_pct as f64 / 100.0);
    let mut cfg = TransportConfig::default();
    cfg.mtu = 64;
    cfg.window = 16;
    cfg.rto = Duration::from_millis(8);
    let net = TransportNet::new(2, net_cfg, cfg);
    let payload = Bytes::from(vec![7u8; bytes_len]);
    let start = Instant::now();
    net.endpoint(0).send(SiteId(1), payload);
    while net.endpoint(1).delivered().is_empty() {
        std::thread::sleep(Duration::from_micros(500));
    }
    start.elapsed()
}

fn bench_transport(c: &mut Criterion) {
    let mut g = c.benchmark_group("transport_goodput");
    g.sample_size(10);
    for (loss, corr) in [(0u64, 0u64), (10, 0), (0, 10), (10, 5)] {
        let id = BenchmarkId::from_parameter(format!("loss{loss}_corr{corr}"));
        g.bench_with_input(id, &(loss, corr), |b, &(l, co)| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                transfer(l, co, 8_192, seed)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_transport);
criterion_main!(benches);
