//! E7 (extension — paper §7 future work): reader sharing via read-only
//! declarations, swept over the write ratio.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use samoa_bench::synth::{run_rw, rw_stack};

fn bench_rw(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_rw_modes");
    g.sample_size(10);
    let n_comps = 24;
    for write_every in [24usize, 4] {
        for (use_read_mode, label) in [(false, "all-write"), (true, "read-mode")] {
            let id = BenchmarkId::new(label, write_every);
            g.bench_with_input(id, &(write_every, use_read_mode), |b, &(we, rm)| {
                let stack = rw_stack(Duration::from_micros(300));
                b.iter(|| run_rw(&stack, n_comps, we, rm, 4))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_rw);
criterion_main!(benches);
