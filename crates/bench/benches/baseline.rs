//! E6: conflict-ratio sweep — the Appia-style serial baseline is the floor;
//! versioning throughput approaches the (unsafe) unsync ceiling as the
//! probability of touching the shared hot microprotocol falls.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use samoa_bench::synth::{flat_stack, flat_workload, run_flat, BenchPolicy, WorkKind};

fn bench_baseline(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_conflict_sweep");
    g.sample_size(10);
    let n_protocols = 8;
    let n_comps = 24;
    for hot_pct in [100u64, 50, 0] {
        for policy in [BenchPolicy::Serial, BenchPolicy::Basic, BenchPolicy::Unsync] {
            let id = BenchmarkId::new(policy.label(), hot_pct);
            g.bench_with_input(id, &(hot_pct, policy), |b, &(h, p)| {
                let stack = flat_stack(n_protocols, Duration::from_micros(300), WorkKind::Io);
                let wl = flat_workload(n_protocols, n_comps, 1, h as f64 / 100.0, 11);
                b.iter(|| run_flat(&stack, &wl, p, 4))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_baseline);
criterion_main!(benches);
