//! E4 (paper §5.2/§5.3): extra parallelism of `VCAbound` and `VCAroute`
//! over `VCAbasic` on a staged pipeline with asynchronous hand-off.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use samoa_bench::synth::{pipeline_stack, run_pipeline, BenchPolicy, WorkKind};

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_pipeline_policies");
    g.sample_size(10);
    let n_comps = 16;
    for stages in [2usize, 4] {
        for policy in [
            BenchPolicy::Basic,
            BenchPolicy::Bound,
            BenchPolicy::Route,
            BenchPolicy::Serial,
            BenchPolicy::Unsync,
        ] {
            let id = BenchmarkId::new(policy.label(), stages);
            g.bench_with_input(id, &(stages, policy), |b, &(s, p)| {
                let stack = pipeline_stack(s, Duration::from_micros(300), WorkKind::Io);
                b.iter(|| run_pipeline(&stack, n_comps, p, 4))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
