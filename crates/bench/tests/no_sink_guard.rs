//! Acceptance guard for the observability cost model: with no sink (trace)
//! or registry (metrics) installed the hot path is a single `Option`
//! branch — no event is constructed, no timestamp read, no counter bumped.
//! `samoa_core::trace::events_emitted()` counts every event delivered to
//! any sink process-wide, and `samoa_core::instruments_touched()` counts
//! every instrument update process-wide, so zero deltas across full
//! workloads prove the uninstrumented paths never reach delivery.
//!
//! All checks live in one `#[test]` each per counter because the counters
//! are process-global; a parallel instrumented test would perturb the
//! uninstrumented delta. The two `#[test]`s below watch *different*
//! counters, so they may still run in parallel with each other: the trace
//! test never installs a registry and the metrics test never installs a
//! sink on the uninstrumented leg it measures — wrong-counter cross-talk is
//! exactly what the assertions would catch.

use std::sync::Arc;
use std::time::Duration;

use samoa_bench::cluster::{kv_fleet_run, Backend, FleetConfig};
use samoa_bench::synth::{
    pipeline_stack, pipeline_stack_with_sink, run_pipeline, BenchPolicy, WorkKind,
};
use samoa_core::trace::events_emitted;
use samoa_core::{instruments_touched, Registry, TraceBuffer};
use samoa_proto::StackPolicy;

#[test]
fn untraced_runtime_emits_nothing_traced_runtime_emits() {
    // No sink: a full pipeline workload across every interesting policy
    // must not deliver a single trace event.
    let stack = pipeline_stack(3, Duration::ZERO, WorkKind::Cpu);
    let before = events_emitted();
    for policy in [
        BenchPolicy::Basic,
        BenchPolicy::Bound,
        BenchPolicy::Route,
        BenchPolicy::TwoPhase,
    ] {
        run_pipeline(&stack, 6, policy, 2);
    }
    assert_eq!(
        events_emitted() - before,
        0,
        "untraced runtime delivered trace events: the no-sink hot path \
         must cost exactly one branch"
    );

    // Same workload with a sink: events flow (the counter is live, not a
    // vacuous zero).
    let sink = TraceBuffer::new();
    let traced = pipeline_stack_with_sink(3, Duration::ZERO, WorkKind::Cpu, sink.clone());
    let before = events_emitted();
    run_pipeline(&traced, 6, BenchPolicy::Basic, 2);
    let delta = events_emitted() - before;
    assert!(delta > 0, "traced runtime emitted no events");
    assert_eq!(sink.drain().len() as u64, delta);
}

#[test]
fn unmetered_cluster_touches_no_instrument_metered_cluster_does() {
    // No registry: a full replicated-KV fleet run — client submits, abcast
    // ordering, per-site applies, transport traffic — must not update a
    // single metrics instrument. This is the branch-only proof for the
    // whole per-node instrument family (RelComm, consensus, abcast, KV).
    let cfg = FleetConfig::new(Backend::Sim, 3, 2, 4, StackPolicy::Basic);
    let before = instruments_touched();
    let o = kv_fleet_run(&cfg);
    assert!(o.converged, "uninstrumented fleet diverged");
    assert_eq!(
        instruments_touched() - before,
        0,
        "unmetered cluster updated metrics instruments: the no-registry \
         hot path must cost exactly one branch"
    );

    // Same workload with a registry: instruments move (the counter is
    // live, not a vacuous zero) and the snapshot reflects the run.
    let before = instruments_touched();
    let o = kv_fleet_run(&cfg.clone().metered());
    assert!(o.converged, "metered fleet diverged");
    assert!(
        instruments_touched() - before > 0,
        "metered cluster touched no instruments"
    );
    let health = o.health.expect("metered run snapshots health");
    assert!(health.metrics.counters.values().any(|&v| v > 0));

    // And a bare registry handle shows the same discipline directly.
    let reg = Arc::new(Registry::new());
    let before = instruments_touched();
    reg.counter("guard.probe").add(1);
    assert_eq!(instruments_touched() - before, 1);
}
