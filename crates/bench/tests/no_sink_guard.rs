//! Acceptance guard for the tracing cost model: with no sink installed the
//! hot path is a single `Option` branch — no event is constructed, no
//! timestamp read, nothing emitted. `samoa_core::trace::events_emitted()`
//! counts every event delivered to any sink process-wide, so a zero delta
//! across a full workload proves the untraced path never reaches delivery.
//!
//! Both checks live in one `#[test]` because the counter is process-global;
//! a parallel traced test would perturb the untraced delta.

use std::time::Duration;

use samoa_bench::synth::{
    pipeline_stack, pipeline_stack_with_sink, run_pipeline, BenchPolicy, WorkKind,
};
use samoa_core::trace::events_emitted;
use samoa_core::TraceBuffer;

#[test]
fn untraced_runtime_emits_nothing_traced_runtime_emits() {
    // No sink: a full pipeline workload across every interesting policy
    // must not deliver a single trace event.
    let stack = pipeline_stack(3, Duration::ZERO, WorkKind::Cpu);
    let before = events_emitted();
    for policy in [
        BenchPolicy::Basic,
        BenchPolicy::Bound,
        BenchPolicy::Route,
        BenchPolicy::TwoPhase,
    ] {
        run_pipeline(&stack, 6, policy, 2);
    }
    assert_eq!(
        events_emitted() - before,
        0,
        "untraced runtime delivered trace events: the no-sink hot path \
         must cost exactly one branch"
    );

    // Same workload with a sink: events flow (the counter is live, not a
    // vacuous zero).
    let sink = TraceBuffer::new();
    let traced = pipeline_stack_with_sink(3, Duration::ZERO, WorkKind::Cpu, sink.clone());
    let before = events_emitted();
    run_pipeline(&traced, 6, BenchPolicy::Basic, 2);
    let delta = events_emitted() - before;
    assert!(delta > 0, "traced runtime emitted no events");
    assert_eq!(sink.drain().len() as u64, delta);
}
