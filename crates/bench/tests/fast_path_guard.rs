//! Acceptance guard for the lock-free admission cost model: the
//! *uncontended* Rule-2 admission path is a single atomic probe — no
//! parking, no condvar signalling (each park / notify is the one place the
//! runtime would make a syscall), no gate spinning, and zero heap
//! allocations. `samoa_core::version::{parks, park_notifies, gate_spins}`
//! count every slow-path entry process-wide on the parking seam shared by
//! `VersionCell`, the 2PL `LockCell`s and `Runtime::quiesce`, so zero
//! deltas across full sequential workloads prove the fast path never
//! leaves user space.
//!
//! The park counters are process-global and the liveness leg parks on
//! purpose, so everything watching them lives in one `#[test]`
//! (uncontended first, then contended); the allocation proof uses a
//! thread-local counter and runs as its own `#[test]` in parallel safely.
//! Each file under `tests/` is its own process, so sibling test binaries
//! (which do park) cannot perturb these counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use samoa_bench::synth::{pipeline_stack, WorkKind};
use samoa_core::version::{gate_spins, park_notifies, parks};
use samoa_core::{Ctx, Decl, EventData, ProtocolState, Result, Runtime, StackBuilder};

// ---- thread-local counting allocator ------------------------------------

/// Counts allocations per thread; `Ctx::trigger` runs handlers inline on
/// the calling worker thread, so a handler-side reading of this counter
/// captures exactly the admissions it performed, immune to allocator noise
/// from unrelated threads.
struct CountingAlloc;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // `try_with`: allocations during TLS teardown must not panic.
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

// ---- helpers -------------------------------------------------------------

/// A stack of `n` independent no-op microprotocols (handler `i` on event
/// `i` does nothing), for spawning computations whose only cost is the
/// admission machinery itself.
fn noop_stack(
    n: usize,
) -> (
    Runtime,
    Vec<samoa_core::ProtocolId>,
    Vec<samoa_core::EventType>,
) {
    let mut b = StackBuilder::new();
    let mut protocols = Vec::new();
    let mut events = Vec::new();
    for i in 0..n {
        let p = b.protocol(&format!("P{i}"));
        let e = b.event(&format!("E{i}"));
        b.bind(e, p, &format!("h{i}"), move |_ctx, _ev| Ok(()));
        protocols.push(p);
        events.push(e);
    }
    (Runtime::new(b.build()), protocols, events)
}

// ---- the park/notify/gate-spin guard ------------------------------------

#[test]
fn uncontended_admission_never_parks_contended_admission_does() {
    // --- zero leg: strictly sequential computations (each joined before
    // the next spawns) across every policy family — version cells
    // (Basic/Bound/Route), the sharded 2PL lock table (TwoPhase) and the
    // all-declaring Serial comparator. Nothing can conflict, so the
    // fast path must absorb every admission: zero parks, zero notifies,
    // zero Rule-1 gate spins.
    let (rt, protocols, events) = noop_stack(3);
    let bounds: Vec<(samoa_core::ProtocolId, u64)> = protocols.iter().map(|&p| (p, 1)).collect();
    let route_stack = pipeline_stack(3, Duration::ZERO, WorkKind::Cpu);
    let pattern = route_stack.route_pattern();

    let (p0, n0, g0) = (parks(), park_notifies(), gate_spins());
    for _ in 0..32 {
        let evs = events.clone();
        let body = move |ctx: &Ctx| {
            for e in &evs {
                ctx.trigger(*e, EventData::empty())?;
            }
            Ok(())
        };
        for decl in [
            Decl::Basic(&protocols),
            Decl::Bound(&bounds),
            Decl::TwoPhase(&protocols),
            Decl::Serial,
        ] {
            rt.spawn(decl, body.clone()).join().expect("noop comp");
        }
        let entry = route_stack.entry;
        route_stack
            .rt
            .spawn(Decl::Route(&pattern), move |ctx: &Ctx| {
                ctx.trigger(entry, EventData::empty())
            })
            .join()
            .expect("route comp");
    }
    rt.quiesce();
    route_stack.rt.quiesce();
    assert_eq!(parks() - p0, 0, "uncontended admission parked");
    assert_eq!(park_notifies() - n0, 0, "uncontended completion notified");
    assert_eq!(
        gate_spins() - g0,
        0,
        "uncontended Rule-1 sweep spun on a gate"
    );

    // --- liveness leg: an actual conflict must drive the counters, or the
    // zero assertions above are vacuous. Computation A holds protocol P
    // asleep past the spin budget; B's admission on P must park, and A's
    // Rule-3 release must notify it.
    let mut b = StackBuilder::new();
    let p = b.protocol("P");
    let e = b.event("E");
    let running = Arc::new(AtomicBool::new(false));
    {
        let running = Arc::clone(&running);
        let state = ProtocolState::new(p, 0u64);
        b.bind(e, p, "h", move |ctx, ev| {
            let sleep_ms: u64 = *ev.expect::<u64>(e)?;
            state.with(ctx, |v| *v += 1);
            if sleep_ms > 0 {
                running.store(true, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(sleep_ms));
            }
            Ok(())
        });
    }
    let rt = Runtime::new(b.build());
    let decl = [p];
    let (p0, n0) = (parks(), park_notifies());
    let a = rt.spawn(Decl::Basic(&decl), move |ctx: &Ctx| ctx.trigger(e, 80u64));
    while !running.load(Ordering::SeqCst) {
        std::hint::spin_loop();
    }
    let b_comp = rt.spawn(Decl::Basic(&decl), move |ctx: &Ctx| ctx.trigger(e, 0u64));
    a.join().expect("holder");
    b_comp.join().expect("waiter");
    assert!(parks() - p0 > 0, "a blocked admission never parked");
    assert!(
        park_notifies() - n0 > 0,
        "a release with a parked waiter never notified"
    );
}

// ---- the zero-allocation guard ------------------------------------------

#[test]
fn uncontended_admission_allocates_nothing() {
    // Admission cost is isolated by differencing against `Unsync` (whose
    // Rule 2 is a no-op): the same handler loop on the same thread
    // allocates some fixed amount per trigger for the shared machinery
    // (exec state, event dispatch); if versioned admission allocated
    // anything, the versioned total would exceed the unsync total.
    fn allocs_per_run(rt: &Runtime, decl: Decl<'_>, events: &[samoa_core::EventType]) -> u64 {
        const TRIGGERS: usize = 128;
        let out = Arc::new(AtomicU64::new(0));
        let evs = events.to_vec();
        let out2 = Arc::clone(&out);
        let body = move |ctx: &Ctx| -> Result<()> {
            // Warm up lazy one-time allocations (TLS, queue growth).
            for e in &evs {
                for _ in 0..16 {
                    ctx.trigger(*e, EventData::empty())?;
                }
            }
            let before = thread_allocs();
            for e in &evs {
                for _ in 0..TRIGGERS {
                    ctx.trigger(*e, EventData::empty())?;
                }
            }
            out2.store(thread_allocs() - before, Ordering::SeqCst);
            Ok(())
        };
        rt.spawn(decl, body).join().expect("measured comp");
        out.load(Ordering::SeqCst)
    }

    let (rt, protocols, events) = noop_stack(2);
    // Bound declarations must cover warmup + measured visits.
    let bounds: Vec<(samoa_core::ProtocolId, u64)> = protocols.iter().map(|&p| (p, 1024)).collect();
    let unsync = allocs_per_run(&rt, Decl::Unsync, &events);
    let basic = allocs_per_run(&rt, Decl::Basic(&protocols), &events);
    let bound = allocs_per_run(&rt, Decl::Bound(&bounds), &events);
    let two_phase = allocs_per_run(&rt, Decl::TwoPhase(&protocols), &events);
    rt.quiesce();
    assert_eq!(
        basic, unsync,
        "VCAbasic admission allocated ({basic} vs {unsync} unsync allocs per run)"
    );
    assert_eq!(
        bound, unsync,
        "VCAbound admission allocated ({bound} vs {unsync} unsync allocs per run)"
    );
    assert_eq!(
        two_phase, unsync,
        "2PL admission allocated ({two_phase} vs {unsync} unsync allocs per run)"
    );
}
