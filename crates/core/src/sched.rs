//! Scheduling instrumentation: the hook a systematic-testing controller
//! plugs into the runtime.
//!
//! The runtime's observable nondeterminism comes from a handful of decision
//! points: who wins the global spawn lock (Rule 1 order), when a blocked
//! admission wait is woken (Rule 2), which queued task a worker dequeues,
//! and when an early release (VCAbound's per-visit bump, VCAroute's
//! reachability scan) hands a microprotocol to a successor. [`SchedHook`]
//! exposes exactly those points. A controller that implements it — the
//! `samoa-check` crate ships one — can serialise the runtime's threads into
//! cooperative turn-taking and *choose* each interleaving instead of leaving
//! it to the OS scheduler, which is what makes schedule exploration and
//! deterministic replay possible.
//!
//! ## Contract
//!
//! * Threads announce themselves: the runtime calls [`SchedHook::on_thread_spawn`]
//!   in the *spawning* thread (returning a token), then
//!   [`SchedHook::on_thread_start`] as the first action of the new thread and
//!   [`SchedHook::on_thread_exit`] as its last. A controller can therefore
//!   account for every runtime thread with no startup race.
//! * [`SchedHook::yield_point`] marks a scheduling decision point. A
//!   controller typically parks the calling thread there until it is that
//!   thread's turn.
//! * Blocking is cooperative: where the uninstrumented runtime would wait on
//!   a condition variable, the instrumented runtime loops
//!   `check-predicate → SchedHook::block(resource)`. The hook returns once
//!   the controller re-schedules the thread (after a matching
//!   [`SchedHook::signal`]); the caller re-checks its predicate and blocks
//!   again if it still does not hold. Spurious wake-ups are therefore
//!   harmless, and a signal can never be lost as long as signals are only
//!   issued by the running thread.
//!
//! Production runtimes carry **no hook at all** (`Option::None`), so the
//! per-operation cost of this instrumentation is one well-predicted branch.

use crate::error::CompId;
use crate::protocol::ProtocolId;

/// A scheduling decision point inside the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPoint {
    /// Rule 1 is about to run for a new computation: the calling thread is
    /// about to take the global spawn lock and allocate versions.
    Spawn,
    /// A worker thread of `comp` dequeued a task and is about to run it.
    TaskDequeue {
        /// The computation whose task was dequeued.
        comp: CompId,
    },
    /// `comp` is about to run the Rule 2 admission check for a handler of
    /// `protocol` (for `Unsync` computations: about to call the handler —
    /// there is no admission, but the interleaving point still exists).
    Admission {
        /// The computation requesting admission.
        comp: CompId,
        /// The microprotocol owning the handler about to run.
        protocol: ProtocolId,
    },
    /// `comp` just released `protocol` to its successors *before*
    /// completing — Rule 4 of VCAbound (a visit was consumed) or VCAroute
    /// (the microprotocol became unreachable from active handlers).
    EarlyRelease {
        /// The releasing computation.
        comp: CompId,
        /// The released microprotocol.
        protocol: ProtocolId,
        /// Which rule triggered the release.
        reason: ReleaseReason,
    },
    /// An optimistic transaction (`samoa_core::optimistic`) finished an
    /// attempt and is about to validate its read set under the commit lock.
    OccValidate {
        /// The transaction (1-based, per `OccRuntime`).
        tx: u64,
    },
    /// An optimistic transaction validated successfully and committed its
    /// overlays.
    OccCommit {
        /// The transaction.
        tx: u64,
    },
    /// An optimistic transaction failed validation; the attempt was rolled
    /// back and will be re-run from scratch.
    OccRetry {
        /// The transaction.
        tx: u64,
        /// The 1-based number of the aborted attempt.
        attempt: u64,
    },
}

/// Why a microprotocol was released before its computation completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseReason {
    /// VCAbound Rule 4: a handler call finished, consuming one declared
    /// visit; the local version advanced by one.
    BoundVisit,
    /// VCAroute: the microprotocol is no longer active or reachable from an
    /// active handler in the declared routing pattern.
    RouteUnreachable,
}

/// A waitable resource inside the runtime, identifying *what* a
/// cooperatively blocked thread is waiting for — and, for dependence-aware
/// exploration (DPOR), *what shared state* a scheduling step touches. The
/// `Version`/`Lock` variants stand for the microprotocol as a whole (its
/// version counters *and* its local state, which admission guards), so two
/// steps conflict exactly when they name a common resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SchedResource {
    /// The local version counter (`lv_p`) of the microprotocol with this
    /// index: admission waits (Rule 2) and completion upgrades (Rule 3).
    Version(u32),
    /// The 2PL lock-table slot of the microprotocol with this index.
    Lock(u32),
    /// The task queue of a computation: workers waiting for work.
    Queue(CompId),
    /// Completion of a computation: `join`/blocking-run waiters.
    Done(CompId),
    /// The runtime's active-computation count: `quiesce` waiters.
    Quiesce,
    /// Rule 1's atomicity domain: the global spawn lock and the `gv`
    /// counters it allocates pre-versions from. Every pair of spawns
    /// conflicts (their order decides computation age).
    SpawnLock,
    /// One shared [`OccCell`](crate::optimistic::OccCell), by cell id: the
    /// members of an optimistic transaction's validation set. Two
    /// transactions conflict iff their validation sets intersect.
    OccCell(u64),
    /// The network fate of one site: its inbound/outbound channel state and
    /// its liveness. Sends to a site, deliveries at it, and the decision to
    /// crash or isolate it all name this resource, so they are mutually
    /// ordered by dependence-aware exploration.
    NetSite(u16),
    /// One in-flight datagram, by the transport's monotone send sequence
    /// number. The alternatives for a single message (deliver it, drop it,
    /// duplicate it) conflict with each other through this resource.
    Msg(u64),
    /// The scenario's fault budget: every budget-consuming fault decision
    /// (crash, drop, duplicate, partition) names it, so faults are totally
    /// ordered — which alternatives remain depends on what was spent.
    FaultBudget,
    /// The virtual timer wheel of a fault scenario: advancing time (and the
    /// retransmission/failure-detector ticks it fires) conflicts with every
    /// other tick.
    TimeWheel,
}

/// One alternative of an *external* decision point: an environment move —
/// deliver this in-flight datagram, drop it, crash that site, advance the
/// timer wheel — that a fault-exploring scenario offers to the controller.
///
/// `id` is a pseudo-thread identity: it must be *stable* (the same physical
/// alternative gets the same id in every run that shares the decision
/// prefix) and must never collide with a real controller thread id, so a
/// dependence-aware explorer can treat environment moves exactly like
/// thread steps. `footprint` is the move's [`SchedResource`] set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExternalChoice {
    /// Stable pseudo-thread id of this alternative (disjoint from real
    /// controller thread ids).
    pub id: u32,
    /// The shared state this move touches, in DPOR's resource vocabulary.
    pub footprint: Vec<SchedResource>,
}

impl ExternalChoice {
    /// Convenience constructor.
    pub fn new(id: u32, footprint: Vec<SchedResource>) -> ExternalChoice {
        ExternalChoice { id, footprint }
    }
}

/// Instrumentation hook for schedule control (see module docs).
///
/// Every method has a no-op default, so a hook only overrides what it needs.
/// Implementations must be `Send + Sync`; methods are called concurrently
/// from runtime threads.
pub trait SchedHook: Send + Sync {
    /// A new runtime thread is about to be spawned by the calling thread.
    /// Returns a token passed to [`SchedHook::on_thread_start`] by the new
    /// thread, letting the controller tie the two ends together.
    fn on_thread_spawn(&self) -> u64 {
        0
    }

    /// [`SchedHook::on_thread_spawn`] with a *static seed*: an upper bound,
    /// known before the thread runs, on every [`SchedResource`] it can ever
    /// touch. The runtime derives the seed from the computation's resolved
    /// declaration (its version/lock entries plus its queue, completion and
    /// quiesce resources) and only announces one when it is sound — never
    /// for `Unsync` computations, and never on stacks with declared nested
    /// spawns. A dependence-aware controller can treat the seed as the
    /// thread's pending footprint before its first real announcement, which
    /// lets DPOR prove steps of statically disjoint computations
    /// independent without exploring both orders. The default discards the
    /// seed and forwards to [`SchedHook::on_thread_spawn`].
    fn on_thread_spawn_with(&self, static_footprint: &[SchedResource]) -> u64 {
        let _ = static_footprint;
        self.on_thread_spawn()
    }

    /// First action of a newly spawned runtime thread.
    fn on_thread_start(&self, token: u64) {
        let _ = token;
    }

    /// Last action of a runtime thread before it terminates.
    fn on_thread_exit(&self) {}

    /// A scheduling decision point was reached by the calling thread.
    fn yield_point(&self, point: SchedPoint) {
        let _ = point;
    }

    /// A scheduling decision point, annotated with its resource footprint:
    /// the [`SchedResource`]s the surrounding action touches. Two steps of
    /// different threads are *dependent* — their order can matter — iff
    /// their footprints intersect; that relation is what a partial-order-
    /// reducing explorer prunes with. Whether the footprint describes the
    /// action *before* or *after* the yield is fixed per [`SchedPoint`]
    /// (e.g. `Admission` announces the upcoming handler's protocol,
    /// `TaskDequeue` reports the queue pop that just happened); a consumer
    /// that cares — the `samoa-check` controller — attributes it
    /// accordingly. The default forwards to [`SchedHook::yield_point`], so
    /// footprint-oblivious hooks need not change.
    fn yield_point_with(&self, point: SchedPoint, footprint: &[SchedResource]) {
        let _ = footprint;
        self.yield_point(point);
    }

    /// A silent resource touch: the calling thread accessed `resource`
    /// *without* reaching a scheduling decision point — e.g. a handler
    /// body reading or writing a microprotocol's local state between
    /// yields. Dependence-aware exploration needs these accesses in the
    /// current step's footprint (two unsynchronised handlers touching the
    /// same state conflict even though no yield separates the accesses),
    /// but they must never reschedule, so this is not a yield.
    fn note(&self, resource: SchedResource) {
        let _ = resource;
    }

    /// Cooperative block: the calling thread found its wait predicate false
    /// and yields until `resource` is signalled. Callers re-check their
    /// predicate on return and call `block` again if it still fails.
    fn block(&self, resource: SchedResource) {
        let _ = resource;
    }

    /// `resource` changed in a way that may unblock waiters.
    fn signal(&self, resource: SchedResource) {
        let _ = resource;
    }

    /// An *external* decision point: the calling thread (which currently
    /// holds the turn, under a serialising controller) offers `alts` —
    /// environment moves such as message delivery, fault injection, or a
    /// timer tick — and the hook picks one. Returns an index into `alts`.
    ///
    /// Callers must pass the alternatives in a canonical order that is a
    /// pure function of the decision history (sorted by
    /// [`ExternalChoice::id`] is the convention), so replaying a recorded
    /// choice sequence re-offers the identical slice. The default picks the
    /// first alternative, which makes uninstrumented runs deterministic.
    fn choose_external(&self, alts: &[ExternalChoice]) -> usize {
        let _ = alts;
        0
    }
}

/// The do-nothing hook; useful as a placeholder in tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopHook;

impl SchedHook for NoopHook {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_hook_defaults() {
        let h = NoopHook;
        assert_eq!(h.on_thread_spawn(), 0);
        h.on_thread_start(0);
        h.yield_point(SchedPoint::Spawn);
        h.block(SchedResource::Quiesce);
        h.signal(SchedResource::Version(0));
        h.on_thread_exit();
    }

    #[test]
    fn resources_are_hashable_and_distinct() {
        use std::collections::HashSet;
        let set: HashSet<SchedResource> = [
            SchedResource::Version(0),
            SchedResource::Version(1),
            SchedResource::Lock(0),
            SchedResource::Queue(1),
            SchedResource::Done(1),
            SchedResource::Quiesce,
            SchedResource::SpawnLock,
            SchedResource::OccCell(0),
            SchedResource::OccCell(1),
            SchedResource::NetSite(0),
            SchedResource::NetSite(1),
            SchedResource::Msg(0),
            SchedResource::Msg(1),
            SchedResource::FaultBudget,
            SchedResource::TimeWheel,
        ]
        .into_iter()
        .collect();
        assert_eq!(set.len(), 15);
    }

    #[test]
    fn choose_external_defaults_to_first_alternative() {
        let h = NoopHook;
        let alts = [
            ExternalChoice::new(4096, vec![SchedResource::Msg(0)]),
            ExternalChoice::new(4100, vec![SchedResource::Msg(1)]),
        ];
        assert_eq!(h.choose_external(&alts), 0);
    }

    #[test]
    fn seeded_spawn_defaults_to_plain_spawn() {
        struct Tok;
        impl SchedHook for Tok {
            fn on_thread_spawn(&self) -> u64 {
                7
            }
        }
        let h = Tok;
        assert_eq!(h.on_thread_spawn_with(&[SchedResource::Version(0)]), 7);
    }

    #[test]
    fn yield_point_with_defaults_to_plain_yield() {
        // A hook that only overrides `yield_point` still sees annotated
        // yields through the default forwarding.
        use std::sync::atomic::{AtomicU32, Ordering};
        struct Count(AtomicU32);
        impl SchedHook for Count {
            fn yield_point(&self, _point: SchedPoint) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let h = Count(AtomicU32::new(0));
        h.yield_point_with(SchedPoint::Spawn, &[SchedResource::SpawnLock]);
        assert_eq!(h.0.load(Ordering::Relaxed), 1);
    }
}
