//! Protocol stacks: registries of microprotocols, event types and bindings.
//!
//! A [`StackBuilder`] registers microprotocols, event types and handlers and
//! binds event types to handlers (the paper's `bind` primitive, §3). The
//! finished, immutable [`Stack`] is handed to the
//! [`Runtime`](crate::runtime::Runtime).
//!
//! Per the paper (§4) we do not support dynamic binding: all handlers must be
//! bound before any `isolated` commences and cannot be (re)bound inside
//! computations. Freezing the builder into an immutable `Stack` enforces this
//! statically.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::ctx::Ctx;
use crate::error::Result;
use crate::event::{EventData, EventType};
use crate::handler::{HandlerEntry, HandlerFn, HandlerId};
use crate::protocol::ProtocolId;

/// Mutable registry used to assemble a protocol stack.
#[derive(Default)]
pub struct StackBuilder {
    protocols: Vec<String>,
    events: Vec<String>,
    handlers: Vec<HandlerEntry>,
    /// `bindings[event] = handlers bound to that event, in bind order`.
    bindings: Vec<Vec<HandlerId>>,
    /// `triggers[handler] = events the handler's body may trigger`, if
    /// declared (see [`StackBuilder::declare_triggers`]).
    triggers: Vec<Option<Vec<EventType>>>,
    /// `nested_spawns[handler] = root events of the computations the
    /// handler's body may spawn` (see
    /// [`StackBuilder::declare_nested_spawn`]). Empty = spawns nothing.
    nested_spawns: Vec<Vec<EventType>>,
}

impl StackBuilder {
    /// Start an empty stack.
    pub fn new() -> Self {
        StackBuilder::default()
    }

    /// Register a microprotocol and get its id.
    pub fn protocol(&mut self, name: &str) -> ProtocolId {
        let id = ProtocolId(self.protocols.len() as u32);
        self.protocols.push(name.to_string());
        id
    }

    /// Register an event type and get its first-class token.
    pub fn event(&mut self, name: &str) -> EventType {
        let id = EventType(self.events.len() as u32);
        self.events.push(name.to_string());
        self.bindings.push(Vec::new());
        id
    }

    /// Register handler `name` of microprotocol `protocol` with body `f`,
    /// and bind it to event type `event`.
    ///
    /// Returns the handler's id, usable in routing patterns
    /// ([`RoutePattern`](crate::graph::RoutePattern)).
    pub fn bind<F>(&mut self, event: EventType, protocol: ProtocolId, name: &str, f: F) -> HandlerId
    where
        F: Fn(&Ctx, &EventData) -> Result<()> + Send + Sync + 'static,
    {
        assert!(
            protocol.index() < self.protocols.len(),
            "unknown protocol {protocol:?}"
        );
        assert!(event.index() < self.events.len(), "unknown event {event:?}");
        self.bind_inner(event, protocol, name, Arc::new(f) as HandlerFn, false)
    }

    /// Like [`StackBuilder::bind`], but declares the handler **read-only**:
    /// it promises not to mutate its microprotocol's state (use
    /// [`ProtocolState::read_with`](crate::protocol::ProtocolState::read_with)
    /// inside). Computations that declared the microprotocol with
    /// [`AccessMode::Read`](crate::policy::AccessMode::Read) may only call
    /// read-only handlers.
    pub fn bind_read_only<F>(
        &mut self,
        event: EventType,
        protocol: ProtocolId,
        name: &str,
        f: F,
    ) -> HandlerId
    where
        F: Fn(&Ctx, &EventData) -> Result<()> + Send + Sync + 'static,
    {
        self.bind_inner(event, protocol, name, Arc::new(f) as HandlerFn, true)
    }

    fn bind_inner(
        &mut self,
        event: EventType,
        protocol: ProtocolId,
        name: &str,
        func: HandlerFn,
        read_only: bool,
    ) -> HandlerId {
        assert!(
            protocol.index() < self.protocols.len(),
            "unknown protocol {protocol:?}"
        );
        assert!(event.index() < self.events.len(), "unknown event {event:?}");
        let id = HandlerId(self.handlers.len() as u32);
        self.handlers.push(HandlerEntry {
            id,
            name: name.to_string(),
            protocol,
            func,
            read_only,
        });
        self.triggers.push(None);
        self.nested_spawns.push(Vec::new());
        self.bindings[event.index()].push(id);
        id
    }

    /// Declare that `handler`'s body may spawn a *new computation* rooted at
    /// `root_event` (via [`Runtime::run`](crate::runtime::Runtime::run),
    /// [`Runtime::spawn`](crate::runtime::Runtime::spawn) or an `isolated*`
    /// convenience) — distinct from [`StackBuilder::declare_triggers`],
    /// which covers same-computation `trigger`s.
    ///
    /// Like trigger metadata, the declaration is an upper bound on
    /// behaviour: a handler may spawn fewer computations than declared, but
    /// spawning an undeclared one makes the admission-deadlock analysis
    /// ([`crate::analysis::analyze_deadlocks`]) and the static independence
    /// relation derived from the conflict matrix unreliable. A *blocking*
    /// nested spawn whose declaration overlaps the running computation's is
    /// exactly the Rule-2 admission deadlock the analysis flags (`SA040`).
    ///
    /// # Panics
    ///
    /// Panics if `handler` or `root_event` is not registered.
    pub fn declare_nested_spawn(&mut self, handler: HandlerId, root_event: EventType) {
        assert!(
            handler.index() < self.handlers.len(),
            "unknown handler {handler:?}"
        );
        assert!(
            root_event.index() < self.events.len(),
            "unknown event {root_event:?}"
        );
        self.nested_spawns[handler.index()].push(root_event);
    }

    /// Declare the event types `handler`'s body may trigger — the static
    /// call-graph metadata consumed by [`crate::analysis`].
    ///
    /// The declaration is an upper bound on behaviour: a handler may trigger
    /// fewer events than declared (or none), but triggering an undeclared
    /// event makes every analysis result about this stack unreliable. Each
    /// occurrence in `events` stands for **at most one** trigger of that
    /// event per handler invocation; a handler that may trigger the same
    /// event up to `k` times per invocation lists it `k` times (this
    /// multiplicity is what [`crate::analysis::infer_bounds`] counts).
    ///
    /// Calling this again for the same handler *appends* to the declaration.
    /// Handlers with no declaration at all are treated by the analyses as
    /// triggering nothing, and reported by the linter (`SA006`).
    ///
    /// # Panics
    ///
    /// Panics if `handler` or any event is not registered on this builder.
    pub fn declare_triggers(&mut self, handler: HandlerId, events: &[EventType]) {
        assert!(
            handler.index() < self.handlers.len(),
            "unknown handler {handler:?}"
        );
        for &e in events {
            assert!(e.index() < self.events.len(), "unknown event {e:?}");
        }
        self.triggers[handler.index()]
            .get_or_insert_with(Vec::new)
            .extend_from_slice(events);
    }

    /// [`StackBuilder::bind`] plus [`StackBuilder::declare_triggers`] in one
    /// call: register and bind the handler, and declare the events its body
    /// may trigger.
    pub fn bind_with_triggers<F>(
        &mut self,
        event: EventType,
        protocol: ProtocolId,
        name: &str,
        triggers: &[EventType],
        f: F,
    ) -> HandlerId
    where
        F: Fn(&Ctx, &EventData) -> Result<()> + Send + Sync + 'static,
    {
        let id = self.bind(event, protocol, name, f);
        self.declare_triggers(id, triggers);
        id
    }

    /// Bind an *additional* event type to an already-registered handler.
    ///
    /// SAMOA event types and handler names are first-class; a handler may be
    /// bound to several event types.
    pub fn bind_existing(&mut self, event: EventType, handler: HandlerId) {
        assert!(
            handler.index() < self.handlers.len(),
            "unknown handler {handler:?}"
        );
        assert!(event.index() < self.events.len(), "unknown event {event:?}");
        self.bindings[event.index()].push(handler);
    }

    /// Freeze the registry into an immutable [`Stack`].
    pub fn build(self) -> Stack {
        let mut by_name = HashMap::new();
        for h in &self.handlers {
            by_name.insert(h.name.clone(), h.id);
        }
        Stack {
            inner: Arc::new(StackInner {
                protocols: self.protocols,
                events: self.events,
                handlers: self.handlers,
                bindings: self.bindings,
                triggers: self.triggers,
                nested_spawns: self.nested_spawns,
                handlers_by_name: by_name,
            }),
        }
    }
}

pub(crate) struct StackInner {
    pub(crate) protocols: Vec<String>,
    pub(crate) events: Vec<String>,
    pub(crate) handlers: Vec<HandlerEntry>,
    pub(crate) bindings: Vec<Vec<HandlerId>>,
    pub(crate) triggers: Vec<Option<Vec<EventType>>>,
    pub(crate) nested_spawns: Vec<Vec<EventType>>,
    pub(crate) handlers_by_name: HashMap<String, HandlerId>,
}

/// An immutable, fully bound protocol stack.
#[derive(Clone)]
pub struct Stack {
    pub(crate) inner: Arc<StackInner>,
}

impl Stack {
    /// Number of registered microprotocols.
    pub fn protocol_count(&self) -> usize {
        self.inner.protocols.len()
    }

    /// Number of registered event types.
    pub fn event_count(&self) -> usize {
        self.inner.events.len()
    }

    /// Number of registered handlers.
    pub fn handler_count(&self) -> usize {
        self.inner.handlers.len()
    }

    /// Name of a microprotocol.
    pub fn protocol_name(&self, p: ProtocolId) -> &str {
        &self.inner.protocols[p.index()]
    }

    /// Name of an event type.
    pub fn event_name(&self, e: EventType) -> &str {
        &self.inner.events[e.index()]
    }

    /// Name of a handler.
    pub fn handler_name(&self, h: HandlerId) -> &str {
        &self.inner.handlers[h.index()].name
    }

    /// The microprotocol a handler belongs to.
    pub fn handler_protocol(&self, h: HandlerId) -> ProtocolId {
        self.inner.handlers[h.index()].protocol
    }

    /// Was the handler declared read-only?
    pub fn handler_read_only(&self, h: HandlerId) -> bool {
        self.inner.handlers[h.index()].read_only
    }

    /// Handlers bound to an event type, in bind order.
    pub fn bound_handlers(&self, e: EventType) -> &[HandlerId] {
        &self.inner.bindings[e.index()]
    }

    /// Look a handler up by its registered name.
    pub fn handler_by_name(&self, name: &str) -> Option<HandlerId> {
        self.inner.handlers_by_name.get(name).copied()
    }

    /// All microprotocol ids, in registration order. Handy for the
    /// Appia-style serial baseline (`M` = everything).
    pub fn all_protocols(&self) -> Vec<ProtocolId> {
        (0..self.inner.protocols.len() as u32)
            .map(ProtocolId)
            .collect()
    }

    /// All event types, in registration order.
    pub fn all_events(&self) -> Vec<EventType> {
        (0..self.inner.events.len() as u32).map(EventType).collect()
    }

    /// The events `h` declared it may trigger
    /// ([`StackBuilder::declare_triggers`]); `None` if the handler carries
    /// no metadata. Repeated entries declare per-invocation multiplicity.
    pub fn handler_triggers(&self, h: HandlerId) -> Option<&[EventType]> {
        self.inner.triggers[h.index()].as_deref()
    }

    /// Does *every* handler carry trigger metadata? Only then do the static
    /// analyses see the full call graph.
    pub fn has_full_trigger_metadata(&self) -> bool {
        self.inner.triggers.iter().all(|t| t.is_some())
    }

    /// Root events of the computations `h` declared it may spawn
    /// ([`StackBuilder::declare_nested_spawn`]); empty when it spawns none.
    pub fn handler_nested_spawns(&self, h: HandlerId) -> &[EventType] {
        &self.inner.nested_spawns[h.index()]
    }

    /// Does *any* handler declare a nested computation spawn? When true,
    /// dynamic analyses that assume a computation's footprint is closed
    /// (e.g. static DPOR seeding) must stand down.
    pub fn has_nested_spawns(&self) -> bool {
        self.inner.nested_spawns.iter().any(|s| !s.is_empty())
    }

    pub(crate) fn entry(&self, h: HandlerId) -> &HandlerEntry {
        &self.inner.handlers[h.index()]
    }
}

impl fmt::Debug for Stack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stack")
            .field("protocols", &self.inner.protocols)
            .field("events", &self.inner.events)
            .field("handlers", &self.inner.handlers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop() -> impl Fn(&Ctx, &EventData) -> Result<()> + Send + Sync + 'static {
        |_, _| Ok(())
    }

    #[test]
    fn build_registers_everything() {
        let mut b = StackBuilder::new();
        let p = b.protocol("P");
        let q = b.protocol("Q");
        let e = b.event("E");
        let h1 = b.bind(e, p, "h1", noop());
        let h2 = b.bind(e, q, "h2", noop());
        let s = b.build();
        assert_eq!(s.protocol_count(), 2);
        assert_eq!(s.event_count(), 1);
        assert_eq!(s.handler_count(), 2);
        assert_eq!(s.protocol_name(p), "P");
        assert_eq!(s.event_name(e), "E");
        assert_eq!(s.bound_handlers(e), &[h1, h2]);
        assert_eq!(s.handler_protocol(h1), p);
        assert_eq!(s.handler_protocol(h2), q);
        assert_eq!(s.handler_by_name("h2"), Some(h2));
        assert_eq!(s.handler_by_name("nope"), None);
    }

    #[test]
    fn bind_existing_adds_second_event() {
        let mut b = StackBuilder::new();
        let p = b.protocol("P");
        let e1 = b.event("E1");
        let e2 = b.event("E2");
        let h = b.bind(e1, p, "h", noop());
        b.bind_existing(e2, h);
        let s = b.build();
        assert_eq!(s.bound_handlers(e2), &[h]);
    }

    #[test]
    fn all_protocols_lists_in_order() {
        let mut b = StackBuilder::new();
        let p = b.protocol("P");
        let q = b.protocol("Q");
        let s = b.build();
        assert_eq!(s.all_protocols(), vec![p, q]);
    }

    #[test]
    #[should_panic(expected = "unknown protocol")]
    fn bind_with_foreign_protocol_panics() {
        let mut b = StackBuilder::new();
        let e = b.event("E");
        b.bind(e, ProtocolId(5), "h", noop());
    }

    #[test]
    fn trigger_metadata_roundtrip() {
        let mut b = StackBuilder::new();
        let p = b.protocol("P");
        let e1 = b.event("E1");
        let e2 = b.event("E2");
        let h1 = b.bind_with_triggers(e1, p, "h1", &[e2, e2], noop());
        let h2 = b.bind(e2, p, "h2", noop());
        let h3 = b.bind(e2, p, "h3", noop());
        b.declare_triggers(h3, &[]);
        let s = b.build();
        assert_eq!(s.handler_triggers(h1), Some(&[e2, e2][..]));
        assert_eq!(s.handler_triggers(h2), None);
        assert_eq!(s.handler_triggers(h3), Some(&[][..]));
        assert!(!s.has_full_trigger_metadata());
        assert_eq!(s.all_events(), vec![e1, e2]);
    }

    #[test]
    fn declare_triggers_appends() {
        let mut b = StackBuilder::new();
        let p = b.protocol("P");
        let e1 = b.event("E1");
        let e2 = b.event("E2");
        let h = b.bind(e1, p, "h", noop());
        b.declare_triggers(h, &[e1]);
        b.declare_triggers(h, &[e2]);
        let s = b.build();
        assert_eq!(s.handler_triggers(h), Some(&[e1, e2][..]));
        assert!(s.has_full_trigger_metadata());
    }

    #[test]
    #[should_panic(expected = "unknown event")]
    fn declare_triggers_unknown_event_panics() {
        let mut b = StackBuilder::new();
        let p = b.protocol("P");
        let e = b.event("E");
        let h = b.bind(e, p, "h", noop());
        b.declare_triggers(h, &[EventType(9)]);
    }

    #[test]
    fn nested_spawn_metadata_roundtrip() {
        let mut b = StackBuilder::new();
        let p = b.protocol("P");
        let e1 = b.event("E1");
        let e2 = b.event("E2");
        let h1 = b.bind(e1, p, "h1", noop());
        let h2 = b.bind(e2, p, "h2", noop());
        b.declare_nested_spawn(h1, e2);
        let s = b.build();
        assert_eq!(s.handler_nested_spawns(h1), &[e2]);
        assert!(s.handler_nested_spawns(h2).is_empty());
        assert!(s.has_nested_spawns());
    }

    #[test]
    fn no_nested_spawns_by_default() {
        let mut b = StackBuilder::new();
        let p = b.protocol("P");
        let e = b.event("E");
        b.bind(e, p, "h", noop());
        let s = b.build();
        assert!(!s.has_nested_spawns());
    }

    #[test]
    #[should_panic(expected = "unknown event")]
    fn declare_nested_spawn_unknown_event_panics() {
        let mut b = StackBuilder::new();
        let p = b.protocol("P");
        let e = b.event("E");
        let h = b.bind(e, p, "h", noop());
        b.declare_nested_spawn(h, EventType(9));
    }

    #[test]
    fn event_with_no_binding_is_empty() {
        let mut b = StackBuilder::new();
        let _p = b.protocol("P");
        let e = b.event("E");
        let s = b.build();
        assert!(s.bound_handlers(e).is_empty());
    }
}
