//! Event handlers.
//!
//! Handlers are the code blocks of the SAMOA model (paper §2). Several
//! handlers grouped into one microprotocol share that microprotocol's local
//! state. A handler is registered (and simultaneously bound to an event
//! type) with [`StackBuilder::bind`](crate::stack::StackBuilder::bind).

use std::fmt;
use std::sync::Arc;

use crate::ctx::Ctx;
use crate::error::Result;
use crate::event::EventData;
use crate::protocol::ProtocolId;

/// Identifier of a registered handler, unique within its stack.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HandlerId(pub(crate) u32);

impl HandlerId {
    /// Raw index of this handler inside its stack.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for HandlerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HandlerId({})", self.0)
    }
}

/// The function type of a handler body.
///
/// The body receives the computation context (for triggering further events)
/// and the payload of the event that triggered it, and may fail with a
/// [`SamoaError`](crate::error::SamoaError).
pub type HandlerFn = Arc<dyn Fn(&Ctx, &EventData) -> Result<()> + Send + Sync>;

/// A registered handler: its identity, owning microprotocol, and body.
#[derive(Clone)]
pub(crate) struct HandlerEntry {
    pub(crate) id: HandlerId,
    pub(crate) name: String,
    pub(crate) protocol: ProtocolId,
    pub(crate) func: HandlerFn,
    /// Declared read-only (paper §7 future work): the handler promises not
    /// to mutate its microprotocol's state, so computations that declared
    /// the microprotocol with [`AccessMode::Read`](crate::policy::AccessMode)
    /// may call it and share the microprotocol with other readers.
    pub(crate) read_only: bool,
}

impl fmt::Debug for HandlerEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HandlerEntry")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("protocol", &self.protocol)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handler_id_ordering_follows_index() {
        assert!(HandlerId(1) < HandlerId(2));
        assert_eq!(HandlerId(5).index(), 5);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", HandlerId(3)), "HandlerId(3)");
    }
}
