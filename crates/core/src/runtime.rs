//! The SAMOA runtime: spawning computations and enforcing isolation.
//!
//! [`Runtime`] owns the immutable [`Stack`], the per-microprotocol version
//! cells (`lv_p`), the global version counters (`gv_p`, under one spawn lock
//! so Rule 1 is atomic), the 2PL lock table for the comparator policy, and
//! the optional history recorder.
//!
//! A computation is started either *blocking* ([`Runtime::run`] and the
//! `isolated*` conveniences — the calling thread becomes the computation's
//! root worker and the call returns after the computation has completed) or
//! *detached* ([`Runtime::spawn`] — Rule 1 still executes synchronously in
//! the caller, so spawn order determines version order, then a new root
//! thread takes over and the caller gets a [`CompHandle`]).
//!
//! Never call a blocking `isolated*` from *inside* a handler when the new
//! declaration overlaps the running computation's: the inner computation
//! would wait for the outer's versions while the outer waits for the inner
//! to finish. Use [`Runtime::spawn`] for causally dependent external events
//! (the paper's computations *caused by* a computation, §2).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::computation::{panic_message, ComputationInner, ExecState, PostAction};
use crate::ctx::Ctx;
use crate::error::{CompId, Result, SamoaError};
use crate::graph::{RoutePattern, RouteState};
use crate::handler::HandlerId;
use crate::history::{History, HistoryRecorder, IsolationViolation};
use crate::policy::{AccessMode, CompMode, CompSpec, LockCell, PvEntry};
use crate::protocol::ProtocolId;
use crate::sched::{SchedHook, SchedPoint, SchedResource};
use crate::stack::Stack;
use crate::trace::{Algo, TraceCtl, TraceKind, TraceSink, WaitForGraph};
use crate::version::{CachePadded, VersionCell};

/// Tunables of a [`Runtime`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Record runs and state accesses for the isolation checker
    /// ([`Runtime::history`]). Off by default; recording adds a global
    /// mutex acquisition per handler call and state access.
    pub record_history: bool,
    /// Upper limit on worker threads per computation (≥ 1). The root worker
    /// always exists; extra workers are spawned on demand for asynchronous
    /// events and `Ctx::spawn` closures.
    pub max_threads_per_computation: usize,
    /// Reject programs the static analyzer ([`crate::analysis`]) finds
    /// defective. With this set, [`Runtime::with_config`] panics if linting
    /// the stack yields Error-level diagnostics, and — in debug builds —
    /// every [`Runtime::run`]/[`Runtime::spawn`] validates its declaration
    /// (closure check, [`validate_decl`](crate::analysis::validate_decl)
    /// with no root) and fails with [`SamoaError::AnalysisFailed`]. Off by
    /// default: the closure check is conservative and may reject tight
    /// declarations that are correct for a particular entry event.
    pub strict_analysis: bool,
    /// Number of slots in the 2PL lock table. `0` (the default) gives every
    /// microprotocol its own slot — exact locking. A positive value stripes
    /// microprotocols across that many slots (`pid % shards`): coarser and
    /// therefore more conservative (two protocols sharing a slot serialise
    /// even without a real conflict), but still deadlock-free — the growing
    /// phase acquires deduplicated slots in ascending order — and still
    /// policy-equivalent: every history a striped table admits is a history
    /// the exact table admits. Values above the protocol count clamp to the
    /// exact table.
    pub lock_shards: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            record_history: false,
            max_threads_per_computation: 4,
            strict_analysis: false,
            lock_shards: 0,
        }
    }
}

impl RuntimeConfig {
    /// A config with history recording enabled — what the isolation tests
    /// and experiment tables use.
    pub fn recording() -> Self {
        RuntimeConfig {
            record_history: true,
            ..RuntimeConfig::default()
        }
    }

    /// A config with [`RuntimeConfig::strict_analysis`] enabled.
    pub fn strict() -> Self {
        RuntimeConfig {
            strict_analysis: true,
            ..RuntimeConfig::default()
        }
    }

    /// A recording config with a striped 2PL lock table of `shards` slots
    /// (see [`RuntimeConfig::lock_shards`]) — what the shard-sweep
    /// equivalence tests use.
    pub fn recording_sharded(shards: usize) -> Self {
        RuntimeConfig {
            record_history: true,
            lock_shards: shards,
            ..RuntimeConfig::default()
        }
    }
}

/// Declaration of a computation: which concurrency-control algorithm it runs
/// under and what it declares a priori (paper §4).
///
/// A uniform entry point for benches; protocol code usually calls the typed
/// conveniences ([`Runtime::isolated`], [`Runtime::isolated_bound`], …).
#[derive(Debug, Clone)]
pub enum Decl<'a> {
    /// `isolated M e` — VCAbasic over the microprotocols in `M`.
    Basic(&'a [ProtocolId]),
    /// `isolated M e` with per-microprotocol access modes (paper §7 future
    /// work: read-only declarations let readers share a microprotocol).
    ReadWrite(&'a [(ProtocolId, AccessMode)]),
    /// `isolated bound M e` — VCAbound with per-microprotocol visit bounds.
    Bound(&'a [(ProtocolId, u64)]),
    /// `isolated route M e` — VCAroute over a declared routing pattern.
    Route(&'a RoutePattern),
    /// Appia-style baseline: `M` = every microprotocol in the stack.
    Serial,
    /// Cactus-without-locks baseline: no admission control.
    Unsync,
    /// Conservative two-phase locking over `M` (comparator; do not mix with
    /// versioning computations on overlapping microprotocols).
    TwoPhase(&'a [ProtocolId]),
}

/// Point-in-time runtime counters (see [`Runtime::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RuntimeStats {
    /// Computations spawned so far.
    pub computations_spawned: u64,
    /// Computations fully completed (Rule 3 done).
    pub computations_completed: u64,
    /// Handler calls executed.
    pub handler_calls: u64,
    /// Total time computations spent *descheduled* in admission — parked
    /// on a version or lock cell (or cooperatively blocked under a
    /// `SchedHook`) in Rule 2 waits and 2PL lock acquisition. The direct
    /// cost of isolation. The bounded spin/yield probe window that precedes
    /// parking is the fast path and is not counted: a probing waiter is
    /// still runnable, and at fine grain most conflicts resolve inside it
    /// without the thread ever leaving the CPU. Summed across threads, so
    /// under coarse-grain contention it can exceed wall-clock time.
    pub admission_wait: std::time::Duration,
    /// Rule 4 early releases by VCAbound computations: one per handler call
    /// whose completion advanced `lv_p` before the computation finished.
    pub bound_releases: u64,
    /// Microprotocols released early by VCAroute computations (released by
    /// the reachability scan, before Rule 3 completion).
    pub route_releases: u64,
    /// Times a thread blocked on a version cell woke up and re-checked its
    /// admission/completion predicate — how "churny" the version waits are.
    pub version_wait_wakeups: u64,
}

impl std::fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} computations ({} completed), {} handler calls, \
             admission wait {:.3}ms, {} bound / {} route early releases, \
             {} version-wait wakeups",
            self.computations_spawned,
            self.computations_completed,
            self.handler_calls,
            self.admission_wait.as_secs_f64() * 1e3,
            self.bound_releases,
            self.route_releases,
            self.version_wait_wakeups,
        )
    }
}

#[derive(Default)]
pub(crate) struct StatCounters {
    spawned: AtomicU64,
    completed: AtomicU64,
    handler_calls: AtomicU64,
    admission_wait_ns: AtomicU64,
    bound_releases: AtomicU64,
    route_releases: AtomicU64,
    /// Shared with every `VersionCell` of the runtime (each cell increments
    /// this same counter on waiter wake-ups), so the stats snapshot is a
    /// single load.
    version_wait_wakeups: Arc<AtomicU64>,
}

impl StatCounters {
    pub(crate) fn note_handler_call(&self) {
        self.handler_calls.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_admission_wait(&self, d: std::time::Duration) {
        self.admission_wait_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn note_bound_release(&self) {
        self.bound_releases.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_route_releases(&self, n: u64) {
        self.route_releases.fetch_add(n, Ordering::Relaxed);
    }
}

/// The gate bit of a `gv` word: bit 0 marks the cell as held by a Rule-1
/// sweep; the version value lives in the upper 63 bits.
const GV_GATE: u64 = 1;

pub(crate) struct RuntimeInner {
    pub(crate) stack: Stack,
    /// Per-microprotocol `lv_p` cells, cache-line padded so neighbouring
    /// protocols never false-share.
    pub(crate) versions: Vec<CachePadded<VersionCell>>,
    /// The 2PL lock table — one padded slot per microprotocol, or fewer
    /// stripes under [`RuntimeConfig::lock_shards`].
    pub(crate) locks: Vec<CachePadded<LockCell>>,
    pub(crate) history: HistoryRecorder,
    pub(crate) config: RuntimeConfig,
    pub(crate) stats: StatCounters,
    /// Schedule-control hook ([`Runtime::with_hook`]); `None` in production,
    /// so the instrumented paths cost one branch.
    pub(crate) hook: Option<Arc<dyn SchedHook>>,
    /// Trace sink + wait-for registry ([`Runtime::with_trace`]); `None` when
    /// untraced, so — like `hook` — every trace site costs one branch.
    pub(crate) trace: Option<TraceCtl>,
    /// Global version counters, one padded atomic per microprotocol with an
    /// embedded gate bit ([`GV_GATE`]). Rule 1's atomicity domain: a spawn
    /// gates every *declared* cell (ascending pid, strict two-phase) instead
    /// of one global mutex, so disjoint spawns never serialise.
    gv: Vec<CachePadded<AtomicU64>>,
    comp_seq: AtomicU64,
    /// Computations spawned but not yet completed. Plain atomic; `quiesce`
    /// parks on `quiesce_park`/`quiesce_cv` only while this is nonzero.
    active: AtomicU64,
    quiesce_waiters: AtomicU64,
    quiesce_park: Mutex<()>,
    quiesce_cv: Condvar,
}

impl RuntimeInner {
    pub(crate) fn computation_finished(&self) {
        self.stats.completed.fetch_add(1, Ordering::Relaxed);
        if self.active.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Same park protocol as `VersionCell`: the quiescer registers in
            // `quiesce_waiters` (under the park mutex) before re-checking
            // `active`, we drop `active` before reading `quiesce_waiters`.
            if self.quiesce_waiters.load(Ordering::SeqCst) > 0 {
                crate::version::note_park_notify();
                let _guard = self.quiesce_park.lock();
                self.quiesce_cv.notify_all();
            }
            if let Some(h) = &self.hook {
                h.signal(SchedResource::Quiesce);
            }
        }
    }

    /// Active (spawned, not yet completed) computations right now.
    pub(crate) fn active_count(&self) -> u64 {
        self.active.load(Ordering::SeqCst)
    }

    /// The lock-table stripe serving microprotocol `pid`.
    pub(crate) fn lock_idx(&self, pid: ProtocolId) -> usize {
        debug_assert!(!self.locks.is_empty(), "lock table is empty");
        pid.index() % self.locks.len()
    }

    /// The deduplicated, ascending lock-table stripes covering `entries` —
    /// the canonical 2PL acquisition (and release) order. Striping can map
    /// two declared protocols to one slot; acquiring it twice would
    /// self-deadlock, so callers must always go through this.
    pub(crate) fn lock_stripes(&self, entries: &[PvEntry]) -> Vec<usize> {
        let mut stripes: Vec<usize> = entries.iter().map(|e| self.lock_idx(e.pid)).collect();
        stripes.sort_unstable();
        stripes.dedup();
        stripes
    }

    // ---- cooperative version waits ----
    //
    // Uninstrumented runtimes use the atomic fast path / parked slow path
    // in `VersionCell` directly; with a hook installed, every wait becomes
    // a try-predicate → `SchedHook::block` loop so the controller owns the
    // interleaving, and every `lv` change signals the matching resource.
    //
    // These are the Rule-2 sites, so they also own the `admission_wait`
    // accounting: the clock brackets only the *descheduled* phase (parked
    // on the cell, or cooperatively blocked in the hook) — an admission
    // that resolves in the probe window reads no clock and takes no lock.

    /// Probe the cell without descheduling: the bounded spin/yield window
    /// when free-running, a single check under a hook (spinning would
    /// perturb the cooperative schedule).
    fn vprobe_until(&self, idx: usize, pred: &impl Fn(u64) -> bool) -> Option<u64> {
        match &self.hook {
            None => self.versions[idx].spin_until(pred),
            Some(_) => self.versions[idx].try_until(pred),
        }
    }

    fn vprobe_write(&self, idx: usize, pred: &impl Fn(u64) -> bool, pv: u64) -> Option<u64> {
        match &self.hook {
            None => self.versions[idx].spin_write(pred, pv),
            Some(_) => self.versions[idx].try_write(pred, pv),
        }
    }

    /// Descheduled phase after a failed probe: park on the cell (or block
    /// cooperatively under the hook), clocking the elapsed time into
    /// `admission_wait`.
    fn vblock_until(&self, idx: usize, pred: impl Fn(u64) -> bool) -> u64 {
        let t0 = std::time::Instant::now();
        let v = match &self.hook {
            None => self.versions[idx].park_wait_until(pred),
            Some(h) => loop {
                if let Some(v) = self.versions[idx].try_until(&pred) {
                    break v;
                }
                h.block(SchedResource::Version(idx as u32));
                self.versions[idx].note_wakeup();
            },
        };
        self.stats.note_admission_wait(t0.elapsed());
        v
    }

    fn vblock_write(&self, idx: usize, pred: impl Fn(u64) -> bool, pv: u64) -> u64 {
        let t0 = std::time::Instant::now();
        let v = match &self.hook {
            None => self.versions[idx].park_wait_write(pred, pv),
            Some(h) => loop {
                if let Some(v) = self.versions[idx].try_write(&pred, pv) {
                    break v;
                }
                h.block(SchedResource::Version(idx as u32));
                self.versions[idx].note_wakeup();
            },
        };
        self.stats.note_admission_wait(t0.elapsed());
        v
    }

    /// Rule-3 completion step for one cell: wait until `pred(lv)` holds,
    /// then raise `lv` to at least `target`. Replaces the old
    /// locked wait-then-mutate: every completion action is a monotone raise,
    /// so an unlocked check + `fetch_max` is linearizable against concurrent
    /// bumps (see `version.rs` module docs).
    pub(crate) fn vwait_raise(&self, idx: usize, pred: impl Fn(u64) -> bool, target: u64) {
        match &self.hook {
            None => self.versions[idx].wait_raise(pred, target),
            Some(h) => loop {
                if self.versions[idx].try_raise(&pred, target) {
                    self.vsignal(idx);
                    return;
                }
                h.block(SchedResource::Version(idx as u32));
                self.versions[idx].note_wakeup();
            },
        }
    }

    /// Wake cooperative waiters of version cell `idx` (no-op without hook).
    pub(crate) fn vsignal(&self, idx: usize) {
        if let Some(h) = &self.hook {
            h.signal(SchedResource::Version(idx as u32));
        }
    }

    // ---- traced admission waits ----
    //
    // Rule 2 call sites go through these: with no sink attached they
    // delegate straight to the waits above (one branch); with a sink, a
    // wait that actually *deschedules* is bracketed by WaitBegin/WaitEnd
    // events carrying the blocking computation's identity, and registered
    // in the wait-for graph for `Runtime::waiters`. The probe window is
    // invisible here by the same parked-only definition as the
    // `admission_wait` stat: a probing waiter is runnable, not blocked, so
    // it records no span and never appears in the wait-for graph (a waiter
    // headed for a real block shows up at most one probe window late).

    pub(crate) fn vwait_write_traced(
        &self,
        comp: CompId,
        idx: usize,
        pred: impl Fn(u64) -> bool + Copy,
        pv: u64,
    ) -> u64 {
        if let Some(v) = self.vprobe_write(idx, &pred, pv) {
            return v;
        }
        match &self.trace {
            None => self.vblock_write(idx, pred, pv),
            Some(t) => {
                let protocol = ProtocolId(idx as u32);
                let lv = self.versions[idx].get();
                let blocker = t.wait_begin(comp, idx, pv, lv);
                let t0 = t.now_ns();
                t.emit_at(
                    t0,
                    TraceKind::WaitBegin {
                        comp,
                        protocol,
                        blocker,
                    },
                );
                let v = self.vblock_write(idx, pred, pv);
                let t1 = t.now_ns();
                t.wait_end(comp, idx);
                t.emit_at(
                    t1,
                    TraceKind::WaitEnd {
                        comp,
                        protocol,
                        wait_ns: t1.saturating_sub(t0),
                        blocker,
                    },
                );
                v
            }
        }
    }

    /// Read-mode admission: the waiter's epoch is `pv` *inclusive* (it waits
    /// for the writer holding `pv` itself), hence the `pv + 1` upper bound
    /// for the blocker lookup.
    pub(crate) fn vwait_until_traced(
        &self,
        comp: CompId,
        idx: usize,
        pred: impl Fn(u64) -> bool + Copy,
        pv: u64,
    ) -> u64 {
        if let Some(v) = self.vprobe_until(idx, &pred) {
            return v;
        }
        match &self.trace {
            None => self.vblock_until(idx, pred),
            Some(t) => {
                let protocol = ProtocolId(idx as u32);
                let lv = self.versions[idx].get();
                let blocker = t.wait_begin(comp, idx, pv + 1, lv);
                let t0 = t.now_ns();
                t.emit_at(
                    t0,
                    TraceKind::WaitBegin {
                        comp,
                        protocol,
                        blocker,
                    },
                );
                let v = self.vblock_until(idx, pred);
                let t1 = t.now_ns();
                t.wait_end(comp, idx);
                t.emit_at(
                    t1,
                    TraceKind::WaitEnd {
                        comp,
                        protocol,
                        wait_ns: t1.saturating_sub(t0),
                        blocker,
                    },
                );
                v
            }
        }
    }

    /// 2PL growing-phase acquisition with tracing. The lock table does not
    /// track owners, so the wait edge carries no blocker.
    pub(crate) fn lock_acquire_traced(&self, comp: CompId, idx: usize) {
        if self.lock_probe(idx) {
            return;
        }
        match &self.trace {
            None => self.lock_block(idx),
            Some(t) => {
                let protocol = ProtocolId(idx as u32);
                let t0 = t.now_ns();
                t.lock_wait_begin(comp, idx);
                t.emit_at(
                    t0,
                    TraceKind::WaitBegin {
                        comp,
                        protocol,
                        blocker: None,
                    },
                );
                self.lock_block(idx);
                let t1 = t.now_ns();
                t.wait_end(comp, idx);
                t.emit_at(
                    t1,
                    TraceKind::WaitEnd {
                        comp,
                        protocol,
                        wait_ns: t1.saturating_sub(t0),
                        blocker: None,
                    },
                );
            }
        }
    }

    /// Probe stripe `idx` without descheduling (spin/yield window when
    /// free-running, single try under a hook).
    fn lock_probe(&self, idx: usize) -> bool {
        match &self.hook {
            None => self.locks[idx].spin_acquire(),
            Some(_) => self.locks[idx].try_acquire(),
        }
    }

    /// Descheduled acquisition after a failed probe, clocked into
    /// `admission_wait`.
    fn lock_block(&self, idx: usize) {
        let t0 = std::time::Instant::now();
        match &self.hook {
            None => self.locks[idx].park_acquire(),
            Some(h) => {
                while !self.locks[idx].try_acquire() {
                    h.block(SchedResource::Lock(idx as u32));
                }
            }
        }
        self.stats.note_admission_wait(t0.elapsed());
    }

    /// Release 2PL lock `idx` and wake waiters.
    pub(crate) fn lock_release(&self, idx: usize) {
        self.locks[idx].release();
        if let Some(h) = &self.hook {
            h.signal(SchedResource::Lock(idx as u32));
        }
    }
}

/// The entry point of the framework. Cheap to clone (`Arc` inside).
#[derive(Clone)]
pub struct Runtime {
    inner: Arc<RuntimeInner>,
}

impl Runtime {
    /// Create a runtime over a finished stack with default configuration.
    pub fn new(stack: Stack) -> Self {
        Runtime::with_config(stack, RuntimeConfig::default())
    }

    /// Create a runtime with explicit configuration.
    ///
    /// # Panics
    ///
    /// With [`RuntimeConfig::strict_analysis`] set, panics if the static
    /// safety pass ([`Runtime::static_report`]: linting, admission-deadlock
    /// and conflict analysis, every event treated as external) yields
    /// Error-level diagnostics. Use [`Runtime::new_checked`] to get the
    /// failure as a value.
    pub fn with_config(stack: Stack, config: RuntimeConfig) -> Self {
        if config.strict_analysis {
            let report = Runtime::static_report(&stack);
            if report.has_errors() {
                panic!("strict_analysis rejected the stack:\n{}", report.render());
            }
        }
        Runtime::build(stack, config, None, None)
    }

    /// The full static safety report of a stack, as the strict constructors
    /// and [`Runtime::new_checked`] compute it: structural lints
    /// ([`lint_stack`](crate::analysis::lint_stack)), the admission-deadlock
    /// cycle search ([`analyze_deadlocks`](crate::analysis::analyze_deadlocks),
    /// `SA040`) and conflict reachability
    /// ([`ConflictMatrix`](crate::analysis::ConflictMatrix), `SA05x`), with
    /// every event treated as external.
    pub fn static_report(stack: &Stack) -> crate::analysis::Report {
        let all = stack.all_events();
        let mut report = crate::analysis::lint_stack(stack, &all);
        report.merge(crate::analysis::analyze_deadlocks(stack, &all));
        let (_, conflicts) = crate::analysis::ConflictMatrix::analyze(stack, &all);
        report.merge(conflicts);
        report
    }

    /// Create a runtime with a [`TraceSink`] attached (see [`crate::trace`]):
    /// every computation lifecycle point — spawn, Rule 2 admission waits
    /// with the blocking computation's identity, handler enter/exit, Rule 4
    /// early releases, Rule 3 completion — is delivered to `sink` as a
    /// structured, timestamped event, and [`Runtime::waiters`] reports live
    /// wait-for edges. `strict_analysis` linting is applied as in
    /// [`Runtime::with_config`].
    pub fn with_trace(stack: Stack, config: RuntimeConfig, sink: Arc<dyn TraceSink>) -> Self {
        if config.strict_analysis {
            let report = Runtime::static_report(&stack);
            if report.has_errors() {
                panic!("strict_analysis rejected the stack:\n{}", report.render());
            }
        }
        Runtime::build(stack, config, None, Some(sink))
    }

    /// Create a runtime with a schedule-control hook installed (see
    /// [`crate::sched`]). Every scheduling decision point and blocking wait
    /// in this runtime reports to — and is controlled by — `hook`; the
    /// `samoa-check` crate uses this to explore thread interleavings
    /// systematically. `strict_analysis` linting is applied as in
    /// [`Runtime::with_config`].
    pub fn with_hook(stack: Stack, config: RuntimeConfig, hook: Arc<dyn SchedHook>) -> Self {
        if config.strict_analysis {
            let report = Runtime::static_report(&stack);
            if report.has_errors() {
                panic!("strict_analysis rejected the stack:\n{}", report.render());
            }
        }
        Runtime::build(stack, config, Some(hook), None)
    }

    /// Create a runtime with both a schedule-control hook and a
    /// [`TraceSink`] installed — controlled exploration ([`Runtime::with_hook`])
    /// that also records the structured trace ([`Runtime::with_trace`]).
    /// `samoa-check`'s trace-guided search uses this to steer schedule
    /// perturbation toward the microprotocols where admission waits
    /// concentrate. `strict_analysis` linting is applied as in
    /// [`Runtime::with_config`].
    pub fn with_hook_and_trace(
        stack: Stack,
        config: RuntimeConfig,
        hook: Arc<dyn SchedHook>,
        sink: Arc<dyn TraceSink>,
    ) -> Self {
        if config.strict_analysis {
            let report = Runtime::static_report(&stack);
            if report.has_errors() {
                panic!("strict_analysis rejected the stack:\n{}", report.render());
            }
        }
        Runtime::build(stack, config, Some(hook), Some(sink))
    }

    /// Create a runtime only if the stack passes the full static safety
    /// pass ([`Runtime::static_report`]: linting, admission-deadlock and
    /// conflict analysis, every event treated as external): Error-level
    /// diagnostics — including `SA040` admission-deadlock cycles — become
    /// [`SamoaError::AnalysisFailed`]. Analyzes unconditionally, whatever
    /// `config.strict_analysis` says.
    pub fn new_checked(stack: Stack, config: RuntimeConfig) -> Result<Runtime> {
        let report = Runtime::static_report(&stack);
        if report.has_errors() {
            return Err(SamoaError::AnalysisFailed {
                report: report.render(),
            });
        }
        Ok(Runtime::build(stack, config, None, None))
    }

    fn build(
        stack: Stack,
        config: RuntimeConfig,
        hook: Option<Arc<dyn SchedHook>>,
        sink: Option<Arc<dyn TraceSink>>,
    ) -> Self {
        let n = stack.protocol_count();
        let stats = StatCounters::default();
        let lock_slots = if config.lock_shards == 0 {
            n
        } else {
            config.lock_shards.min(n).max(usize::from(n > 0))
        };
        Runtime {
            inner: Arc::new(RuntimeInner {
                versions: (0..n)
                    .map(|_| {
                        CachePadded(VersionCell::with_counter(Arc::clone(
                            &stats.version_wait_wakeups,
                        )))
                    })
                    .collect(),
                locks: (0..lock_slots)
                    .map(|_| CachePadded(LockCell::new()))
                    .collect(),
                history: HistoryRecorder::new(config.record_history),
                stats,
                hook,
                trace: sink.map(|s| TraceCtl::new(s, n)),
                gv: (0..n).map(|_| CachePadded(AtomicU64::new(0))).collect(),
                comp_seq: AtomicU64::new(0),
                active: AtomicU64::new(0),
                quiesce_waiters: AtomicU64::new(0),
                quiesce_park: Mutex::new(()),
                quiesce_cv: Condvar::new(),
                stack,
                config,
            }),
        }
    }

    /// The stack this runtime executes.
    pub fn stack(&self) -> &Stack {
        &self.inner.stack
    }

    /// Current local version of a microprotocol (diagnostics/tests).
    pub fn local_version(&self, p: ProtocolId) -> u64 {
        self.inner.versions[p.index()].get()
    }

    /// Active reader holds on a microprotocol (diagnostics/tests).
    pub fn reader_holds(&self, p: ProtocolId) -> usize {
        self.inner.versions[p.index()].reader_holds()
    }

    /// A human-readable snapshot of the runtime's version state — one line
    /// per microprotocol with its global version (`gv`), local version
    /// (`lv`) and reader holds, plus the number of active computations.
    /// For debugging stuck stacks: a protocol with `lv < gv` is held by
    /// `gv - lv` not-yet-released computations.
    pub fn debug_snapshot(&self) -> String {
        let active = self.inner.active_count();
        let mut out = format!("active computations: {active}\n");
        for (i, name) in (0..self.inner.stack.protocol_count())
            .map(|i| (i, self.inner.stack.protocol_name(ProtocolId(i as u32))))
        {
            let gv = self.inner.gv[i].load(Ordering::SeqCst) >> 1;
            let lv = self.inner.versions[i].get();
            let holds = self.inner.versions[i].reader_holds();
            out.push_str(&format!(
                "  {name:<16} gv={gv:<6} lv={lv:<6} pending={:<4} readers={holds}\n",
                gv.saturating_sub(lv),
            ));
        }
        out
    }

    // ---- Rule 1: spawning ----

    fn spawn_comp(&self, decl: &Decl<'_>) -> Arc<ComputationInner> {
        if let Some(h) = &self.inner.hook {
            h.yield_point_with(SchedPoint::Spawn, &[SchedResource::SpawnLock]);
        }
        let id = self.inner.comp_seq.fetch_add(1, Ordering::SeqCst) + 1;
        self.inner.stats.spawned.fetch_add(1, Ordering::Relaxed);
        let spec = self.make_spec(decl);
        if let Some(t) = &self.inner.trace {
            // Register this computation's writer holds (the versions Rule 1
            // just allocated) so later waiters can name it as their blocker.
            t.on_spawn(
                id,
                spec.entries
                    .iter()
                    .filter(|e| spec.mode != CompMode::Locked && e.mode == AccessMode::Write)
                    .map(|e| (e.pid.index(), e.pv)),
            );
            t.emit(TraceKind::Spawn {
                comp: id,
                algo: algo_of_decl(decl),
            });
        }
        if spec.mode == CompMode::Locked {
            // Conservative 2PL growing phase: all lock-table stripes before
            // the computation starts, in canonical deduplicated ascending
            // order (deadlock-free; contended time feeds `admission_wait`
            // inside `lock_acquire`).
            for s in self.inner.lock_stripes(&spec.entries) {
                self.inner.lock_acquire_traced(id, s);
            }
        }
        self.inner.active.fetch_add(1, Ordering::SeqCst);
        ComputationInner::new(id, Arc::clone(&self.inner), spec)
    }

    fn make_spec(&self, decl: &Decl<'_>) -> CompSpec {
        let all;
        let w = AccessMode::Write;
        let (mode, pairs): (CompMode, Vec<(ProtocolId, u64, AccessMode)>) = match decl {
            Decl::Unsync => (CompMode::Unsync, Vec::new()),
            Decl::Basic(pids) => (CompMode::Basic, dedup_max(pids.iter().map(|&p| (p, 1, w)))),
            Decl::ReadWrite(entries) => (
                CompMode::Basic,
                dedup_max(entries.iter().map(|&(p, m)| (p, 1, m))),
            ),
            Decl::Serial => {
                all = self.inner.stack.all_protocols();
                (CompMode::Basic, dedup_max(all.iter().map(|&p| (p, 1, w))))
            }
            Decl::Bound(entries) => (
                CompMode::Bound,
                dedup_max(entries.iter().map(|&(p, b)| (p, b, w))),
            ),
            Decl::TwoPhase(pids) => (CompMode::Locked, dedup_max(pids.iter().map(|&p| (p, 0, w)))),
            Decl::Route(pattern) => {
                let rs = RouteState::new(pattern, |h| self.inner.stack.handler_protocol(h));
                let pairs = dedup_max(rs.protocols().iter().map(|&p| (p, 1, w)));
                let entries = self.allocate_versions(CompMode::Route, &pairs);
                return CompSpec {
                    mode: CompMode::Route,
                    entries,
                    route: Some(Mutex::new(rs)),
                };
            }
        };
        let entries = self.allocate_versions(mode, &pairs);
        CompSpec {
            mode,
            entries,
            route: None,
        }
    }

    /// Rule 1: atomically bump `gv_p` for each declared microprotocol and
    /// snapshot the private versions, as one **ordered two-phase CAS
    /// sweep** instead of a global spawn mutex. Phase 1 CAS-acquires the
    /// gate bit of every *declared* cell in ascending pid order (`pairs` is
    /// sorted by `dedup_max`); phase 2 bumps, snapshots and releases. This
    /// is strict 2PL over the declared cells, so overlapping spawns are
    /// conflict-serialised — the per-cell `pv` orders stay consistent with
    /// one total spawn order, which is what the paper's deadlock-freedom
    /// argument (§6, younger always waits on strictly older) needs —
    /// while disjoint spawns proceed fully in parallel, one uncontended CAS
    /// plus one store per declared cell, zero allocation beyond the entry
    /// vector. Read-mode declarations snapshot the epoch *without* bumping
    /// and register a reader hold while the cell's gate is still held, so
    /// any writer spawned later is guaranteed to observe the hold before
    /// its own admission check.
    fn allocate_versions(
        &self,
        mode: CompMode,
        pairs: &[(ProtocolId, u64, AccessMode)],
    ) -> Vec<PvEntry> {
        // Phase 1: gate every declared cell, ascending.
        for &(pid, _, _) in pairs {
            assert!(
                pid.index() < self.inner.gv.len(),
                "declared unknown protocol {pid:?}"
            );
            let cell = &self.inner.gv[pid.index()];
            let mut spins = 0u32;
            loop {
                let cur = cell.load(Ordering::Relaxed);
                if cur & GV_GATE == 0
                    && cell
                        .compare_exchange_weak(
                            cur,
                            cur | GV_GATE,
                            Ordering::SeqCst,
                            Ordering::Relaxed,
                        )
                        .is_ok()
                {
                    break;
                }
                crate::version::note_gate_spin();
                spins += 1;
                if spins < crate::version::SPIN_LIMIT {
                    std::hint::spin_loop();
                } else {
                    // A sweep holds its gates for nanoseconds; yielding is
                    // only reachable under heavy oversubscription. (Under a
                    // SchedHook only one thread runs between yield points
                    // and the sweep contains none, so hooked runs never
                    // spin here at all.)
                    std::thread::yield_now();
                }
            }
        }
        // Phase 2: bump + snapshot + release, in the same order. Releasing
        // cell i before computing cell j is safe — the growing phase is
        // over, which is all 2PL serializability needs.
        pairs
            .iter()
            .map(|&(pid, bound, access)| {
                let cell = &self.inner.gv[pid.index()];
                let increment = if mode == CompMode::Locked || access == AccessMode::Read {
                    0
                } else {
                    bound
                };
                let pv = (cell.load(Ordering::Relaxed) >> 1) + increment;
                if access == AccessMode::Read && mode != CompMode::Locked {
                    self.inner.versions[pid.index()].register_reader(pv);
                }
                cell.store(pv << 1, Ordering::SeqCst);
                PvEntry {
                    pid,
                    pv,
                    bound,
                    used: AtomicU64::new(0),
                    mode: access,
                }
            })
            .collect()
    }

    // ---- running computations ----

    /// Under [`RuntimeConfig::strict_analysis`], debug builds validate every
    /// declaration (closure check — no root event is known here) before
    /// spawning. Release builds skip the check: it walks the whole call
    /// graph per computation.
    fn debug_validate(&self, decl: &Decl<'_>) -> Result<()> {
        if cfg!(debug_assertions) && self.inner.config.strict_analysis {
            let report = crate::analysis::validate_decl(&self.inner.stack, decl, None);
            if report.has_errors() {
                return Err(SamoaError::AnalysisFailed {
                    report: report.render(),
                });
            }
        }
        Ok(())
    }

    /// Run a computation *blocking*: the calling thread executes the closure
    /// body, helps drain the computation's asynchronous work, runs Rule 3,
    /// and returns the closure's value once the computation has completed.
    pub fn run<R>(&self, decl: Decl<'_>, f: impl FnOnce(&Ctx) -> Result<R>) -> Result<R> {
        self.debug_validate(&decl)?;
        let comp = self.spawn_comp(&decl);
        let mut out: Option<R> = None;
        root_execute(&comp, |ctx| f(ctx).map(|r| out = Some(r)));
        comp.worker_loop();
        comp.worker_exit();
        comp.wait_done();
        match comp.take_error() {
            Some(e) => Err(e),
            None => Ok(out.expect("closure returned Ok")),
        }
    }

    /// Start a computation *detached* and return a handle. Rule 1 executes
    /// synchronously here, so the caller's spawn order fixes the version
    /// (i.e. serialisation) order; the body runs on a new root thread.
    ///
    /// # Panics
    ///
    /// In debug builds under [`RuntimeConfig::strict_analysis`], panics if
    /// the declaration fails validation (there is no error channel before
    /// the handle exists).
    pub fn spawn(
        &self,
        decl: Decl<'_>,
        f: impl FnOnce(&Ctx) -> Result<()> + Send + 'static,
    ) -> CompHandle {
        self.spawn_guarded(decl, (), f)
    }

    /// [`Runtime::spawn`], holding `guard` until the computation's root
    /// thread fully exits — body, asynchronous drain, and Rule 3 release
    /// included. Callers use the guard's `Drop` as a completion signal for
    /// backpressure: dropping it when the *body* returns would under-count,
    /// because the thread can still block in the drain phase long after
    /// (see the worker loop), and unbounded spawn rates then exhaust OS
    /// threads regardless of any body-scoped accounting.
    pub fn spawn_guarded(
        &self,
        decl: Decl<'_>,
        guard: impl Send + 'static,
        f: impl FnOnce(&Ctx) -> Result<()> + Send + 'static,
    ) -> CompHandle {
        if let Err(e) = self.debug_validate(&decl) {
            panic!("{e}");
        }
        let comp = self.spawn_comp(&decl);
        let c2 = Arc::clone(&comp);
        let hook = self.inner.hook.clone();
        let token = hook.as_ref().map(|h| match comp.static_seed() {
            Some(seed) => h.on_thread_spawn_with(&seed),
            None => h.on_thread_spawn(),
        });
        std::thread::spawn(move || {
            let _guard = guard;
            if let (Some(h), Some(t)) = (&hook, token) {
                h.on_thread_start(t);
            }
            root_execute(&c2, f);
            c2.worker_loop();
            c2.worker_exit();
            if let Some(h) = &hook {
                h.on_thread_exit();
            }
        });
        CompHandle { comp }
    }

    // ---- typed conveniences, matching the paper's constructs ----

    /// `isolated M e` (VCAbasic, §5.1), blocking.
    pub fn isolated<R>(&self, m: &[ProtocolId], f: impl FnOnce(&Ctx) -> Result<R>) -> Result<R> {
        self.run(Decl::Basic(m), f)
    }

    /// `isolated M e` with per-microprotocol access modes, blocking:
    /// read-only declarations let this computation share those
    /// microprotocols with other readers of the same epoch (paper §7
    /// "several levels of isolation", implemented).
    pub fn isolated_rw<R>(
        &self,
        m: &[(ProtocolId, AccessMode)],
        f: impl FnOnce(&Ctx) -> Result<R>,
    ) -> Result<R> {
        self.run(Decl::ReadWrite(m), f)
    }

    /// `isolated bound M e` (VCAbound, §5.2), blocking: each microprotocol
    /// is declared with a least upper bound on visits, and is released to
    /// successors as soon as its budget is exhausted.
    ///
    /// ```
    /// # use samoa_core::prelude::*;
    /// let mut b = StackBuilder::new();
    /// let p = b.protocol("P");
    /// let e = b.event("E");
    /// b.bind(e, p, "h", |_, _| Ok(()));
    /// let rt = Runtime::new(b.build());
    /// // Two visits declared, two performed: fine.
    /// rt.isolated_bound(&[(p, 2)], |ctx| {
    ///     ctx.trigger(e, EventData::empty())?;
    ///     ctx.trigger(e, EventData::empty())
    /// })
    /// .unwrap();
    /// // A third visit would be a BoundExhausted error:
    /// let err = rt
    ///     .isolated_bound(&[(p, 1)], |ctx| {
    ///         ctx.trigger(e, EventData::empty())?;
    ///         ctx.trigger(e, EventData::empty())
    ///     })
    ///     .unwrap_err();
    /// assert!(matches!(err, SamoaError::BoundExhausted { .. }));
    /// ```
    pub fn isolated_bound<R>(
        &self,
        m: &[(ProtocolId, u64)],
        f: impl FnOnce(&Ctx) -> Result<R>,
    ) -> Result<R> {
        self.run(Decl::Bound(m), f)
    }

    /// `isolated route M e` (VCAroute, §5.3), blocking: the declaration is a
    /// routing pattern — which handlers the closure body may call (roots)
    /// and which handler may call which (edges). A microprotocol is
    /// released as soon as none of its handlers is active or reachable from
    /// an active handler.
    ///
    /// ```
    /// # use samoa_core::prelude::*;
    /// let mut b = StackBuilder::new();
    /// let p = b.protocol("P");
    /// let q = b.protocol("Q");
    /// let e1 = b.event("E1");
    /// let e2 = b.event("E2");
    /// let h2 = b.bind(e2, q, "h2", |_, _| Ok(()));
    /// let h1 = b.bind(e1, p, "h1", move |ctx, _| ctx.trigger(e2, EventData::empty()));
    /// let rt = Runtime::new(b.build());
    /// let pattern = RoutePattern::new().root(h1).edge(h1, h2);
    /// rt.isolated_route(&pattern, |ctx| ctx.trigger(e1, EventData::empty()))
    ///     .unwrap();
    /// ```
    pub fn isolated_route<R>(
        &self,
        pattern: &RoutePattern,
        f: impl FnOnce(&Ctx) -> Result<R>,
    ) -> Result<R> {
        self.run(Decl::Route(pattern), f)
    }

    /// Appia-style serial computation (declares every microprotocol).
    pub fn serial<R>(&self, f: impl FnOnce(&Ctx) -> Result<R>) -> Result<R> {
        self.run(Decl::Serial, f)
    }

    /// Cactus-style unsynchronised computation (no isolation!).
    pub fn unsync<R>(&self, f: impl FnOnce(&Ctx) -> Result<R>) -> Result<R> {
        self.run(Decl::Unsync, f)
    }

    /// Conservative two-phase-locking computation (comparator).
    pub fn two_phase<R>(&self, m: &[ProtocolId], f: impl FnOnce(&Ctx) -> Result<R>) -> Result<R> {
        self.run(Decl::TwoPhase(m), f)
    }

    /// Detached `isolated M e`.
    pub fn spawn_isolated(
        &self,
        m: &[ProtocolId],
        f: impl FnOnce(&Ctx) -> Result<()> + Send + 'static,
    ) -> CompHandle {
        self.spawn(Decl::Basic(m), f)
    }

    /// Detached `isolated M e` with access modes.
    pub fn spawn_isolated_rw(
        &self,
        m: &[(ProtocolId, AccessMode)],
        f: impl FnOnce(&Ctx) -> Result<()> + Send + 'static,
    ) -> CompHandle {
        self.spawn(Decl::ReadWrite(m), f)
    }

    /// Detached `isolated bound M e`.
    pub fn spawn_isolated_bound(
        &self,
        m: &[(ProtocolId, u64)],
        f: impl FnOnce(&Ctx) -> Result<()> + Send + 'static,
    ) -> CompHandle {
        self.spawn(Decl::Bound(m), f)
    }

    /// Detached `isolated route M e`.
    pub fn spawn_isolated_route(
        &self,
        pattern: &RoutePattern,
        f: impl FnOnce(&Ctx) -> Result<()> + Send + 'static,
    ) -> CompHandle {
        self.spawn(Decl::Route(pattern), f)
    }

    /// Detached serial computation.
    pub fn spawn_serial(&self, f: impl FnOnce(&Ctx) -> Result<()> + Send + 'static) -> CompHandle {
        self.spawn(Decl::Serial, f)
    }

    /// Detached unsynchronised computation.
    pub fn spawn_unsync(&self, f: impl FnOnce(&Ctx) -> Result<()> + Send + 'static) -> CompHandle {
        self.spawn(Decl::Unsync, f)
    }

    /// Detached two-phase-locking computation.
    ///
    /// Note: the 2PL growing phase runs in the *caller*, so this blocks
    /// until all declared locks are acquired.
    pub fn spawn_two_phase(
        &self,
        m: &[ProtocolId],
        f: impl FnOnce(&Ctx) -> Result<()> + Send + 'static,
    ) -> CompHandle {
        self.spawn(Decl::TwoPhase(m), f)
    }

    // ---- observation ----

    /// Block until every computation spawned so far has completed.
    pub fn quiesce(&self) {
        match &self.inner.hook {
            None => {
                // Fast path: already quiescent — one atomic load, no lock.
                if self.inner.active_count() == 0 {
                    return;
                }
                // Same park protocol as `VersionCell`: register in
                // `quiesce_waiters` under the park mutex before re-checking
                // `active`; `computation_finished` drops `active` to zero
                // before reading `quiesce_waiters` (both `SeqCst`).
                let mut guard = self.inner.quiesce_park.lock();
                self.inner.quiesce_waiters.fetch_add(1, Ordering::SeqCst);
                while self.inner.active.load(Ordering::SeqCst) > 0 {
                    crate::version::note_park();
                    self.inner.quiesce_cv.wait(&mut guard);
                }
                self.inner.quiesce_waiters.fetch_sub(1, Ordering::SeqCst);
            }
            Some(h) => loop {
                if self.inner.active_count() == 0 {
                    return;
                }
                h.block(SchedResource::Quiesce);
            },
        }
    }

    /// Snapshot the runtime counters: computations, handler calls, and the
    /// total time spent blocked in admission — the direct, measurable cost
    /// of the isolation machinery.
    pub fn stats(&self) -> RuntimeStats {
        RuntimeStats {
            computations_spawned: self.inner.stats.spawned.load(Ordering::Relaxed),
            computations_completed: self.inner.stats.completed.load(Ordering::Relaxed),
            handler_calls: self.inner.stats.handler_calls.load(Ordering::Relaxed),
            admission_wait: std::time::Duration::from_nanos(
                self.inner.stats.admission_wait_ns.load(Ordering::Relaxed),
            ),
            bound_releases: self.inner.stats.bound_releases.load(Ordering::Relaxed),
            route_releases: self.inner.stats.route_releases.load(Ordering::Relaxed),
            version_wait_wakeups: self
                .inner
                .stats
                .version_wait_wakeups
                .load(Ordering::Relaxed),
        }
    }

    /// A point-in-time snapshot of the wait-for graph: which computations
    /// are blocked in Rule 2 admission right now, on which microprotocol,
    /// and — for versioning waits — which older computation they are waiting
    /// for. Requires a trace sink ([`Runtime::with_trace`]); untraced
    /// runtimes keep no wait registry and always return an empty graph.
    pub fn waiters(&self) -> WaitForGraph {
        match &self.inner.trace {
            None => WaitForGraph::default(),
            Some(t) => WaitForGraph {
                edges: t.snapshot_waits(),
            },
        }
    }

    /// Snapshot the recorded history (empty unless
    /// [`RuntimeConfig::record_history`] is set).
    pub fn history(&self) -> History {
        self.inner.history.snapshot()
    }

    /// Clear the recorded history.
    pub fn reset_history(&self) {
        self.inner.history.reset()
    }

    /// Check the isolation property over everything recorded so far,
    /// returning an equivalent serial order of computations on success.
    pub fn check_isolation(&self) -> std::result::Result<Vec<CompId>, IsolationViolation> {
        self.history().check_isolation()
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("stack", &self.inner.stack)
            .field("active", &self.inner.active_count())
            .finish()
    }
}

/// Handle to a detached computation.
pub struct CompHandle {
    comp: Arc<ComputationInner>,
}

impl CompHandle {
    /// The computation's id (its position in global spawn order).
    pub fn comp_id(&self) -> CompId {
        self.comp.id
    }

    /// Block until the computation completes; report its first error.
    pub fn join(self) -> Result<()> {
        self.comp.wait_done();
        match self.comp.take_error() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl std::fmt::Debug for CompHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CompHandle(k{})", self.comp.id)
    }
}

/// Execute the computation's closure body on the current thread, tying
/// route-root release to the body *and* the threads it spawned.
fn root_execute(comp: &Arc<ComputationInner>, f: impl FnOnce(&Ctx) -> Result<()>) {
    let exec = Arc::new(ExecState::new(PostAction::Root));
    let ctx = Ctx::new(Arc::clone(comp), None, Some(Arc::clone(&exec)));
    let outcome = catch_unwind(AssertUnwindSafe(|| f(&ctx)));
    match outcome {
        Ok(Ok(())) => {}
        Ok(Err(e)) => comp.set_error(e),
        Err(payload) => comp.set_error(SamoaError::HandlerPanic {
            handler: HandlerId(u32::MAX),
            message: panic_message(payload),
        }),
    }
    if exec.finish_fn() {
        comp.run_post(PostAction::Root);
    }
    comp.release_pending();
}

/// The trace-facing label of a declaration's algorithm.
fn algo_of_decl(decl: &Decl<'_>) -> Algo {
    match decl {
        Decl::Basic(_) | Decl::ReadWrite(_) => Algo::Basic,
        Decl::Bound(_) => Algo::Bound,
        Decl::Route(_) => Algo::Route,
        Decl::Serial => Algo::Serial,
        Decl::Unsync => Algo::Unsync,
        Decl::TwoPhase(_) => Algo::TwoPhase,
    }
}

/// Deduplicate a declaration, keeping the maximum bound and the stronger
/// access mode per protocol, sorted by protocol id (the order `PvEntry`
/// lookup requires).
fn dedup_max(
    pairs: impl Iterator<Item = (ProtocolId, u64, AccessMode)>,
) -> Vec<(ProtocolId, u64, AccessMode)> {
    let mut v: Vec<(ProtocolId, u64, AccessMode)> = pairs.collect();
    v.sort_by_key(|&(p, _, _)| p);
    v.dedup_by(|later, earlier| {
        if later.0 == earlier.0 {
            earlier.1 = earlier.1.max(later.1);
            if later.2 == AccessMode::Write {
                earlier.2 = AccessMode::Write;
            }
            true
        } else {
            false
        }
    });
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_max_merges() {
        use AccessMode::{Read, Write};
        let v = dedup_max(
            [
                (ProtocolId(2), 1, Read),
                (ProtocolId(0), 3, Write),
                (ProtocolId(2), 5, Write),
                (ProtocolId(0), 1, Read),
                (ProtocolId(7), 1, Read),
            ]
            .into_iter(),
        );
        assert_eq!(
            v,
            vec![
                (ProtocolId(0), 3, Write),
                (ProtocolId(2), 5, Write),
                (ProtocolId(7), 1, Read),
            ]
        );
    }

    #[test]
    fn config_defaults() {
        let c = RuntimeConfig::default();
        assert!(!c.record_history);
        assert!(c.max_threads_per_computation >= 1);
        assert!(!c.strict_analysis);
        assert!(RuntimeConfig::recording().record_history);
        assert!(RuntimeConfig::strict().strict_analysis);
    }

    /// Stack with a dangling trigger: "a" declares it triggers an event with
    /// no bound handler (SA005, Error).
    fn defective_stack() -> Stack {
        use crate::stack::StackBuilder;
        let mut b = StackBuilder::new();
        let p = b.protocol("P");
        let root = b.event("root");
        let ghost = b.event("ghost");
        b.bind_with_triggers(root, p, "a", &[ghost], |_, _| Ok(()));
        b.build()
    }

    #[test]
    fn new_checked_rejects_defective_stack() {
        let err = Runtime::new_checked(defective_stack(), RuntimeConfig::default()).unwrap_err();
        match err {
            SamoaError::AnalysisFailed { report } => {
                assert!(report.contains("SA005"), "{report}");
            }
            other => panic!("expected AnalysisFailed, got {other:?}"),
        }
    }

    #[test]
    fn new_checked_accepts_clean_stack() {
        use crate::stack::StackBuilder;
        let mut b = StackBuilder::new();
        let p = b.protocol("P");
        let root = b.event("root");
        b.bind_with_triggers(root, p, "a", &[], |_, _| Ok(()));
        assert!(Runtime::new_checked(b.build(), RuntimeConfig::default()).is_ok());
    }

    #[test]
    #[should_panic(expected = "SA005")]
    fn strict_with_config_panics_on_defective_stack() {
        let _ = Runtime::with_config(defective_stack(), RuntimeConfig::strict());
    }

    /// Stack whose declared nested spawns form a wait cycle: a handler of P
    /// spawns a computation rooted back at its own root event, so the inner
    /// admission would wait on the outer's version forever.
    fn cyclic_nested_spawn_stack() -> Stack {
        use crate::stack::StackBuilder;
        let mut b = StackBuilder::new();
        let p = b.protocol("P");
        let root = b.event("root");
        let h = b.bind_with_triggers(root, p, "reenter", &[], |_, _| Ok(()));
        b.declare_nested_spawn(h, root);
        b.build()
    }

    #[test]
    fn new_checked_rejects_admission_deadlock_cycle() {
        let err =
            Runtime::new_checked(cyclic_nested_spawn_stack(), RuntimeConfig::strict()).unwrap_err();
        match err {
            SamoaError::AnalysisFailed { report } => {
                assert!(report.contains("SA040"), "{report}");
                assert!(report.contains("\"P\" -> \"P\""), "witness cycle: {report}");
            }
            other => panic!("expected AnalysisFailed, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "SA040")]
    fn strict_with_config_panics_on_admission_deadlock() {
        let _ = Runtime::with_config(cyclic_nested_spawn_stack(), RuntimeConfig::strict());
    }

    #[test]
    fn acyclic_nested_spawn_passes_checked() {
        use crate::stack::StackBuilder;
        let mut b = StackBuilder::new();
        let p = b.protocol("P");
        let q = b.protocol("Q");
        let e1 = b.event("e1");
        let e2 = b.event("e2");
        let h = b.bind_with_triggers(e1, p, "a", &[], |_, _| Ok(()));
        b.bind_with_triggers(e2, q, "b", &[], |_, _| Ok(()));
        b.declare_nested_spawn(h, e2);
        assert!(Runtime::new_checked(b.build(), RuntimeConfig::strict()).is_ok());
    }

    #[test]
    fn lenient_with_config_accepts_defective_stack() {
        let _ = Runtime::with_config(defective_stack(), RuntimeConfig::default());
    }

    #[test]
    #[cfg(debug_assertions)]
    fn strict_run_rejects_unclosed_declaration() {
        use crate::stack::StackBuilder;
        let mut b = StackBuilder::new();
        let p = b.protocol("P");
        let q = b.protocol("Q");
        let root = b.event("root");
        let eq = b.event("eq");
        b.bind_with_triggers(eq, q, "b", &[], |_, _| Ok(()));
        b.bind_with_triggers(root, p, "a", &[eq], |_, _| Ok(()));
        let rt = Runtime::with_config(b.build(), RuntimeConfig::strict());
        // {P} is not closed: "a" may call into Q.
        let err = rt.isolated(&[p], |_| Ok(())).unwrap_err();
        match err {
            SamoaError::AnalysisFailed { report } => {
                assert!(report.contains("SA010"), "{report}");
            }
            other => panic!("expected AnalysisFailed, got {other:?}"),
        }
        // The closed set is accepted and runs.
        rt.isolated(&[p, q], |_| Ok(())).unwrap();
        // Serial declarations are always clean.
        rt.serial(|_| Ok(())).unwrap();
    }
}
