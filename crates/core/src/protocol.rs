//! Microprotocols and their local state.
//!
//! A microprotocol groups related handlers around a shared local state
//! (paper §2). The protocol's overall state is the union of the disjoint
//! local states of its microprotocols; a handler may directly modify only the
//! local state of its *own* microprotocol.
//!
//! [`ProtocolState`] is the state cell. Handlers access it through
//! [`ProtocolState::with`], which
//!
//! * serialises *intra*-computation access (the paper assumes each
//!   microprotocol object is atomic — "only one instance at a time"),
//! * records the access in the runtime's history when recording is enabled,
//!   so tests can check the isolation property after the fact, and
//! * panics if a handler of a *different* microprotocol touches the state,
//!   enforcing the model's modularity rule.
//!
//! *Inter*-computation isolation is not this cell's job: that is provided by
//! the versioning concurrency control (paper §5).

use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;

use parking_lot::ReentrantMutex;

use crate::ctx::Ctx;

/// Identifier of a microprotocol, unique within its stack.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProtocolId(pub(crate) u32);

impl ProtocolId {
    /// Raw index of this microprotocol inside its stack.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ProtocolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProtocolId({})", self.0)
    }
}

/// The local state of one microprotocol.
///
/// Cloning the cell is cheap and shares the state; handlers of the
/// microprotocol capture clones of it.
///
/// ```
/// # use samoa_core::prelude::*;
/// let mut b = StackBuilder::new();
/// let counter_p = b.protocol("Counter");
/// let tick = b.event("Tick");
/// let count = ProtocolState::new(counter_p, 0u64);
/// {
///     let count = count.clone();
///     b.bind(tick, counter_p, "on_tick", move |ctx, _ev| {
///         count.with(ctx, |c| *c += 1);
///         Ok(())
///     });
/// }
/// let rt = Runtime::new(b.build());
/// rt.isolated(&[counter_p], |ctx| ctx.trigger(tick, EventData::empty()))
///     .unwrap();
/// assert_eq!(count.read(|c| *c), 1);
/// ```
pub struct ProtocolState<S> {
    pid: ProtocolId,
    inner: Arc<ReentrantMutex<RefCell<S>>>,
}

impl<S> Clone for ProtocolState<S> {
    fn clone(&self) -> Self {
        ProtocolState {
            pid: self.pid,
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<S> ProtocolState<S> {
    /// Create the state cell for microprotocol `pid` with an initial value.
    pub fn new(pid: ProtocolId, initial: S) -> Self {
        ProtocolState {
            pid,
            inner: Arc::new(ReentrantMutex::new(RefCell::new(initial))),
        }
    }

    /// The microprotocol this state belongs to.
    pub fn protocol(&self) -> ProtocolId {
        self.pid
    }

    /// Access the state from inside a handler (or the `isolated` closure of
    /// a computation whose declaration covers this microprotocol).
    ///
    /// The access is recorded in the runtime history (when enabled) under the
    /// calling computation, which is what the serializability checker in
    /// [`history`](crate::history) consumes.
    ///
    /// # Panics
    ///
    /// Panics if called from a handler of a *different* microprotocol: the
    /// SAMOA model only lets a handler modify the local state of its own
    /// microprotocol. Cross-protocol reads must go through events.
    ///
    /// Do not call [`Ctx::trigger`] while inside the closure — keep state
    /// accesses short and trigger events outside. (Re-entrant `with` on the
    /// same thread panics on the inner `RefCell`.)
    pub fn with<R>(&self, ctx: &Ctx, f: impl FnOnce(&mut S) -> R) -> R {
        self.assert_ownership(ctx);
        assert!(
            !ctx.in_read_only_handler(),
            "read-only handler mutated the state of {:?}; use read_with, or \
             bind the handler without bind_read_only",
            self.pid
        );
        ctx.note_state_access(self.pid, true);
        let guard = self.inner.lock();
        let mut state = guard.borrow_mut();
        f(&mut state)
    }

    /// Read-only access from inside a handler. Recorded as a *read* for the
    /// isolation checker; the only state access allowed inside handlers
    /// registered with
    /// [`StackBuilder::bind_read_only`](crate::stack::StackBuilder::bind_read_only).
    pub fn read_with<R>(&self, ctx: &Ctx, f: impl FnOnce(&S) -> R) -> R {
        self.assert_ownership(ctx);
        ctx.note_state_access(self.pid, false);
        let guard = self.inner.lock();
        let state = guard.borrow();
        f(&state)
    }

    fn assert_ownership(&self, ctx: &Ctx) {
        if let Some(current) = ctx.current_protocol() {
            assert!(
                current == self.pid,
                "handler of {current:?} accessed state of {:?}; \
                 a handler may only touch its own microprotocol's state",
                self.pid
            );
        }
    }

    /// Access the state outside any computation — e.g. to inspect the final
    /// state in tests, or to initialise it before the runtime starts.
    ///
    /// This bypasses access recording and the ownership assertion, so it must
    /// not be used from handler code.
    pub fn read<R>(&self, f: impl FnOnce(&S) -> R) -> R {
        let guard = self.inner.lock();
        let state = guard.borrow();
        f(&state)
    }

    /// Mutate the state outside any computation (setup/teardown only).
    pub fn write<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        let guard = self.inner.lock();
        let mut state = guard.borrow_mut();
        f(&mut state)
    }
}

impl<S: Clone> ProtocolState<S> {
    /// Clone the current state (outside any computation).
    pub fn snapshot(&self) -> S {
        self.read(|s| s.clone())
    }
}

impl<S> fmt::Debug for ProtocolState<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProtocolState")
            .field("protocol", &self.pid)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_outside_computation() {
        let s = ProtocolState::new(ProtocolId(0), vec![1u32]);
        s.write(|v| v.push(2));
        assert_eq!(s.snapshot(), vec![1, 2]);
        assert_eq!(s.read(|v| v.len()), 2);
    }

    #[test]
    fn clone_shares_state() {
        let a = ProtocolState::new(ProtocolId(1), 0i64);
        let b = a.clone();
        a.write(|v| *v = 9);
        assert_eq!(b.snapshot(), 9);
        assert_eq!(b.protocol(), ProtocolId(1));
    }

    #[test]
    fn state_is_send_sync_when_inner_is_send() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProtocolState<Vec<u8>>>();
    }
}
