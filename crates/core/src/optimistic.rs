//! Optimistic concurrency control with rollback — a concrete representative
//! of the paper's *second* algorithm family.
//!
//! §1 of the paper classifies its deadlock-free algorithms into
//! "1) versioning algorithms with allocation of access to event handlers,
//! and 2) timestamp-ordering algorithms with rollback/recovery", and then
//! only ever specifies family 1. This module implements the closest
//! classical member of family 2 that the paper's framing admits:
//! **backward-validation optimistic concurrency control** — computations
//! execute against private copy-on-write overlays of the microprotocol
//! states they touch, validate at completion, and on conflict roll back and
//! retry.
//!
//! The contrast the paper draws is embodied directly in the API:
//!
//! * the versioning family ([`Runtime`](crate::runtime::Runtime)) takes
//!   `FnOnce` bodies — computations are *never aborted*, so side effects
//!   (network sends!) are safe, and computations may be multi-threaded;
//! * this family takes `Fn` bodies — a computation may run many times, so
//!   its only permitted effect is mutating [`OccCell`] state, and it is
//!   single-threaded. This is exactly why the paper's group-communication
//!   stack uses the versioning family.
//!
//! Experiment E9 benches the two families against each other: optimistic
//! wins when conflicts are rare (no blocking at all), versioning wins under
//! contention (no wasted re-execution).

use std::any::Any;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::error::{Result, SamoaError};
use crate::sched::{SchedHook, SchedPoint, SchedResource};
use crate::trace::{self, TraceKind, TraceSink};

/// A shared state cell managed by optimistic concurrency control.
pub struct OccCell<S> {
    inner: Arc<CellInner<S>>,
}

impl<S> Clone for OccCell<S> {
    fn clone(&self) -> Self {
        OccCell {
            inner: Arc::clone(&self.inner),
        }
    }
}

struct CellInner<S> {
    id: u64,
    committed: Mutex<S>,
    /// Bumped on every committed write; the validation token.
    version: AtomicU64,
}

/// Type-erased view of a cell used by the transaction bookkeeping.
trait CellDyn: Send + Sync {
    fn version(&self) -> u64;
    fn commit_overlay(&self, overlay: Box<dyn Any + Send>);
}

impl<S: Clone + Send + 'static> CellDyn for CellInner<S> {
    fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }
    fn commit_overlay(&self, overlay: Box<dyn Any + Send>) {
        let value = *overlay.downcast::<S>().expect("overlay type");
        *self.committed.lock() = value;
        self.version.fetch_add(1, Ordering::Release);
    }
}

static NEXT_CELL_ID: AtomicU64 = AtomicU64::new(0);

impl<S: Clone + Send + 'static> OccCell<S> {
    /// Create a cell with an initial committed value.
    pub fn new(initial: S) -> Self {
        OccCell {
            inner: Arc::new(CellInner {
                id: NEXT_CELL_ID.fetch_add(1, Ordering::Relaxed),
                committed: Mutex::new(initial),
                version: AtomicU64::new(0),
            }),
        }
    }

    /// Read the committed value outside any transaction.
    pub fn read_committed<R>(&self, f: impl FnOnce(&S) -> R) -> R {
        f(&self.inner.committed.lock())
    }

    /// Number of committed writes so far.
    pub fn commit_count(&self) -> u64 {
        self.inner.version.load(Ordering::Acquire)
    }

    /// Read within a transaction (copy-on-first-touch overlay).
    pub fn read<R>(&self, tx: &OccCtx, f: impl FnOnce(&S) -> R) -> R {
        tx.with_overlay(&self.inner, false, |s: &mut S| f(s))
    }

    /// Write within a transaction; applied to the shared state only if the
    /// transaction validates at completion.
    pub fn write<R>(&self, tx: &OccCtx, f: impl FnOnce(&mut S) -> R) -> R {
        tx.with_overlay(&self.inner, true, f)
    }
}

impl<S> fmt::Debug for OccCell<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OccCell")
            .field("id", &self.inner.id)
            .finish_non_exhaustive()
    }
}

struct TouchEntry {
    cell: Arc<dyn CellDyn>,
    seen_version: u64,
    overlay: Box<dyn Any + Send>,
    written: bool,
}

/// The transaction context of one attempt of an optimistic computation.
pub struct OccCtx {
    touched: RefCell<BTreeMap<u64, TouchEntry>>,
}

impl OccCtx {
    fn new() -> Self {
        OccCtx {
            touched: RefCell::new(BTreeMap::new()),
        }
    }

    fn with_overlay<S: Clone + Send + 'static, R>(
        &self,
        cell: &Arc<CellInner<S>>,
        write: bool,
        f: impl FnOnce(&mut S) -> R,
    ) -> R {
        let mut touched = self.touched.borrow_mut();
        let entry = touched.entry(cell.id).or_insert_with(|| TouchEntry {
            cell: Arc::clone(cell) as Arc<dyn CellDyn>,
            seen_version: cell.version.load(Ordering::Acquire),
            overlay: Box::new(cell.committed.lock().clone()),
            written: false,
        });
        entry.written |= write;
        let s = entry
            .overlay
            .downcast_mut::<S>()
            .expect("overlay type matches cell type");
        f(s)
    }
}

impl fmt::Debug for OccCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OccCtx(touched={})", self.touched.borrow().len())
    }
}

/// Outcome statistics of one optimistic execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccReport {
    /// How many aborted attempts preceded the successful one.
    pub retries: u64,
}

/// The optimistic runtime: a commit lock plus retry statistics.
///
/// ```
/// use samoa_core::optimistic::{OccCell, OccRuntime};
///
/// let rt = OccRuntime::new();
/// let counter = OccCell::new(0u64);
/// let (_, report) = rt
///     .execute(|tx| {
///         let v = counter.read(tx, |c| *c);
///         counter.write(tx, |c| *c = v + 1);
///         Ok(v)
///     })
///     .unwrap();
/// assert_eq!(counter.read_committed(|c| *c), 1);
/// assert_eq!(report.retries, 0);
/// ```
#[derive(Clone, Default)]
pub struct OccRuntime {
    inner: Arc<OccInner>,
}

#[derive(Default)]
struct OccInner {
    commit_lock: Mutex<()>,
    total_commits: AtomicU64,
    total_retries: AtomicU64,
    /// Transaction ids for instrumentation; only assigned when a hook or
    /// sink is attached.
    tx_seq: AtomicU64,
    /// Schedule-control hook ([`OccRuntime::with_hook`]); `None` in
    /// production, so each decision point costs one branch.
    hook: Option<Arc<dyn SchedHook>>,
    /// Trace sink + timestamp epoch ([`OccRuntime::with_trace`]); `None`
    /// when untraced — one branch per instrumentation site, as in
    /// [`Runtime`](crate::Runtime).
    trace: Option<(Arc<dyn TraceSink>, Instant)>,
}

impl OccRuntime {
    /// Create a fresh optimistic runtime.
    pub fn new() -> Self {
        OccRuntime::default()
    }

    /// An optimistic runtime with a schedule-control hook: validation,
    /// commit, and retry are reported as [`SchedPoint`]s, letting a
    /// controller steer which transaction validates first.
    pub fn with_hook(hook: Arc<dyn SchedHook>) -> Self {
        OccRuntime {
            inner: Arc::new(OccInner {
                hook: Some(hook),
                ..OccInner::default()
            }),
        }
    }

    /// An optimistic runtime with a [`TraceSink`] attached: every
    /// validation, commit, and abort/retry is delivered as a structured
    /// [`TraceKind::OccValidate`]/[`TraceKind::OccCommit`]/
    /// [`TraceKind::OccAbort`] event, timestamped from this runtime's
    /// construction.
    pub fn with_trace(sink: Arc<dyn TraceSink>) -> Self {
        OccRuntime {
            inner: Arc::new(OccInner {
                trace: Some((sink, Instant::now())),
                ..OccInner::default()
            }),
        }
    }

    /// Execute `f` as an optimistic computation: run against private
    /// overlays, validate, commit — retrying from scratch on conflict.
    ///
    /// `f` must be repeatable: it may run any number of times, and only its
    /// final (validated) run's writes become visible. Errors returned by
    /// `f` abort the computation permanently without committing.
    pub fn execute<R>(&self, f: impl Fn(&OccCtx) -> Result<R>) -> Result<(R, OccReport)> {
        // A transaction id is only minted when someone is watching.
        let instrumented = self.inner.hook.is_some() || self.inner.trace.is_some();
        let tx_id = if instrumented {
            self.inner.tx_seq.fetch_add(1, Ordering::Relaxed) + 1
        } else {
            0
        };
        let mut retries = 0u64;
        loop {
            let tx = OccCtx::new();
            let out = f(&tx)?;
            if let Some((sink, epoch)) = &self.inner.trace {
                let cells = tx.touched.borrow().len() as u64;
                trace::deliver(sink, *epoch, TraceKind::OccValidate { tx: tx_id, cells });
            }
            if let Some(h) = &self.inner.hook {
                // The footprint is the validation set: the attempt just read
                // these cells and is about to validate/commit against them.
                let cells: Vec<SchedResource> = tx
                    .touched
                    .borrow()
                    .keys()
                    .map(|&id| SchedResource::OccCell(id))
                    .collect();
                h.yield_point_with(SchedPoint::OccValidate { tx: tx_id }, &cells);
            }
            // Validate + commit atomically.
            let _commit = self.inner.commit_lock.lock();
            let touched = tx.touched.into_inner();
            let valid = touched.values().all(|e| e.cell.version() == e.seen_version);
            if valid {
                let written: Vec<SchedResource> = if self.inner.hook.is_some() {
                    touched
                        .iter()
                        .filter(|(_, e)| e.written)
                        .map(|(&id, _)| SchedResource::OccCell(id))
                        .collect()
                } else {
                    Vec::new()
                };
                for (_, e) in touched {
                    if e.written {
                        e.cell.commit_overlay(e.overlay);
                    }
                }
                self.inner.total_commits.fetch_add(1, Ordering::Relaxed);
                self.inner
                    .total_retries
                    .fetch_add(retries, Ordering::Relaxed);
                drop(_commit);
                if let Some((sink, epoch)) = &self.inner.trace {
                    trace::deliver(sink, *epoch, TraceKind::OccCommit { tx: tx_id, retries });
                }
                if let Some(h) = &self.inner.hook {
                    // Footprint: the cells the commit just wrote.
                    h.yield_point_with(SchedPoint::OccCommit { tx: tx_id }, &written);
                }
                return Ok((out, OccReport { retries }));
            }
            let stale: Vec<SchedResource> = if self.inner.hook.is_some() {
                touched
                    .keys()
                    .map(|&id| SchedResource::OccCell(id))
                    .collect()
            } else {
                Vec::new()
            };
            drop(_commit);
            retries += 1;
            if let Some((sink, epoch)) = &self.inner.trace {
                trace::deliver(
                    sink,
                    *epoch,
                    TraceKind::OccAbort {
                        tx: tx_id,
                        attempt: retries,
                    },
                );
            }
            if let Some(h) = &self.inner.hook {
                // Footprint: the validation set the aborted attempt read —
                // the retry is about to re-read (and re-write) those cells.
                h.yield_point_with(
                    SchedPoint::OccRetry {
                        tx: tx_id,
                        attempt: retries,
                    },
                    &stale,
                );
            }
            if retries > 1_000_000 {
                return Err(SamoaError::protocol(
                    "optimistic computation starved (1M aborts)",
                ));
            }
        }
    }

    /// Committed computations so far.
    pub fn commits(&self) -> u64 {
        self.inner.total_commits.load(Ordering::Relaxed)
    }

    /// Aborted attempts so far (the wasted work of this family).
    pub fn aborts(&self) -> u64 {
        self.inner.total_retries.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for OccRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OccRuntime")
            .field("commits", &self.commits())
            .field("aborts", &self.aborts())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn read_write_commit() {
        let rt = OccRuntime::new();
        let cell = OccCell::new(vec![1u32]);
        let ((), rep) = rt
            .execute(|tx| {
                cell.write(tx, |v| v.push(2));
                Ok(())
            })
            .unwrap();
        assert_eq!(rep.retries, 0);
        assert_eq!(cell.read_committed(|v| v.clone()), vec![1, 2]);
        assert_eq!(cell.commit_count(), 1);
        assert_eq!(rt.commits(), 1);
    }

    #[test]
    fn overlay_isolation_until_commit() {
        let rt = OccRuntime::new();
        let cell = OccCell::new(0u64);
        rt.execute(|tx| {
            cell.write(tx, |v| *v = 42);
            // Not committed yet: the shared state is unchanged.
            assert_eq!(cell.read_committed(|v| *v), 0);
            // But the transaction sees its own write.
            assert_eq!(cell.read(tx, |v| *v), 42);
            Ok(())
        })
        .unwrap();
        assert_eq!(cell.read_committed(|v| *v), 42);
    }

    #[test]
    fn error_aborts_without_commit() {
        let rt = OccRuntime::new();
        let cell = OccCell::new(7u64);
        let err = rt
            .execute(|tx| {
                cell.write(tx, |v| *v = 0);
                Err::<(), _>(SamoaError::protocol("nope"))
            })
            .unwrap_err();
        assert!(matches!(err, SamoaError::Protocol { .. }));
        assert_eq!(cell.read_committed(|v| *v), 7);
        assert_eq!(rt.commits(), 0);
    }

    #[test]
    fn read_only_transactions_do_not_bump_versions() {
        let rt = OccRuntime::new();
        let cell = OccCell::new(5u64);
        let (v, _) = rt.execute(|tx| Ok(cell.read(tx, |v| *v))).unwrap();
        assert_eq!(v, 5);
        assert_eq!(cell.commit_count(), 0);
    }

    #[test]
    fn conflicting_increments_never_lose_updates() {
        let rt = OccRuntime::new();
        let cell = OccCell::new(0u64);
        let threads = 8;
        let per = 50;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let rt = rt.clone();
                let cell = cell.clone();
                scope.spawn(move || {
                    for _ in 0..per {
                        rt.execute(|tx| {
                            let v = cell.read(tx, |c| *c);
                            // widen the conflict window
                            std::thread::sleep(Duration::from_micros(10));
                            cell.write(tx, |c| *c = v + 1);
                            Ok(())
                        })
                        .unwrap();
                    }
                });
            }
        });
        assert_eq!(cell.read_committed(|v| *v), threads * per);
        assert_eq!(rt.commits(), threads * per);
        // Under this contention, rollbacks must actually have happened —
        // otherwise the test exercises nothing.
        assert!(rt.aborts() > 0, "no conflicts induced");
    }

    #[test]
    fn disjoint_cells_commit_without_retries() {
        let rt = OccRuntime::new();
        let a = OccCell::new(0u64);
        let b = OccCell::new(0u64);
        std::thread::scope(|scope| {
            let (rt1, a) = (rt.clone(), a.clone());
            let (rt2, b) = (rt.clone(), b.clone());
            scope.spawn(move || {
                for _ in 0..100 {
                    rt1.execute(|tx| {
                        a.write(tx, |v| *v += 1);
                        Ok(())
                    })
                    .unwrap();
                }
            });
            scope.spawn(move || {
                for _ in 0..100 {
                    rt2.execute(|tx| {
                        b.write(tx, |v| *v += 1);
                        Ok(())
                    })
                    .unwrap();
                }
            });
        });
        assert_eq!(a.read_committed(|v| *v), 100);
        assert_eq!(b.read_committed(|v| *v), 100);
        assert_eq!(rt.aborts(), 0, "disjoint writes should never conflict");
    }

    #[test]
    fn traced_runtime_emits_validate_commit_abort() {
        use crate::trace::{TraceBuffer, TraceKind};
        let buf = TraceBuffer::new();
        let rt = OccRuntime::with_trace(buf.clone());
        let cell = OccCell::new(0u64);
        // Force at least one abort under contention.
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rt = rt.clone();
                let cell = cell.clone();
                scope.spawn(move || {
                    for _ in 0..25 {
                        rt.execute(|tx| {
                            let v = cell.read(tx, |c| *c);
                            std::thread::sleep(Duration::from_micros(10));
                            cell.write(tx, |c| *c = v + 1);
                            Ok(())
                        })
                        .unwrap();
                    }
                });
            }
        });
        let events = buf.drain();
        let mut validates = 0;
        let mut commits = 0;
        let mut aborts = 0;
        for e in &events {
            match e.kind {
                TraceKind::OccValidate { cells, .. } => {
                    assert_eq!(cells, 1);
                    validates += 1;
                }
                TraceKind::OccCommit { .. } => commits += 1,
                TraceKind::OccAbort { .. } => aborts += 1,
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert_eq!(commits, 100);
        assert_eq!(validates as u64, commits + aborts);
        assert_eq!(aborts, rt.aborts());
        assert!(aborts > 0, "no conflicts induced");
    }

    #[test]
    fn multi_cell_transaction_is_atomic() {
        // Transfer between two accounts under contention: the invariant
        // a + b = const holds in every committed state.
        let rt = OccRuntime::new();
        let a = OccCell::new(500i64);
        let b = OccCell::new(500i64);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let rt = rt.clone();
                let (a, b) = (a.clone(), b.clone());
                scope.spawn(move || {
                    for i in 0..50 {
                        let amount = ((t * 7 + i) % 20) as i64 - 10;
                        rt.execute(|tx| {
                            let av = a.read(tx, |v| *v);
                            let bv = b.read(tx, |v| *v);
                            a.write(tx, |v| *v = av - amount);
                            b.write(tx, |v| *v = bv + amount);
                            Ok(())
                        })
                        .unwrap();
                    }
                });
            }
        });
        let total = a.read_committed(|v| *v) + b.read_committed(|v| *v);
        assert_eq!(total, 1000, "atomicity violated");
    }
}
