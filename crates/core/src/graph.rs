//! Routing patterns for `isolated route` (paper §4, §5.3).
//!
//! A routing pattern is a directed graph over handler names. An arrow
//! `h1 ↦ h2` declares that the body of `h1` may call `h2`. The pattern also
//! declares *roots*: the handlers that the `isolated` closure body may call
//! directly.
//!
//! At run time the computation keeps a `RouteState` (crate-internal): which handlers are
//! currently *active* (executing, or issued asynchronously and not yet
//! executed — see DESIGN.md for why pending asynchronous events must count),
//! and which vertices have been *removed* by early release (Rule 4(b)). A
//! microprotocol whose handlers are all inactive and unreachable from any
//! active handler can be released before the computation completes, which is
//! where `VCAroute` gets its extra parallelism.
//!
//! The pattern compiles once into an immutable [`RouteGraph`] — sorted
//! vertex table, adjacency, and a precomputed reachability closure stored as
//! bitsets — cached on the pattern and shared (`Arc`) by every computation
//! spawned from it. Per-spawn setup is then a handful of zeroed vectors, the
//! per-call admission check is a single bitset probe, and the per-call
//! release scan is a few word ORs, instead of rebuilding and walking the
//! graph under the route lock on every call. Once a protocol has been
//! removed the scans fall back to the explicit DFS (paths through removed
//! vertices must not conduct), so behaviour is bit-for-bit identical to the
//! naive implementation.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::handler::HandlerId;
use crate::protocol::ProtocolId;

/// A user-declared routing pattern: roots plus directed edges over handlers.
///
/// ```
/// # use samoa_core::graph::RoutePattern;
/// # use samoa_core::handler_id_for_tests as h;
/// let pattern = RoutePattern::new()
///     .root(h(0))
///     .edge(h(0), h(1))
///     .edge(h(1), h(2));
/// assert_eq!(pattern.vertices().len(), 3);
/// ```
#[derive(Default)]
pub struct RoutePattern {
    pub(crate) roots: Vec<HandlerId>,
    pub(crate) edges: Vec<(HandlerId, HandlerId)>,
    /// Compiled form, built lazily on first spawn and reused by every
    /// computation declared with this pattern (see [`RouteGraph`]).
    compiled: OnceLock<Arc<RouteGraph>>,
}

impl Clone for RoutePattern {
    fn clone(&self) -> Self {
        // The compiled cache embeds a handler→protocol mapping; a clone may
        // be used against a different stack, so it starts cold.
        RoutePattern {
            roots: self.roots.clone(),
            edges: self.edges.clone(),
            compiled: OnceLock::new(),
        }
    }
}

impl RoutePattern {
    /// Start an empty pattern.
    pub fn new() -> Self {
        RoutePattern::default()
    }

    /// Declare `h` as callable directly from the `isolated` closure body.
    /// Duplicate roots are deduplicated.
    pub fn root(mut self, h: HandlerId) -> Self {
        if !self.roots.contains(&h) {
            self.roots.push(h);
            self.compiled = OnceLock::new();
        }
        self
    }

    /// Declare that the body of `from` may call `to`. Duplicate edges are
    /// deduplicated.
    pub fn edge(mut self, from: HandlerId, to: HandlerId) -> Self {
        if !self.edges.contains(&(from, to)) {
            self.edges.push((from, to));
            self.compiled = OnceLock::new();
        }
        self
    }

    /// Build a pattern from handler *names* registered on a stack — the
    /// ergonomic form for hand-written declarations.
    ///
    /// # Panics
    ///
    /// Panics if a name is not registered (a misdeclared pattern is a
    /// programming error the runtime could only report later and worse).
    /// Use [`RoutePattern::try_from_names`] to get the failure as a value.
    pub fn from_names(
        stack: &crate::stack::Stack,
        roots: &[&str],
        edges: &[(&str, &str)],
    ) -> RoutePattern {
        RoutePattern::try_from_names(stack, roots, edges).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`RoutePattern::from_names`]: resolve handler names against
    /// the stack, reporting the first unknown name as
    /// [`SamoaError::UnknownHandlerName`](crate::error::SamoaError::UnknownHandlerName)
    /// instead of panicking — the right form when patterns come from
    /// configuration rather than source code.
    pub fn try_from_names(
        stack: &crate::stack::Stack,
        roots: &[&str],
        edges: &[(&str, &str)],
    ) -> crate::error::Result<RoutePattern> {
        let lookup = |name: &str| {
            stack.handler_by_name(name).ok_or_else(|| {
                crate::error::SamoaError::UnknownHandlerName {
                    name: name.to_string(),
                }
            })
        };
        let mut pat = RoutePattern::new();
        for r in roots {
            pat = pat.root(lookup(r)?);
        }
        for (a, b) in edges {
            pat = pat.edge(lookup(a)?, lookup(b)?);
        }
        Ok(pat)
    }

    /// All handlers mentioned by the pattern (roots and edge endpoints).
    pub fn vertices(&self) -> BTreeSet<HandlerId> {
        let mut v: BTreeSet<HandlerId> = self.roots.iter().copied().collect();
        for &(a, b) in &self.edges {
            v.insert(a);
            v.insert(b);
        }
        v
    }

    /// The compiled graph for this pattern under `protocol_of`, from the
    /// cache when possible. A cache hit is validated against `protocol_of`
    /// (the same pattern value may in principle be declared on two stacks
    /// with different handler→protocol maps); a mismatch rebuilds uncached.
    fn compile(&self, protocol_of: &dyn Fn(HandlerId) -> ProtocolId) -> Arc<RouteGraph> {
        if let Some(g) = self.compiled.get() {
            if g.handlers
                .iter()
                .enumerate()
                .all(|(i, &h)| g.protocol[i] == protocol_of(h))
            {
                return Arc::clone(g);
            }
            return Arc::new(RouteGraph::build(self, protocol_of));
        }
        let g = Arc::new(RouteGraph::build(self, protocol_of));
        let _ = self.compiled.set(Arc::clone(&g));
        g
    }
}

impl fmt::Debug for RoutePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RoutePattern")
            .field("roots", &self.roots)
            .field("edges", &self.edges)
            .finish()
    }
}

/// A [`RoutePattern`] compiled against a stack's handler→protocol mapping.
///
/// Immutable and shared: built once per pattern, `Arc`-cloned into every
/// computation spawned from it. Reachability (`reach`) and the per-protocol
/// vertex masks (`proto_mask`) are bitsets of `words` × 64 bits, one row per
/// vertex / protocol, so the hot-path queries are word operations.
pub(crate) struct RouteGraph {
    /// Vertex handlers, sorted (vertex index = position here).
    handlers: Vec<HandlerId>,
    /// Owning protocol per vertex.
    protocol: Vec<ProtocolId>,
    /// Successor vertex indices per vertex (deduplicated).
    succ: Vec<Vec<usize>>,
    /// Bitset words per row.
    words: usize,
    /// Row `i`: vertices reachable from `i` via one or more edges (contains
    /// `i` itself only when a cycle leads back — the paper's rule that every
    /// call, including recursion, must be authorised by the pattern).
    reach: Vec<u64>,
    /// Vertex indices callable directly from the closure body.
    root_succ: Vec<usize>,
    /// Union over the roots of `{r} ∪ reach(r)` — everything the still-live
    /// closure body keeps reachable.
    root_cover: Vec<u64>,
    /// Distinct protocols covered by the pattern, in vertex order.
    protocols: Vec<ProtocolId>,
    /// Row `p`: the vertices owned by `protocols[p]`.
    proto_mask: Vec<u64>,
    /// Every protocol has a vertex inside `root_cover`. While the closure
    /// body is live and nothing has been removed, a release scan can then
    /// release nothing — the per-call scan exits without touching the
    /// bitsets at all. True for every pattern inferred from an event's call
    /// closure (all vertices are root-reachable by construction).
    root_covers_all: bool,
}

impl RouteGraph {
    fn build(pattern: &RoutePattern, protocol_of: &dyn Fn(HandlerId) -> ProtocolId) -> RouteGraph {
        let handlers: Vec<HandlerId> = pattern.vertices().into_iter().collect();
        let n = handlers.len();
        let index_of = |h: HandlerId| handlers.binary_search(&h).expect("vertex present");
        let protocol: Vec<ProtocolId> = handlers.iter().map(|&h| protocol_of(h)).collect();
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in &pattern.edges {
            let (ia, ib) = (index_of(a), index_of(b));
            if !succ[ia].contains(&ib) {
                succ[ia].push(ib);
            }
        }
        let root_succ: Vec<usize> = {
            let mut seen = BTreeSet::new();
            pattern
                .roots
                .iter()
                .map(|&h| index_of(h))
                .filter(|&i| seen.insert(i))
                .collect()
        };
        let mut protocols = Vec::new();
        for &p in &protocol {
            if !protocols.contains(&p) {
                protocols.push(p);
            }
        }
        let words = n.div_ceil(64).max(1);
        let mut reach = vec![0u64; n * words];
        let mut seen = vec![false; n];
        let mut stack = Vec::new();
        for i in 0..n {
            seen.iter_mut().for_each(|s| *s = false);
            stack.extend(succ[i].iter().copied());
            for &j in &succ[i] {
                seen[j] = true;
            }
            while let Some(j) = stack.pop() {
                reach[i * words + j / 64] |= 1 << (j % 64);
                for &k in &succ[j] {
                    if !seen[k] {
                        seen[k] = true;
                        stack.push(k);
                    }
                }
            }
        }
        let mut root_cover = vec![0u64; words];
        for &r in &root_succ {
            root_cover[r / 64] |= 1 << (r % 64);
            for w in 0..words {
                root_cover[w] |= reach[r * words + w];
            }
        }
        let mut proto_mask = vec![0u64; protocols.len() * words];
        for (i, p) in protocol.iter().enumerate() {
            let pi = protocols.iter().position(|q| q == p).expect("collected");
            proto_mask[pi * words + i / 64] |= 1 << (i % 64);
        }
        let root_covers_all = (0..protocols.len()).all(|pi| {
            proto_mask[pi * words..(pi + 1) * words]
                .iter()
                .zip(&root_cover)
                .any(|(m, r)| m & r != 0)
        });
        RouteGraph {
            handlers,
            protocol,
            succ,
            words,
            reach,
            root_succ,
            root_cover,
            protocols,
            proto_mask,
            root_covers_all,
        }
    }

    /// Is `to` reachable from `from` via ≥1 edges, ignoring removals?
    fn reach_bit(&self, from: usize, to: usize) -> bool {
        self.reach[from * self.words + to / 64] & (1 << (to % 64)) != 0
    }
}

/// Per-computation mutable routing state for `VCAroute`: mark counts and
/// removal bitsets over a shared [`RouteGraph`].
pub(crate) struct RouteState {
    g: Arc<RouteGraph>,
    /// Number of currently executing calls, per vertex.
    active: Vec<u32>,
    /// Number of issued-but-not-yet-executed asynchronous events, per vertex.
    pending: Vec<u32>,
    /// Bitset of vertices with `active + pending > 0`.
    marked: Vec<u64>,
    /// Bitset of vertices removed by early release (Rule 4(b)); removed
    /// vertices neither accept calls nor conduct reachability. Vertices are
    /// only ever removed in whole-protocol batches.
    removed: Vec<u64>,
    /// Released flag per protocol (parallel to the graph's `protocols`).
    released: Vec<bool>,
    /// Number of protocols released so far — the fast paths apply while 0.
    n_removed: usize,
    /// True while the `isolated` closure body is still running.
    root_active: bool,
}

/// Outcome of a route admission check.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum RouteCheck {
    /// Call admitted (and the target marked active/pending).
    Ok,
    /// Target handler is not a vertex of the pattern.
    NotInPattern,
    /// Target is a vertex but there is no route from the caller.
    NoRoute,
}

impl RouteState {
    /// Build the runtime state from a declared pattern.
    ///
    /// `protocol_of` maps each handler to its owning microprotocol.
    pub(crate) fn new(
        pattern: &RoutePattern,
        protocol_of: impl Fn(HandlerId) -> ProtocolId,
    ) -> Self {
        let g = pattern.compile(&protocol_of);
        let n = g.handlers.len();
        let words = g.words;
        let protos = g.protocols.len();
        RouteState {
            g,
            active: vec![0; n],
            pending: vec![0; n],
            marked: vec![0; words],
            removed: vec![0; words],
            released: vec![false; protos],
            n_removed: 0,
            root_active: true,
        }
    }

    /// Protocols covered by the pattern (the `M` of Rule 1).
    pub(crate) fn protocols(&self) -> &[ProtocolId] {
        &self.g.protocols
    }

    fn is_removed(&self, i: usize) -> bool {
        self.removed[i / 64] & (1 << (i % 64)) != 0
    }

    fn vertex(&self, h: HandlerId) -> Option<usize> {
        self.g
            .handlers
            .binary_search(&h)
            .ok()
            .filter(|&i| !self.is_removed(i))
    }

    /// Is there a live path from vertex `from` to vertex `to`?
    /// Reflexive: a handler may always call itself recursively? No — only if
    /// a self-edge (or cycle back) is declared, matching the paper's rule
    /// that the *pattern* authorises every call.
    fn has_path(&self, from: usize, to: usize) -> bool {
        if self.n_removed == 0 {
            // Nothing removed: the precomputed closure is exact.
            return self.g.reach_bit(from, to);
        }
        if self.is_removed(from) {
            return false;
        }
        // Removals present: paths through removed vertices do not conduct,
        // so walk the adjacency explicitly.
        let mut visited = vec![false; self.g.handlers.len()];
        let mut stack = vec![from];
        visited[from] = true;
        while let Some(i) = stack.pop() {
            for &j in &self.g.succ[i] {
                if self.is_removed(j) {
                    continue;
                }
                if j == to {
                    return true;
                }
                if !visited[j] {
                    visited[j] = true;
                    stack.push(j);
                }
            }
        }
        false
    }

    /// Admission check for a call of `to` made by `from` (`None` = the
    /// closure body). On success the target is marked: `sync` calls become
    /// active immediately; `async` issues become pending until
    /// [`Self::activate_pending`] runs.
    pub(crate) fn admit(
        &mut self,
        from: Option<HandlerId>,
        to: HandlerId,
        is_async: bool,
    ) -> RouteCheck {
        let Some(ti) = self.vertex(to) else {
            // Distinguish "never in pattern" from "removed": both are errors,
            // but removal of a still-needed vertex indicates a pattern bug,
            // so report the more precise NotInPattern either way.
            return RouteCheck::NotInPattern;
        };
        let admitted = match from {
            None => self.root_active && self.g.root_succ.contains(&ti),
            Some(f) => match self.vertex(f) {
                Some(fi) => self.has_path(fi, ti),
                None => false,
            },
        };
        if !admitted {
            return RouteCheck::NoRoute;
        }
        if is_async {
            self.pending[ti] += 1;
        } else {
            self.active[ti] += 1;
        }
        self.marked[ti / 64] |= 1 << (ti % 64);
        RouteCheck::Ok
    }

    fn vertex_any(&self, h: HandlerId, what: &str) -> usize {
        match self.g.handlers.binary_search(&h) {
            Ok(i) => i,
            Err(_) => panic!("{what} handler is a vertex"),
        }
    }

    /// Convert one pending mark into an active mark when an asynchronous
    /// event's handler starts executing.
    pub(crate) fn activate_pending(&mut self, h: HandlerId) {
        let i = self.vertex_any(h, "pending");
        debug_assert!(self.pending[i] > 0);
        self.pending[i] -= 1;
        self.active[i] += 1;
    }

    /// Mark a handler execution as finished (Rule 4(a)).
    pub(crate) fn deactivate(&mut self, h: HandlerId) {
        let i = self.vertex_any(h, "active");
        debug_assert!(self.active[i] > 0);
        self.active[i] -= 1;
        if self.active[i] == 0 && self.pending[i] == 0 {
            self.marked[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Mark the closure body as returned; its direct-call privilege ends.
    pub(crate) fn finish_root(&mut self) {
        self.root_active = false;
    }

    /// Rule 4(b): find every protocol whose vertices are all inactive,
    /// non-pending and unreachable from any active/pending vertex (or the
    /// still-running closure body), remove those vertices, and return the
    /// protocols so the caller can upgrade their local versions.
    pub(crate) fn release_scan(&mut self) -> Vec<ProtocolId> {
        if self.root_active && self.n_removed == 0 && self.g.root_covers_all {
            // The live closure body keeps every protocol reachable: nothing
            // can release, so skip the scan entirely. This is the per-call
            // common case — handler calls nested inside a still-running
            // `isolated` body.
            return Vec::new();
        }
        let words = self.g.words;
        let mut reach = vec![0u64; words];
        if self.n_removed == 0 {
            // Nothing removed yet: union the precomputed covers of every
            // marked vertex (marked vertices are reachable from themselves).
            for (wi, &mw) in self.marked.iter().enumerate() {
                let mut m = mw;
                while m != 0 {
                    let i = wi * 64 + m.trailing_zeros() as usize;
                    m &= m - 1;
                    reach[i / 64] |= 1 << (i % 64);
                    for (w, r) in reach.iter_mut().enumerate() {
                        *r |= self.g.reach[i * words + w];
                    }
                }
            }
            if self.root_active {
                for (r, &c) in reach.iter_mut().zip(&self.g.root_cover) {
                    *r |= c;
                }
            }
        } else {
            // Removals present: walk the adjacency, skipping removed
            // vertices, exactly as the closure-free implementation did.
            let n = self.g.handlers.len();
            let mut stack: Vec<usize> = Vec::new();
            for i in 0..n {
                if !self.is_removed(i) && self.marked[i / 64] & (1 << (i % 64)) != 0 {
                    reach[i / 64] |= 1 << (i % 64);
                    stack.push(i);
                }
            }
            if self.root_active {
                for &i in &self.g.root_succ {
                    if !self.is_removed(i) && reach[i / 64] & (1 << (i % 64)) == 0 {
                        reach[i / 64] |= 1 << (i % 64);
                        stack.push(i);
                    }
                }
            }
            while let Some(i) = stack.pop() {
                for &j in &self.g.succ[i] {
                    if !self.is_removed(j) && reach[j / 64] & (1 << (j % 64)) == 0 {
                        reach[j / 64] |= 1 << (j % 64);
                        stack.push(j);
                    }
                }
            }
        }
        // A protocol releases when none of its vertices are reachable; live
        // marks imply reachability (they seed the scan), so the mask test
        // subsumes the active/pending check.
        let mut out = Vec::new();
        for pi in 0..self.g.protocols.len() {
            if self.released[pi] {
                continue;
            }
            let mask = &self.g.proto_mask[pi * words..(pi + 1) * words];
            if mask.iter().zip(&reach).all(|(m, r)| m & r == 0) {
                self.released[pi] = true;
                self.n_removed += 1;
                for (rw, &mw) in self.removed.iter_mut().zip(mask) {
                    *rw |= mw;
                }
                out.push(self.g.protocols[pi]);
            }
        }
        out
    }

    /// Protocols whose vertices have *not* been removed yet — these are the
    /// ones Rule 3 must still upgrade at completion.
    pub(crate) fn unreleased_protocols(&self) -> Vec<ProtocolId> {
        self.g
            .protocols
            .iter()
            .enumerate()
            .filter(|&(pi, _)| !self.released[pi])
            .map(|(_, &p)| p)
            .collect()
    }
}

impl fmt::Debug for RouteState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let verts: Vec<String> = self
            .g
            .handlers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                format!(
                    "{h:?}: active {} pending {}{}",
                    self.active[i],
                    self.pending[i],
                    if self.is_removed(i) { " removed" } else { "" }
                )
            })
            .collect();
        f.debug_struct("RouteState")
            .field("vertices", &verts)
            .field("root_active", &self.root_active)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(i: u32) -> HandlerId {
        HandlerId(i)
    }
    fn p(i: u32) -> ProtocolId {
        ProtocolId(i)
    }

    /// A chain 0 -> 1 -> 2 with one protocol per handler.
    fn chain() -> RouteState {
        let pat = RoutePattern::new()
            .root(h(0))
            .edge(h(0), h(1))
            .edge(h(1), h(2));
        RouteState::new(&pat, |hid| p(hid.0))
    }

    #[test]
    fn protocols_collected_in_order() {
        let s = chain();
        assert_eq!(s.protocols(), &[p(0), p(1), p(2)]);
    }

    #[test]
    fn root_can_call_declared_root_only() {
        let mut s = chain();
        assert_eq!(s.admit(None, h(0), false), RouteCheck::Ok);
        assert_eq!(s.admit(None, h(1), false), RouteCheck::NoRoute);
        assert_eq!(s.admit(None, h(9), false), RouteCheck::NotInPattern);
    }

    #[test]
    fn path_not_just_edge_is_accepted() {
        let mut s = chain();
        // 0 -> 2 has a path through 1 even though there is no direct edge.
        assert_eq!(s.admit(Some(h(0)), h(2), false), RouteCheck::Ok);
    }

    #[test]
    fn reverse_direction_rejected() {
        let mut s = chain();
        assert_eq!(s.admit(Some(h(2)), h(0), false), RouteCheck::NoRoute);
    }

    #[test]
    fn self_call_needs_cycle() {
        let mut s = chain();
        assert_eq!(s.admit(Some(h(1)), h(1), false), RouteCheck::NoRoute);
        let pat = RoutePattern::new().root(h(0)).edge(h(0), h(0));
        let mut s2 = RouteState::new(&pat, |_| p(0));
        assert_eq!(s2.admit(Some(h(0)), h(0), false), RouteCheck::Ok);
    }

    #[test]
    fn release_scan_frees_tail_after_handler_moves_on() {
        let mut s = chain();
        // While root is active everything is reachable: nothing released.
        assert!(s.release_scan().is_empty());
        // Root calls h0; root body returns.
        assert_eq!(s.admit(None, h(0), false), RouteCheck::Ok);
        s.finish_root();
        // h0 active: 1 and 2 reachable from it; nothing released.
        assert!(s.release_scan().is_empty());
        // h0 calls h1 (sync) and finishes itself afterwards.
        assert_eq!(s.admit(Some(h(0)), h(1), false), RouteCheck::Ok);
        s.deactivate(h(1)); // inner call returns first
        s.deactivate(h(0));
        // Now only protocol 0's vertex h0 is inactive and unreachable; h1/h2
        // are unreachable too since nothing is active.
        let mut released = s.release_scan();
        released.sort();
        assert_eq!(released, vec![p(0), p(1), p(2)]);
        assert!(s.unreleased_protocols().is_empty());
    }

    #[test]
    fn active_handler_retains_its_successors() {
        let mut s = chain();
        assert_eq!(s.admit(None, h(0), false), RouteCheck::Ok);
        s.finish_root();
        // h0 running: nothing can be released, including h0's own protocol.
        assert!(s.release_scan().is_empty());
        s.deactivate(h(0));
        let released = s.release_scan();
        assert_eq!(released.len(), 3);
    }

    #[test]
    fn early_release_of_head_while_tail_runs() {
        let mut s = chain();
        assert_eq!(s.admit(None, h(0), false), RouteCheck::Ok);
        s.finish_root();
        assert_eq!(s.admit(Some(h(0)), h(1), false), RouteCheck::Ok);
        s.deactivate(h(0)); // h0 done, h1 still running
        let released = s.release_scan();
        // h0 unreachable from active h1 (edges point forward): released.
        assert_eq!(released, vec![p(0)]);
        // h1's own protocol and h2 (reachable from h1) stay.
        assert_eq!(s.unreleased_protocols(), vec![p(1), p(2)]);
        // A later call back into h0 must now fail.
        assert_eq!(s.admit(Some(h(1)), h(0), false), RouteCheck::NotInPattern);
    }

    #[test]
    fn pending_async_blocks_release() {
        let mut s = chain();
        assert_eq!(s.admit(None, h(0), false), RouteCheck::Ok);
        s.finish_root();
        // h0 issues an async event to h2, then completes.
        assert_eq!(s.admit(Some(h(0)), h(2), true), RouteCheck::Ok);
        s.deactivate(h(0));
        let released = s.release_scan();
        // h2 pending: protocol 2 retained; 0 and 1 unreachable -> released.
        let mut r = released;
        r.sort();
        assert_eq!(r, vec![p(0), p(1)]);
        // Async event now executes.
        s.activate_pending(h(2));
        assert!(s.release_scan().is_empty());
        s.deactivate(h(2));
        assert_eq!(s.release_scan(), vec![p(2)]);
    }

    #[test]
    fn cycle_prevents_release_until_all_inactive() {
        // 0 <-> 1 cycle, one protocol each.
        let pat = RoutePattern::new()
            .root(h(0))
            .edge(h(0), h(1))
            .edge(h(1), h(0));
        let mut s = RouteState::new(&pat, |hid| p(hid.0));
        assert_eq!(s.admit(None, h(0), false), RouteCheck::Ok);
        s.finish_root();
        // h0 active keeps h1 reachable, and h1 keeps h0 reachable.
        assert!(s.release_scan().is_empty());
        s.deactivate(h(0));
        let mut r = s.release_scan();
        r.sort();
        assert_eq!(r, vec![p(0), p(1)]);
    }

    #[test]
    fn duplicate_edges_and_roots_deduplicated() {
        let pat = RoutePattern::new()
            .root(h(0))
            .root(h(0))
            .edge(h(0), h(1))
            .edge(h(0), h(1));
        // Deduplicated already in the pattern itself...
        assert_eq!(pat.roots.len(), 1);
        assert_eq!(pat.edges.len(), 1);
        // ...and (defensively) in the compiled graph built from it.
        let s = RouteState::new(&pat, |hid| p(hid.0));
        assert_eq!(s.g.root_succ.len(), 1);
        assert_eq!(s.g.succ[0].len(), 1);
    }

    #[test]
    fn compiled_graph_is_cached_and_shared() {
        let pat = RoutePattern::new()
            .root(h(0))
            .edge(h(0), h(1))
            .edge(h(1), h(2));
        let a = RouteState::new(&pat, |hid| p(hid.0));
        let b = RouteState::new(&pat, |hid| p(hid.0));
        assert!(Arc::ptr_eq(&a.g, &b.g), "second spawn reuses the graph");
        // A different handler→protocol map must not hit the stale cache.
        let c = RouteState::new(&pat, |_| p(7));
        assert!(!Arc::ptr_eq(&a.g, &c.g));
        assert_eq!(c.protocols(), &[p(7)]);
        // Extending the pattern invalidates the cache.
        let pat2 = pat.clone().edge(h(2), h(3));
        let d = RouteState::new(&pat2, |hid| p(hid.0));
        assert_eq!(d.protocols(), &[p(0), p(1), p(2), p(3)]);
    }

    #[test]
    fn admission_after_release_matches_dfs_semantics() {
        // 0 -> 1 -> 2 and 0 -> 3; after protocol 1 is released, the static
        // closure (0 reaches 2 through 1) must not admit 0 -> 2.
        let pat = RoutePattern::new()
            .root(h(0))
            .edge(h(0), h(1))
            .edge(h(1), h(2))
            .edge(h(0), h(3));
        let mut s = RouteState::new(&pat, |hid| p(hid.0));
        assert_eq!(s.admit(None, h(0), false), RouteCheck::Ok);
        s.finish_root();
        assert_eq!(s.admit(Some(h(0)), h(3), false), RouteCheck::Ok);
        s.deactivate(h(3));
        // h0 still active: everything it reaches stays; nothing released.
        assert!(s.release_scan().is_empty());
        assert_eq!(s.admit(Some(h(0)), h(1), false), RouteCheck::Ok);
        s.deactivate(h(1));
        s.deactivate(h(0));
        // Only h3's protocol had its last chance pass? No: nothing is
        // active, so every protocol releases at once.
        let mut r = s.release_scan();
        r.sort();
        assert_eq!(r, vec![p(0), p(1), p(2), p(3)]);
        assert_eq!(s.admit(Some(h(0)), h(2), false), RouteCheck::NotInPattern);
    }

    #[test]
    fn removed_vertices_do_not_conduct_paths() {
        // Diamond with a cycle keeping the far side alive: 0 -> 1 -> 2,
        // 0 -> 3, 3 -> 3 (self-cycle so 3 stays admissible while active).
        let pat = RoutePattern::new()
            .root(h(0))
            .root(h(3))
            .edge(h(0), h(1))
            .edge(h(1), h(2))
            .edge(h(3), h(3));
        let mut s = RouteState::new(&pat, |hid| p(hid.0));
        assert_eq!(s.admit(None, h(3), false), RouteCheck::Ok);
        s.finish_root();
        // Chain 0/1/2 unreachable from active h3: released in one sweep.
        let mut r = s.release_scan();
        r.sort();
        assert_eq!(r, vec![p(0), p(1), p(2)]);
        // The DFS fallback now governs: h3's self-cycle still admits...
        assert_eq!(s.admit(Some(h(3)), h(3), false), RouteCheck::Ok);
        // ...but removed vertices are gone for good.
        assert_eq!(s.admit(Some(h(3)), h(1), false), RouteCheck::NotInPattern);
        assert_eq!(s.unreleased_protocols(), vec![p(3)]);
    }

    #[test]
    fn try_from_names_reports_unknown_name() {
        use crate::error::SamoaError;
        use crate::stack::StackBuilder;

        let mut b = StackBuilder::new();
        let pr = b.protocol("P");
        let e = b.event("E");
        b.bind(e, pr, "known", |_, _| Ok(()));
        let stack = b.build();

        let ok = RoutePattern::try_from_names(&stack, &["known"], &[("known", "known")]);
        assert!(ok.is_ok());

        let err = RoutePattern::try_from_names(&stack, &["known"], &[("known", "ghost")]);
        assert_eq!(
            err.unwrap_err(),
            SamoaError::UnknownHandlerName {
                name: "ghost".to_string()
            }
        );
    }
}
