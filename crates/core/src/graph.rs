//! Routing patterns for `isolated route` (paper §4, §5.3).
//!
//! A routing pattern is a directed graph over handler names. An arrow
//! `h1 ↦ h2` declares that the body of `h1` may call `h2`. The pattern also
//! declares *roots*: the handlers that the `isolated` closure body may call
//! directly.
//!
//! At run time the computation keeps a `RouteState` (crate-internal): which handlers are
//! currently *active* (executing, or issued asynchronously and not yet
//! executed — see DESIGN.md for why pending asynchronous events must count),
//! and which vertices have been *removed* by early release (Rule 4(b)). A
//! microprotocol whose handlers are all inactive and unreachable from any
//! active handler can be released before the computation completes, which is
//! where `VCAroute` gets its extra parallelism.

use std::collections::BTreeSet;
use std::fmt;

use crate::handler::HandlerId;
use crate::protocol::ProtocolId;

/// A user-declared routing pattern: roots plus directed edges over handlers.
///
/// ```
/// # use samoa_core::graph::RoutePattern;
/// # use samoa_core::handler_id_for_tests as h;
/// let pattern = RoutePattern::new()
///     .root(h(0))
///     .edge(h(0), h(1))
///     .edge(h(1), h(2));
/// assert_eq!(pattern.vertices().len(), 3);
/// ```
#[derive(Clone, Default)]
pub struct RoutePattern {
    pub(crate) roots: Vec<HandlerId>,
    pub(crate) edges: Vec<(HandlerId, HandlerId)>,
}

impl RoutePattern {
    /// Start an empty pattern.
    pub fn new() -> Self {
        RoutePattern::default()
    }

    /// Declare `h` as callable directly from the `isolated` closure body.
    /// Duplicate roots are deduplicated.
    pub fn root(mut self, h: HandlerId) -> Self {
        if !self.roots.contains(&h) {
            self.roots.push(h);
        }
        self
    }

    /// Declare that the body of `from` may call `to`. Duplicate edges are
    /// deduplicated.
    pub fn edge(mut self, from: HandlerId, to: HandlerId) -> Self {
        if !self.edges.contains(&(from, to)) {
            self.edges.push((from, to));
        }
        self
    }

    /// Build a pattern from handler *names* registered on a stack — the
    /// ergonomic form for hand-written declarations.
    ///
    /// # Panics
    ///
    /// Panics if a name is not registered (a misdeclared pattern is a
    /// programming error the runtime could only report later and worse).
    /// Use [`RoutePattern::try_from_names`] to get the failure as a value.
    pub fn from_names(
        stack: &crate::stack::Stack,
        roots: &[&str],
        edges: &[(&str, &str)],
    ) -> RoutePattern {
        RoutePattern::try_from_names(stack, roots, edges).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`RoutePattern::from_names`]: resolve handler names against
    /// the stack, reporting the first unknown name as
    /// [`SamoaError::UnknownHandlerName`](crate::error::SamoaError::UnknownHandlerName)
    /// instead of panicking — the right form when patterns come from
    /// configuration rather than source code.
    pub fn try_from_names(
        stack: &crate::stack::Stack,
        roots: &[&str],
        edges: &[(&str, &str)],
    ) -> crate::error::Result<RoutePattern> {
        let lookup = |name: &str| {
            stack.handler_by_name(name).ok_or_else(|| {
                crate::error::SamoaError::UnknownHandlerName {
                    name: name.to_string(),
                }
            })
        };
        let mut pat = RoutePattern::new();
        for r in roots {
            pat = pat.root(lookup(r)?);
        }
        for (a, b) in edges {
            pat = pat.edge(lookup(a)?, lookup(b)?);
        }
        Ok(pat)
    }

    /// All handlers mentioned by the pattern (roots and edge endpoints).
    pub fn vertices(&self) -> BTreeSet<HandlerId> {
        let mut v: BTreeSet<HandlerId> = self.roots.iter().copied().collect();
        for &(a, b) in &self.edges {
            v.insert(a);
            v.insert(b);
        }
        v
    }
}

impl fmt::Debug for RoutePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RoutePattern")
            .field("roots", &self.roots)
            .field("edges", &self.edges)
            .finish()
    }
}

#[derive(Debug)]
struct Vertex {
    handler: HandlerId,
    protocol: ProtocolId,
    /// Successor vertex indices.
    succ: Vec<usize>,
    /// Number of currently executing calls of this handler.
    active: u32,
    /// Number of issued-but-not-yet-executed asynchronous events targeting
    /// this handler.
    pending: u32,
    /// Removed by early release (Rule 4(b)); removed vertices neither accept
    /// calls nor conduct reachability.
    removed: bool,
}

/// Per-computation mutable routing state for `VCAroute`.
pub(crate) struct RouteState {
    verts: Vec<Vertex>,
    /// Vertex indices callable directly from the closure body.
    root_succ: Vec<usize>,
    /// True while the `isolated` closure body is still running.
    root_active: bool,
    /// Distinct protocols covered by the pattern, in first-seen order.
    protocols: Vec<ProtocolId>,
}

/// Outcome of a route admission check.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum RouteCheck {
    /// Call admitted (and the target marked active/pending).
    Ok,
    /// Target handler is not a vertex of the pattern.
    NotInPattern,
    /// Target is a vertex but there is no route from the caller.
    NoRoute,
}

impl RouteState {
    /// Build the runtime state from a declared pattern.
    ///
    /// `protocol_of` maps each handler to its owning microprotocol.
    pub(crate) fn new(
        pattern: &RoutePattern,
        protocol_of: impl Fn(HandlerId) -> ProtocolId,
    ) -> Self {
        let vertices: Vec<HandlerId> = pattern.vertices().into_iter().collect();
        let index_of = |h: HandlerId| vertices.binary_search(&h).expect("vertex present");
        let mut verts: Vec<Vertex> = vertices
            .iter()
            .map(|&h| Vertex {
                handler: h,
                protocol: protocol_of(h),
                succ: Vec::new(),
                active: 0,
                pending: 0,
                removed: false,
            })
            .collect();
        for &(a, b) in &pattern.edges {
            let (ia, ib) = (index_of(a), index_of(b));
            if !verts[ia].succ.contains(&ib) {
                verts[ia].succ.push(ib);
            }
        }
        let root_succ: Vec<usize> = {
            let mut seen = BTreeSet::new();
            pattern
                .roots
                .iter()
                .map(|&h| index_of(h))
                .filter(|&i| seen.insert(i))
                .collect()
        };
        let mut protocols = Vec::new();
        for v in &verts {
            if !protocols.contains(&v.protocol) {
                protocols.push(v.protocol);
            }
        }
        RouteState {
            verts,
            root_succ,
            root_active: true,
            protocols,
        }
    }

    /// Protocols covered by the pattern (the `M` of Rule 1).
    pub(crate) fn protocols(&self) -> &[ProtocolId] {
        &self.protocols
    }

    fn vertex(&self, h: HandlerId) -> Option<usize> {
        self.verts
            .binary_search_by_key(&h, |v| v.handler)
            .ok()
            .filter(|&i| !self.verts[i].removed)
    }

    /// Is there a live path from vertex `from` to vertex `to`?
    /// Reflexive: a handler may always call itself recursively? No — only if
    /// a self-edge (or cycle back) is declared, matching the paper's rule
    /// that the *pattern* authorises every call.
    fn has_path(&self, from: usize, to: usize) -> bool {
        if self.verts[from].removed {
            return false;
        }
        let mut visited = vec![false; self.verts.len()];
        let mut stack = vec![from];
        visited[from] = true;
        while let Some(i) = stack.pop() {
            for &j in &self.verts[i].succ {
                if self.verts[j].removed {
                    continue;
                }
                if j == to {
                    return true;
                }
                if !visited[j] {
                    visited[j] = true;
                    stack.push(j);
                }
            }
        }
        false
    }

    /// Admission check for a call of `to` made by `from` (`None` = the
    /// closure body). On success the target is marked: `sync` calls become
    /// active immediately; `async` issues become pending until
    /// [`Self::activate_pending`] runs.
    pub(crate) fn admit(
        &mut self,
        from: Option<HandlerId>,
        to: HandlerId,
        is_async: bool,
    ) -> RouteCheck {
        let Some(ti) = self.vertex(to) else {
            // Distinguish "never in pattern" from "removed": both are errors,
            // but removal of a still-needed vertex indicates a pattern bug,
            // so report the more precise NotInPattern either way.
            return RouteCheck::NotInPattern;
        };
        let admitted = match from {
            None => self.root_active && self.root_succ.contains(&ti),
            Some(f) => match self.vertex(f) {
                Some(fi) => self.has_path(fi, ti),
                None => false,
            },
        };
        if !admitted {
            return RouteCheck::NoRoute;
        }
        if is_async {
            self.verts[ti].pending += 1;
        } else {
            self.verts[ti].active += 1;
        }
        RouteCheck::Ok
    }

    /// Convert one pending mark into an active mark when an asynchronous
    /// event's handler starts executing.
    pub(crate) fn activate_pending(&mut self, h: HandlerId) {
        let i = self
            .verts
            .binary_search_by_key(&h, |v| v.handler)
            .expect("pending handler is a vertex");
        debug_assert!(self.verts[i].pending > 0);
        self.verts[i].pending -= 1;
        self.verts[i].active += 1;
    }

    /// Mark a handler execution as finished (Rule 4(a)).
    pub(crate) fn deactivate(&mut self, h: HandlerId) {
        let i = self
            .verts
            .binary_search_by_key(&h, |v| v.handler)
            .expect("active handler is a vertex");
        debug_assert!(self.verts[i].active > 0);
        self.verts[i].active -= 1;
    }

    /// Mark the closure body as returned; its direct-call privilege ends.
    pub(crate) fn finish_root(&mut self) {
        self.root_active = false;
    }

    /// Rule 4(b): find every protocol whose vertices are all inactive,
    /// non-pending and unreachable from any active/pending vertex (or the
    /// still-running closure body), remove those vertices, and return the
    /// protocols so the caller can upgrade their local versions.
    pub(crate) fn release_scan(&mut self) -> Vec<ProtocolId> {
        let n = self.verts.len();
        let mut reachable = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        for (i, v) in self.verts.iter().enumerate() {
            if !v.removed && (v.active > 0 || v.pending > 0) {
                reachable[i] = true;
                stack.push(i);
            }
        }
        if self.root_active {
            for &i in &self.root_succ {
                if !self.verts[i].removed && !reachable[i] {
                    reachable[i] = true;
                    stack.push(i);
                }
            }
        }
        while let Some(i) = stack.pop() {
            for &j in &self.verts[i].succ {
                if !self.verts[j].removed && !reachable[j] {
                    reachable[j] = true;
                    stack.push(j);
                }
            }
        }
        let mut released = Vec::new();
        for &p in &self.protocols.clone() {
            let vs: Vec<usize> = (0..n).filter(|&i| self.verts[i].protocol == p).collect();
            let all_gone = vs.iter().all(|&i| {
                let v = &self.verts[i];
                v.removed || (!reachable[i] && v.active == 0 && v.pending == 0)
            });
            let any_live = vs.iter().any(|&i| !self.verts[i].removed);
            if all_gone && any_live {
                for &i in &vs {
                    self.verts[i].removed = true;
                }
                released.push(p);
            }
        }
        released
    }

    /// Protocols whose vertices have *not* been removed yet — these are the
    /// ones Rule 3 must still upgrade at completion.
    pub(crate) fn unreleased_protocols(&self) -> Vec<ProtocolId> {
        self.protocols
            .iter()
            .copied()
            .filter(|&p| self.verts.iter().any(|v| v.protocol == p && !v.removed))
            .collect()
    }
}

impl fmt::Debug for RouteState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RouteState")
            .field("vertices", &self.verts)
            .field("root_active", &self.root_active)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(i: u32) -> HandlerId {
        HandlerId(i)
    }
    fn p(i: u32) -> ProtocolId {
        ProtocolId(i)
    }

    /// A chain 0 -> 1 -> 2 with one protocol per handler.
    fn chain() -> RouteState {
        let pat = RoutePattern::new()
            .root(h(0))
            .edge(h(0), h(1))
            .edge(h(1), h(2));
        RouteState::new(&pat, |hid| p(hid.0))
    }

    #[test]
    fn protocols_collected_in_order() {
        let s = chain();
        assert_eq!(s.protocols(), &[p(0), p(1), p(2)]);
    }

    #[test]
    fn root_can_call_declared_root_only() {
        let mut s = chain();
        assert_eq!(s.admit(None, h(0), false), RouteCheck::Ok);
        assert_eq!(s.admit(None, h(1), false), RouteCheck::NoRoute);
        assert_eq!(s.admit(None, h(9), false), RouteCheck::NotInPattern);
    }

    #[test]
    fn path_not_just_edge_is_accepted() {
        let mut s = chain();
        // 0 -> 2 has a path through 1 even though there is no direct edge.
        assert_eq!(s.admit(Some(h(0)), h(2), false), RouteCheck::Ok);
    }

    #[test]
    fn reverse_direction_rejected() {
        let mut s = chain();
        assert_eq!(s.admit(Some(h(2)), h(0), false), RouteCheck::NoRoute);
    }

    #[test]
    fn self_call_needs_cycle() {
        let mut s = chain();
        assert_eq!(s.admit(Some(h(1)), h(1), false), RouteCheck::NoRoute);
        let pat = RoutePattern::new().root(h(0)).edge(h(0), h(0));
        let mut s2 = RouteState::new(&pat, |_| p(0));
        assert_eq!(s2.admit(Some(h(0)), h(0), false), RouteCheck::Ok);
    }

    #[test]
    fn release_scan_frees_tail_after_handler_moves_on() {
        let mut s = chain();
        // While root is active everything is reachable: nothing released.
        assert!(s.release_scan().is_empty());
        // Root calls h0; root body returns.
        assert_eq!(s.admit(None, h(0), false), RouteCheck::Ok);
        s.finish_root();
        // h0 active: 1 and 2 reachable from it; nothing released.
        assert!(s.release_scan().is_empty());
        // h0 calls h1 (sync) and finishes itself afterwards.
        assert_eq!(s.admit(Some(h(0)), h(1), false), RouteCheck::Ok);
        s.deactivate(h(1)); // inner call returns first
        s.deactivate(h(0));
        // Now only protocol 0's vertex h0 is inactive and unreachable; h1/h2
        // are unreachable too since nothing is active.
        let mut released = s.release_scan();
        released.sort();
        assert_eq!(released, vec![p(0), p(1), p(2)]);
        assert!(s.unreleased_protocols().is_empty());
    }

    #[test]
    fn active_handler_retains_its_successors() {
        let mut s = chain();
        assert_eq!(s.admit(None, h(0), false), RouteCheck::Ok);
        s.finish_root();
        // h0 running: nothing can be released, including h0's own protocol.
        assert!(s.release_scan().is_empty());
        s.deactivate(h(0));
        let released = s.release_scan();
        assert_eq!(released.len(), 3);
    }

    #[test]
    fn early_release_of_head_while_tail_runs() {
        let mut s = chain();
        assert_eq!(s.admit(None, h(0), false), RouteCheck::Ok);
        s.finish_root();
        assert_eq!(s.admit(Some(h(0)), h(1), false), RouteCheck::Ok);
        s.deactivate(h(0)); // h0 done, h1 still running
        let released = s.release_scan();
        // h0 unreachable from active h1 (edges point forward): released.
        assert_eq!(released, vec![p(0)]);
        // h1's own protocol and h2 (reachable from h1) stay.
        assert_eq!(s.unreleased_protocols(), vec![p(1), p(2)]);
        // A later call back into h0 must now fail.
        assert_eq!(s.admit(Some(h(1)), h(0), false), RouteCheck::NotInPattern);
    }

    #[test]
    fn pending_async_blocks_release() {
        let mut s = chain();
        assert_eq!(s.admit(None, h(0), false), RouteCheck::Ok);
        s.finish_root();
        // h0 issues an async event to h2, then completes.
        assert_eq!(s.admit(Some(h(0)), h(2), true), RouteCheck::Ok);
        s.deactivate(h(0));
        let released = s.release_scan();
        // h2 pending: protocol 2 retained; 0 and 1 unreachable -> released.
        let mut r = released;
        r.sort();
        assert_eq!(r, vec![p(0), p(1)]);
        // Async event now executes.
        s.activate_pending(h(2));
        assert!(s.release_scan().is_empty());
        s.deactivate(h(2));
        assert_eq!(s.release_scan(), vec![p(2)]);
    }

    #[test]
    fn cycle_prevents_release_until_all_inactive() {
        // 0 <-> 1 cycle, one protocol each.
        let pat = RoutePattern::new()
            .root(h(0))
            .edge(h(0), h(1))
            .edge(h(1), h(0));
        let mut s = RouteState::new(&pat, |hid| p(hid.0));
        assert_eq!(s.admit(None, h(0), false), RouteCheck::Ok);
        s.finish_root();
        // h0 active keeps h1 reachable, and h1 keeps h0 reachable.
        assert!(s.release_scan().is_empty());
        s.deactivate(h(0));
        let mut r = s.release_scan();
        r.sort();
        assert_eq!(r, vec![p(0), p(1)]);
    }

    #[test]
    fn duplicate_edges_and_roots_deduplicated() {
        let pat = RoutePattern::new()
            .root(h(0))
            .root(h(0))
            .edge(h(0), h(1))
            .edge(h(0), h(1));
        // Deduplicated already in the pattern itself...
        assert_eq!(pat.roots.len(), 1);
        assert_eq!(pat.edges.len(), 1);
        // ...and (defensively) in the runtime state built from it.
        let s = RouteState::new(&pat, |hid| p(hid.0));
        assert_eq!(s.root_succ.len(), 1);
        assert_eq!(s.verts[0].succ.len(), 1);
    }

    #[test]
    fn try_from_names_reports_unknown_name() {
        use crate::error::SamoaError;
        use crate::stack::StackBuilder;

        let mut b = StackBuilder::new();
        let pr = b.protocol("P");
        let e = b.event("E");
        b.bind(e, pr, "known", |_, _| Ok(()));
        let stack = b.build();

        let ok = RoutePattern::try_from_names(&stack, &["known"], &[("known", "known")]);
        assert!(ok.is_ok());

        let err = RoutePattern::try_from_names(&stack, &["known"], &[("known", "ghost")]);
        assert_eq!(
            err.unwrap_err(),
            SamoaError::UnknownHandlerName {
                name: "ghost".to_string()
            }
        );
    }
}
