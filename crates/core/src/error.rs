//! Error types for the SAMOA runtime.
//!
//! The paper's J-SAMOA throws runtime exceptions in the thread that called
//! `isolated` when a computation violates its declaration (calling a handler
//! of an undeclared microprotocol, exhausting a declared visit bound, or
//! calling outside the declared routing pattern). We surface the same
//! conditions as values of [`SamoaError`].

use std::fmt;

use crate::event::EventType;
use crate::handler::HandlerId;
use crate::protocol::ProtocolId;

/// Identifier of a dynamic computation instance (spawn order, starting at 1).
pub type CompId = u64;

/// Everything that can go wrong while executing a SAMOA computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SamoaError {
    /// A computation tried to call a handler of a microprotocol that was not
    /// declared in its `isolated M e` collection `M` (paper §4).
    UndeclaredProtocol {
        /// The offending computation.
        comp: CompId,
        /// The microprotocol that was not declared.
        protocol: ProtocolId,
    },
    /// Under `isolated bound`, the computation visited a microprotocol more
    /// times than the declared least upper bound (paper §4, §5.2).
    BoundExhausted {
        /// The offending computation.
        comp: CompId,
        /// The microprotocol whose visit budget is exhausted.
        protocol: ProtocolId,
        /// The declared least upper bound.
        bound: u64,
    },
    /// Under `isolated route`, a handler tried to call another handler with
    /// no declared route between them (paper §4, §5.3).
    NoRoute {
        /// The offending computation.
        comp: CompId,
        /// The calling handler; `None` means the call came directly from the
        /// `isolated` closure body (the virtual root).
        from: Option<HandlerId>,
        /// The handler that was called.
        to: HandlerId,
    },
    /// Under `isolated route`, the target handler is not a vertex of the
    /// declared routing pattern at all.
    NotInPattern {
        /// The offending computation.
        comp: CompId,
        /// The handler missing from the pattern.
        handler: HandlerId,
    },
    /// A computation that declared a microprotocol read-only tried to call
    /// one of its read-write handlers (paper §7 isolation levels).
    ReadModeViolation {
        /// The offending computation.
        comp: CompId,
        /// The microprotocol declared read-only.
        protocol: ProtocolId,
        /// The read-write handler that was called.
        handler: HandlerId,
    },
    /// `trigger` was used on an event type with no bound handler.
    NoHandler {
        /// The event type with no binding.
        event: EventType,
    },
    /// `trigger` (singular) was used on an event type bound to more than one
    /// handler; the paper's `trigger` calls *a (single) handler*, use
    /// `trigger_all` for one-to-many events.
    MultipleHandlers {
        /// The ambiguous event type.
        event: EventType,
        /// How many handlers are bound to it.
        count: usize,
    },
    /// An event payload had a different type than the handler expected.
    WrongPayloadType {
        /// The event whose payload failed to downcast.
        event: EventType,
        /// The type the handler asked for.
        expected: &'static str,
    },
    /// A handler panicked; the panic was caught so that version accounting
    /// stays consistent, and is reported as an error instead.
    HandlerPanic {
        /// The handler that panicked.
        handler: HandlerId,
        /// The panic payload rendered as a string, when available.
        message: String,
    },
    /// A duplicate protocol, event or handler name was registered.
    DuplicateName {
        /// The offending name.
        name: String,
    },
    /// A handler name used in a declaration (e.g.
    /// [`RoutePattern::try_from_names`](crate::graph::RoutePattern::try_from_names))
    /// is not registered on the stack.
    UnknownHandlerName {
        /// The name that failed to resolve.
        name: String,
    },
    /// Static analysis ([`crate::analysis`]) found Error-level diagnostics
    /// and the runtime was asked to reject them
    /// ([`RuntimeConfig::strict_analysis`](crate::runtime::RuntimeConfig::strict_analysis)).
    AnalysisFailed {
        /// The rendered diagnostic report.
        report: String,
    },
    /// An error raised explicitly by user protocol code.
    Protocol {
        /// Human-readable description supplied by the protocol.
        message: String,
    },
}

impl SamoaError {
    /// Construct a [`SamoaError::Protocol`] from anything displayable.
    pub fn protocol(msg: impl fmt::Display) -> Self {
        SamoaError::Protocol {
            message: msg.to_string(),
        }
    }
}

impl fmt::Display for SamoaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamoaError::UndeclaredProtocol { comp, protocol } => write!(
                f,
                "computation {comp} called a handler of undeclared microprotocol {protocol:?}"
            ),
            SamoaError::BoundExhausted {
                comp,
                protocol,
                bound,
            } => write!(
                f,
                "computation {comp} exceeded its visit bound {bound} for microprotocol {protocol:?}"
            ),
            SamoaError::NoRoute { comp, from, to } => match from {
                Some(h) => write!(
                    f,
                    "computation {comp}: no route from handler {h:?} to handler {to:?}"
                ),
                None => write!(
                    f,
                    "computation {comp}: handler {to:?} is not a declared root of the routing pattern"
                ),
            },
            SamoaError::NotInPattern { comp, handler } => write!(
                f,
                "computation {comp}: handler {handler:?} is not a vertex of the routing pattern"
            ),
            SamoaError::ReadModeViolation {
                comp,
                protocol,
                handler,
            } => write!(
                f,
                "computation {comp} declared {protocol:?} read-only but called read-write handler {handler:?}"
            ),
            SamoaError::NoHandler { event } => {
                write!(f, "no handler bound to event type {event:?}")
            }
            SamoaError::MultipleHandlers { event, count } => write!(
                f,
                "trigger on event type {event:?} bound to {count} handlers; use trigger_all"
            ),
            SamoaError::WrongPayloadType { event, expected } => write!(
                f,
                "payload of event {event:?} is not of the expected type {expected}"
            ),
            SamoaError::HandlerPanic { handler, message } => {
                write!(f, "handler {handler:?} panicked: {message}")
            }
            SamoaError::DuplicateName { name } => {
                write!(f, "duplicate registration of name {name:?}")
            }
            SamoaError::UnknownHandlerName { name } => {
                write!(f, "no handler named {name:?} in the stack")
            }
            SamoaError::AnalysisFailed { report } => {
                write!(f, "static analysis rejected the program:\n{report}")
            }
            SamoaError::Protocol { message } => write!(f, "protocol error: {message}"),
        }
    }
}

impl std::error::Error for SamoaError {}

/// Convenience result type used throughout the crate.
pub type Result<T> = std::result::Result<T, SamoaError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_computation_and_protocol() {
        let e = SamoaError::UndeclaredProtocol {
            comp: 7,
            protocol: ProtocolId(3),
        };
        let s = e.to_string();
        assert!(s.contains('7'), "{s}");
        assert!(s.contains("ProtocolId(3)"), "{s}");
    }

    #[test]
    fn display_bound_exhausted() {
        let e = SamoaError::BoundExhausted {
            comp: 1,
            protocol: ProtocolId(0),
            bound: 2,
        };
        assert!(e.to_string().contains("bound 2"));
    }

    #[test]
    fn display_no_route_from_root() {
        let e = SamoaError::NoRoute {
            comp: 1,
            from: None,
            to: HandlerId(4),
        };
        assert!(e.to_string().contains("root"));
    }

    #[test]
    fn protocol_error_roundtrip() {
        let e = SamoaError::protocol("view lost");
        assert_eq!(
            e,
            SamoaError::Protocol {
                message: "view lost".into()
            }
        );
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SamoaError::NoHandler {
            event: EventType(9),
        });
    }
}
