//! # samoa-core — the SAMOA microprotocol framework
//!
//! A Rust reproduction of *“SAMOA: Framework for Synchronisation Augmented
//! Microprotocol Approach”* (Wojciechowski, Rütti, Schiper; IPDPS 2004).
//!
//! Protocols are compositions of **microprotocols** — groups of event
//! handlers sharing local state — communicating through typed **events**.
//! External events spawn **computations**; the runtime's versioning
//! concurrency control guarantees the **isolation property**: the concurrent
//! execution of computations is equivalent to some serial execution of them,
//! without any programmer-written locks.
//!
//! ```
//! use samoa_core::prelude::*;
//!
//! // Build a stack: one microprotocol with one handler.
//! let mut b = StackBuilder::new();
//! let logger = b.protocol("Logger");
//! let log_ev = b.event("Log");
//! let lines = ProtocolState::new(logger, Vec::<String>::new());
//! {
//!     let lines = lines.clone();
//!     b.bind(log_ev, logger, "log", move |ctx, ev| {
//!         let msg: &String = ev.expect(log_ev)?;
//!         lines.with(ctx, |l| l.push(msg.clone()));
//!         Ok(())
//!     });
//! }
//! let rt = Runtime::new(b.build());
//!
//! // Each external event runs isolated, declaring what it may touch.
//! rt.isolated(&[logger], |ctx| ctx.trigger(log_ev, "hello".to_string()))
//!     .unwrap();
//! assert_eq!(lines.snapshot(), vec!["hello".to_string()]);
//! ```
//!
//! The three algorithms of the paper are selected per computation:
//! [`Runtime::isolated`] (VCAbasic), [`Runtime::isolated_bound`] (VCAbound),
//! and [`Runtime::isolated_route`] (VCAroute); [`Runtime::serial`] and
//! [`Runtime::unsync`] provide the Appia-style and Cactus-style baselines
//! the paper compares against, and [`Runtime::two_phase`] a classical
//! two-phase-locking comparator.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod computation;
pub mod ctx;
pub mod error;
pub mod event;
pub mod graph;
pub mod guide;
pub mod handler;
pub mod history;
pub mod metrics;
pub mod optimistic;
pub mod policy;
pub mod protocol;
pub mod runtime;
pub mod sched;
pub mod stack;
pub mod trace;
pub mod version;

pub use analysis::{Diagnostic, Report, Severity};
pub use ctx::Ctx;
pub use error::{CompId, Result, SamoaError};
pub use event::{EventData, EventType};
pub use graph::RoutePattern;
pub use handler::HandlerId;
pub use history::{check_serializable, Access, History, IsolationViolation, RunEntry};
pub use metrics::{
    instruments_touched, Counter, Gauge, Histogram, HistogramSummary, MetricsSnapshot, Registry,
};
pub use policy::{AccessMode, CellKind, Policy};
pub use protocol::{ProtocolId, ProtocolState};
pub use runtime::{CompHandle, Decl, Runtime, RuntimeConfig, RuntimeStats};
pub use sched::{ExternalChoice, ReleaseReason, SchedHook, SchedPoint, SchedResource};
pub use stack::{Stack, StackBuilder};
pub use trace::{
    chrome_trace, percentile_us, render_summary, Algo, ChromeTrace, ContentionProfile, TraceBuffer,
    TraceEvent, TraceKind, TraceSink, WaitEdge, WaitForGraph,
};

/// Everything most programs need.
pub mod prelude {
    pub use crate::ctx::Ctx;
    pub use crate::error::{Result, SamoaError};
    pub use crate::event::{EventData, EventType};
    pub use crate::graph::RoutePattern;
    pub use crate::handler::HandlerId;
    pub use crate::policy::{AccessMode, Policy};
    pub use crate::protocol::{ProtocolId, ProtocolState};
    pub use crate::runtime::{CompHandle, Decl, Runtime, RuntimeConfig, RuntimeStats};
    pub use crate::stack::{Stack, StackBuilder};
    pub use crate::trace::{ContentionProfile, TraceBuffer, TraceEvent, TraceKind, TraceSink};
}

/// Construct a raw [`HandlerId`] — for doctests and examples that build
/// routing patterns without a stack. Real code gets handler ids from
/// [`StackBuilder::bind`].
#[doc(hidden)]
pub fn handler_id_for_tests(i: u32) -> HandlerId {
    HandlerId(i)
}

/// Construct a raw [`ProtocolId`] — for tests that exercise the
/// serializability checker without building a stack.
#[doc(hidden)]
pub fn protocol_id_for_tests(i: u32) -> ProtocolId {
    ProtocolId(i)
}
