//! Production-safe metrics: counters, gauges and histograms behind the same
//! one-branch zero-cost-when-uninstalled discipline as [`TraceSink`].
//!
//! A component that wants instrumentation holds an `Option<...>` bundle of
//! cloned instrument handles. With no [`Registry`] installed the bundle is
//! `None` and the hot path pays exactly one never-taken branch — no
//! allocation, no atomic, no lock. The process-global [`instruments_touched`]
//! counter (incremented on every instrument mutation, mirroring
//! [`events_emitted`]) lets a guard test *prove* that claim:
//! `crates/bench/tests/no_sink_guard.rs` runs a full workload with no
//! registry and asserts the counter stayed at zero.
//!
//! Instruments are name-addressed and get-or-create, so independent
//! components converge on the same instrument by naming convention
//! (`site{N}.{protocol}.{metric}` across a cluster). A [`MetricsSnapshot`]
//! is a point-in-time copy, sorted by name, renderable as JSON or text.
//!
//! [`TraceSink`]: crate::trace::TraceSink
//! [`events_emitted`]: crate::trace::events_emitted

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Process-global count of instrument mutations (`inc`/`add`/`set`/
/// `observe`) since process start. With no registry installed nowhere holds
/// an instrument handle, so a workload that leaves this unchanged has proven
/// its metrics hot path is branch-only.
pub fn instruments_touched() -> u64 {
    TOUCHED.load(Ordering::Relaxed)
}

static TOUCHED: AtomicU64 = AtomicU64::new(0);

/// A monotonically increasing counter. Cloning shares the underlying cell.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        TOUCHED.fetch_add(1, Ordering::Relaxed);
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge. Cloning shares the underlying cell.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: u64) {
        TOUCHED.fetch_add(1, Ordering::Relaxed);
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value-recording histogram (unit chosen by the caller; cluster
/// instruments record microseconds). Cloning shares the underlying samples.
#[derive(Clone)]
pub struct Histogram(Arc<Mutex<Vec<u64>>>);

impl Histogram {
    /// Record one sample.
    pub fn observe(&self, v: u64) {
        TOUCHED.fetch_add(1, Ordering::Relaxed);
        self.0.lock().unwrap().push(v);
    }

    /// Copy of the raw samples, in recording order.
    pub fn samples(&self) -> Vec<u64> {
        self.0.lock().unwrap().clone()
    }
}

enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Name-addressed instrument store. Get-or-create: asking twice for the same
/// name returns handles to the same underlying instrument.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Instrument>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    /// If `name` already names a gauge or histogram.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().unwrap();
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Counter(Counter(Arc::new(AtomicU64::new(0)))))
        {
            Instrument::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    /// If `name` already names a counter or histogram.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().unwrap();
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Gauge(Gauge(Arc::new(AtomicU64::new(0)))))
        {
            Instrument::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// The histogram named `name`, created on first use.
    ///
    /// # Panics
    /// If `name` already names a counter or gauge.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock().unwrap();
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Histogram(Histogram(Arc::new(Mutex::new(Vec::new())))))
        {
            Instrument::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Point-in-time copy of every instrument, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        let mut counters = BTreeMap::new();
        let mut gauges = BTreeMap::new();
        let mut histograms = BTreeMap::new();
        for (name, inst) in inner.iter() {
            match inst {
                Instrument::Counter(c) => {
                    counters.insert(name.clone(), c.get());
                }
                Instrument::Gauge(g) => {
                    gauges.insert(name.clone(), g.get());
                }
                Instrument::Histogram(h) => {
                    histograms.insert(name.clone(), HistogramSummary::from_samples(&h.samples()));
                }
            }
        }
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Summary statistics of one histogram at snapshot time. Percentiles use the
/// same nearest-rank rule as [`crate::trace::percentile_us`] but stay in the
/// histogram's own unit.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples recorded.
    pub count: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl HistogramSummary {
    fn from_samples(samples: &[u64]) -> HistogramSummary {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let pct = |q: f64| {
            if sorted.is_empty() {
                0.0
            } else {
                let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                sorted[rank - 1] as f64
            }
        };
        HistogramSummary {
            count: sorted.len() as u64,
            min: sorted.first().copied().unwrap_or(0),
            max: sorted.last().copied().unwrap_or(0),
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
        }
    }
}

/// Point-in-time copy of a [`Registry`], sorted by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// The snapshot as a JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {name: {count,
    /// min, max, p50, p95, p99}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        push_u64_map(&mut out, &self.counters);
        out.push_str("},\"gauges\":{");
        push_u64_map(&mut out, &self.gauges);
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{{\"count\":{},\"min\":{},\"max\":{},\"p50\":{:.1},\"p95\":{:.1},\"p99\":{:.1}}}",
                json_name(name),
                h.count,
                h.min,
                h.max,
                h.p50,
                h.p95,
                h.p99
            ));
        }
        out.push_str("}}");
        out
    }

    /// A plain-text rendering, one instrument per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("{name:<44} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("{name:<44} {v} (gauge)\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "{name:<44} n={} min={} p50={:.0} p95={:.0} p99={:.0} max={}\n",
                h.count, h.min, h.p50, h.p95, h.p99, h.max
            ));
        }
        out
    }
}

fn push_u64_map(out: &mut String, map: &BTreeMap<String, u64>) {
    for (i, (name, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{}", json_name(name), v));
    }
}

fn json_name(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_shares_state() {
        let r = Registry::new();
        r.counter("a").add(3);
        r.counter("a").inc();
        assert_eq!(r.counter("a").get(), 4);
        r.gauge("g").set(7);
        r.gauge("g").set(9);
        assert_eq!(r.gauge("g").get(), 9);
        r.histogram("h").observe(10);
        r.histogram("h").observe(20);
        assert_eq!(r.histogram("h").samples(), vec![10, 20]);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn touched_counts_mutations() {
        let before = instruments_touched();
        let r = Registry::new();
        let c = r.counter("t");
        c.inc();
        c.add(5);
        r.gauge("tg").set(1);
        r.histogram("th").observe(2);
        assert_eq!(instruments_touched() - before, 4);
        // Reads don't count.
        let _ = c.get();
        let _ = r.snapshot();
        assert_eq!(instruments_touched() - before, 4);
    }

    #[test]
    fn snapshot_sorted_and_summarised() {
        let r = Registry::new();
        r.counter("z.sent").add(2);
        r.counter("a.sent").add(1);
        let h = r.histogram("m.lat");
        for v in [5u64, 1, 9, 3, 7] {
            h.observe(v);
        }
        let s = r.snapshot();
        let names: Vec<&String> = s.counters.keys().collect();
        assert_eq!(names, vec!["a.sent", "z.sent"]);
        let hs = &s.histograms["m.lat"];
        assert_eq!((hs.count, hs.min, hs.max), (5, 1, 9));
        assert_eq!(hs.p50, 5.0);
        assert_eq!(hs.p99, 9.0);
    }

    #[test]
    fn json_parses_and_contains_everything() {
        let r = Registry::new();
        r.counter("c").inc();
        r.gauge("g").set(3);
        r.histogram("h").observe(4);
        let json = r.snapshot().to_json();
        let v = serde_json::from_str(&json).expect("snapshot JSON must parse");
        match v {
            serde_json::Value::Object(o) => {
                assert!(o.contains_key("counters"));
                assert!(o.contains_key("gauges"));
                assert!(o.contains_key("histograms"));
            }
            _ => panic!("snapshot JSON must be an object"),
        }
        assert!(json.contains("\"c\":1"));
        assert!(json.contains("\"g\":3"));
        assert!(json.contains("\"count\":1"));
    }

    #[test]
    fn render_lists_every_instrument() {
        let r = Registry::new();
        r.counter("sent").add(12);
        r.gauge("depth").set(2);
        r.histogram("lat").observe(100);
        let text = r.snapshot().render();
        assert!(text.contains("sent"));
        assert!(text.contains("depth"));
        assert!(text.contains("lat"));
    }
}
