//! Always-on structured tracing for the versioning runtime (`samoa-trace`).
//!
//! The check-only [`SchedHook`](crate::sched::SchedHook) serialises the
//! runtime into cooperative turn-taking — invaluable for exploration,
//! useless in production. This module is the *other* window: a lightweight
//! [`TraceSink`] that receives structured, timestamped [`TraceEvent`]s for
//! the full computation lifecycle and is cheap enough to stay attached
//! under load:
//!
//! * **external-event spawn** ([`TraceKind::Spawn`], with the algorithm the
//!   computation runs under),
//! * **Rule 2 admission waits** ([`TraceKind::WaitBegin`]/[`WaitEnd`]
//!   (TraceKind::WaitEnd), carrying the identity of the *blocking*
//!   computation and microprotocol),
//! * **handler execution** ([`TraceKind::HandlerEnter`]/[`HandlerExit`]
//!   (TraceKind::HandlerExit), with service time),
//! * **Rule 4 early releases** ([`TraceKind::EarlyRelease`], bound-visit vs.
//!   route-unreachable),
//! * **Rule 3 completion** ([`TraceKind::Complete`]), and
//! * the **OCC path** of [`crate::optimistic`]
//!   ([`TraceKind::OccValidate`]/[`OccCommit`](TraceKind::OccCommit)/
//!   [`OccAbort`](TraceKind::OccAbort)).
//!
//! ## Cost model
//!
//! A runtime built without a sink ([`Runtime::new`](crate::Runtime::new),
//! [`Runtime::with_config`](crate::Runtime::with_config)) carries
//! `trace: None`, and **every instrumentation site is a single
//! well-predicted branch**: event construction — including the
//! `Instant::now()` timestamp — happens inside the `if let Some(..)`, so
//! the no-sink hot path does no clock reads, no allocation, and no atomic
//! traffic. The `no_sink_guard` test in `crates/bench` asserts this by
//! checking the process-global [`events_emitted`] counter stays flat across
//! an untraced workload.
//!
//! With a sink attached, the shipped [`TraceBuffer`] keeps the hot path
//! short: events are appended to small sharded ring buffers (one shard per
//! OS thread, by thread-id hash, so cross-thread contention is negligible)
//! and full buffers are flushed as batches through an [`std::sync::mpsc`]
//! channel to the collector, where [`TraceBuffer::drain`] reassembles the
//! globally time-ordered stream.
//!
//! ## On top of the stream
//!
//! * [`ContentionProfile`] — per-microprotocol contention profiles:
//!   admission-wait latency histograms (p50/p95/p99), handler service
//!   times, early-release counts, plus a per-algorithm rollup.
//! * [`Runtime::waiters`](crate::Runtime::waiters) — a live wait-for-graph
//!   snapshot ([`WaitForGraph`]) naming who blocks whom, for
//!   stall/deadlock diagnosis.
//! * [`chrome_trace`] / [`ChromeTrace`] — Chrome `trace_event` JSON,
//!   loadable in `chrome://tracing` or <https://ui.perfetto.dev>, one
//!   track per computation.
//! * [`render_summary`] — a human-readable text digest.
//!
//! See guide §8 ("Observing a stack") for a worked example.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::error::CompId;
use crate::handler::HandlerId;
use crate::protocol::ProtocolId;
use crate::sched::ReleaseReason;
use crate::stack::Stack;

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// The concurrency-control algorithm a computation was declared under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algo {
    /// No admission control (Cactus-style baseline).
    Unsync,
    /// VCAbasic (`isolated M e`, including read/write-mode declarations).
    Basic,
    /// VCAbound (`isolated bound M e`).
    Bound,
    /// VCAroute (`isolated route M e`).
    Route,
    /// Appia-style serial (VCAbasic over every microprotocol).
    Serial,
    /// Conservative two-phase locking (comparator).
    TwoPhase,
}

impl Algo {
    /// Short display label (`vca-basic`, `vca-route`, …).
    pub fn label(self) -> &'static str {
        match self {
            Algo::Unsync => "unsync",
            Algo::Basic => "vca-basic",
            Algo::Bound => "vca-bound",
            Algo::Route => "vca-route",
            Algo::Serial => "serial",
            Algo::TwoPhase => "two-phase",
        }
    }
}

/// One structured trace event: a timestamp (nanoseconds since the runtime's
/// construction) plus what happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the owning runtime's epoch (its construction).
    pub t_ns: u64,
    /// What happened.
    pub kind: TraceKind,
}

/// The lifecycle points a [`TraceSink`] observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Rule 1 ran: an external event spawned computation `comp` under
    /// algorithm `algo`.
    Spawn {
        /// The new computation.
        comp: CompId,
        /// The concurrency-control algorithm it was declared under.
        algo: Algo,
    },
    /// Rule 2: `comp` found its admission predicate false for a handler of
    /// `protocol` and is about to block.
    WaitBegin {
        /// The blocked computation.
        comp: CompId,
        /// The microprotocol whose admission is awaited.
        protocol: ProtocolId,
        /// The oldest still-active predecessor holding `protocol` — the
        /// computation whose release this wait is for. `None` for 2PL lock
        /// waits (the lock table does not track owners) and for races where
        /// the holder released between the check and the snapshot.
        blocker: Option<CompId>,
    },
    /// Rule 2: the matching wait ended; `comp` was admitted.
    WaitEnd {
        /// The previously blocked computation.
        comp: CompId,
        /// The microprotocol that was awaited.
        protocol: ProtocolId,
        /// How long the wait lasted.
        wait_ns: u64,
        /// The blocker reported by the matching [`TraceKind::WaitBegin`].
        blocker: Option<CompId>,
    },
    /// A handler was admitted and is about to execute.
    HandlerEnter {
        /// The executing computation.
        comp: CompId,
        /// The handler.
        handler: HandlerId,
        /// The handler's microprotocol.
        protocol: ProtocolId,
    },
    /// The handler function returned.
    HandlerExit {
        /// The executing computation.
        comp: CompId,
        /// The handler.
        handler: HandlerId,
        /// The handler's microprotocol.
        protocol: ProtocolId,
        /// Service time of this call (enter → exit).
        service_ns: u64,
    },
    /// Rule 4: `comp` released `protocol` to successors before completing.
    EarlyRelease {
        /// The releasing computation.
        comp: CompId,
        /// The released microprotocol.
        protocol: ProtocolId,
        /// Bound-visit (VCAbound) or route-unreachable (VCAroute).
        reason: ReleaseReason,
    },
    /// Rule 3: `comp` completed and released everything it still held.
    Complete {
        /// The completed computation.
        comp: CompId,
    },
    /// OCC: transaction `tx` finished an attempt and is validating its
    /// read set (`cells` cells touched).
    OccValidate {
        /// The optimistic transaction (1-based, per `OccRuntime`).
        tx: u64,
        /// Distinct cells in the read/write set.
        cells: u64,
    },
    /// OCC: transaction `tx` validated and committed.
    OccCommit {
        /// The optimistic transaction.
        tx: u64,
        /// Aborted attempts that preceded this commit.
        retries: u64,
    },
    /// OCC: validation failed; attempt `attempt` was rolled back and the
    /// transaction will retry.
    OccAbort {
        /// The optimistic transaction.
        tx: u64,
        /// The 1-based number of the aborted attempt.
        attempt: u64,
    },
    /// Cluster: a client operation — the root of a causal tree — was
    /// submitted at `site`. `(site, op)` is the operation's cluster-wide
    /// identity; every event below that shares the pair is causally
    /// downstream of this one.
    ClientSubmit {
        /// The originating site.
        site: u16,
        /// The per-site operation id (the abcast uid sequence).
        op: u64,
    },
    /// Cluster: a wire message carrying causal context for `(origin, op)`
    /// left `from` towards `to`.
    CtxSend {
        /// The sending site.
        from: u16,
        /// The destination site.
        to: u16,
        /// The site that originated the operation.
        origin: u16,
        /// The operation id at the origin.
        op: u64,
        /// Causal hop count (0 = first transmission from the origin).
        hop: u8,
    },
    /// Cluster: a wire message carrying causal context for `(origin, op)`
    /// arrived at `site`.
    CtxRecv {
        /// The receiving site.
        site: u16,
        /// The site that originated the operation.
        origin: u16,
        /// The operation id at the origin.
        op: u64,
        /// Causal hop count observed on the wire.
        hop: u8,
    },
    /// Cluster: abcast delivered `(origin, op)` at `site` in total order.
    AbDeliver {
        /// The delivering site.
        site: u16,
        /// The site that originated the operation.
        origin: u16,
        /// The operation id at the origin.
        op: u64,
        /// Submit-to-delivery lag as observed at the origin site (0 at
        /// non-origin sites, which never saw the submit).
        lag_ns: u64,
    },
    /// Cluster: the replicated KV state machine applied `(origin, op)` at
    /// `site` — the leaf of the operation's causal tree on that site.
    KvApply {
        /// The applying site.
        site: u16,
        /// The site that originated the operation.
        origin: u16,
        /// The operation id at the origin.
        op: u64,
    },
    /// Cluster: RelComm retransmitted a pending message to `to`.
    Retransmit {
        /// The retransmitting site.
        site: u16,
        /// The peer being retransmitted to.
        to: u16,
        /// Retransmission attempts so far for this message (1-based).
        attempts: u32,
    },
    /// Cluster: `site` installed membership view `view_id`.
    ClusterViewChange {
        /// The site installing the view.
        site: u16,
        /// The new view number.
        view_id: u64,
        /// Members in the new view.
        members: u32,
    },
}

impl TraceKind {
    /// The computation this event belongs to, if any (OCC events belong to
    /// transactions instead).
    pub fn comp(&self) -> Option<CompId> {
        match *self {
            TraceKind::Spawn { comp, .. }
            | TraceKind::WaitBegin { comp, .. }
            | TraceKind::WaitEnd { comp, .. }
            | TraceKind::HandlerEnter { comp, .. }
            | TraceKind::HandlerExit { comp, .. }
            | TraceKind::EarlyRelease { comp, .. }
            | TraceKind::Complete { comp } => Some(comp),
            TraceKind::OccValidate { .. }
            | TraceKind::OccCommit { .. }
            | TraceKind::OccAbort { .. }
            | TraceKind::ClientSubmit { .. }
            | TraceKind::CtxSend { .. }
            | TraceKind::CtxRecv { .. }
            | TraceKind::AbDeliver { .. }
            | TraceKind::KvApply { .. }
            | TraceKind::Retransmit { .. }
            | TraceKind::ClusterViewChange { .. } => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Sink
// ---------------------------------------------------------------------------

/// Receiver of structured trace events.
///
/// Distinct from [`SchedHook`](crate::sched::SchedHook): a sink only
/// *observes* — it must never block the calling thread on runtime state, and
/// it should return quickly (the shipped [`TraceBuffer`] appends to a
/// sharded buffer and occasionally flushes a batch through a channel).
/// Implementations must be `Send + Sync`; events arrive concurrently from
/// runtime worker threads.
pub trait TraceSink: Send + Sync {
    /// An event occurred. Timestamps are nanoseconds since the owning
    /// runtime's construction and are monotone per emitting thread.
    fn event(&self, ev: TraceEvent);
}

/// Process-global count of trace events ever emitted (any runtime, any
/// sink). Instrumentation sites increment it *inside* the sink branch, so a
/// workload on an untraced runtime leaves it untouched — the
/// `no_sink_guard` test in `crates/bench` pins the one-branch cost model to
/// this counter.
pub fn events_emitted() -> u64 {
    EMITTED.load(Ordering::Relaxed)
}

static EMITTED: AtomicU64 = AtomicU64::new(0);

/// Hand `kind` to `sink`, stamped relative to `epoch`.
pub(crate) fn deliver(sink: &Arc<dyn TraceSink>, epoch: Instant, kind: TraceKind) {
    let t_ns = epoch.elapsed().as_nanos() as u64;
    deliver_at(sink, t_ns, kind);
}

/// [`deliver`] with an already-taken timestamp.
pub(crate) fn deliver_at(sink: &Arc<dyn TraceSink>, t_ns: u64, kind: TraceKind) {
    EMITTED.fetch_add(1, Ordering::Relaxed);
    sink.event(TraceEvent { t_ns, kind });
}

/// Emit `kind` into `sink`, stamped relative to `epoch` — the public face of
/// the runtime's internal emission path, for instrumentation that lives
/// *outside* `samoa-core` (the cluster layer's causal-context events).
/// Counts against [`events_emitted`] like every other emission, so the
/// `no_sink_guard` cost-model proof covers external emitters too: callers
/// must hold the sink as an `Option` and only reach this inside the branch.
pub fn emit(sink: &Arc<dyn TraceSink>, epoch: Instant, kind: TraceKind) {
    deliver(sink, epoch, kind);
}

// ---------------------------------------------------------------------------
// TraceBuffer — the shipped production sink
// ---------------------------------------------------------------------------

/// The default production sink: per-thread ring buffers flushed through an
/// [`std::sync::mpsc`] channel.
///
/// Each OS thread appends to its own shard (chosen by thread-id hash), so
/// the common case is an uncontended lock and a `Vec::push`. When a shard
/// reaches capacity its contents are sent as one batch to the collector
/// side, which [`TraceBuffer::drain`] empties — together with the still
/// partial shards — into a single stream sorted by timestamp.
pub struct TraceBuffer {
    shards: Box<[Mutex<Vec<TraceEvent>>]>,
    shard_cap: usize,
    tx: mpsc::Sender<Vec<TraceEvent>>,
    rx: Mutex<mpsc::Receiver<Vec<TraceEvent>>>,
}

impl TraceBuffer {
    /// A buffer with default sharding (16 shards × 1024 events).
    pub fn new() -> Arc<TraceBuffer> {
        TraceBuffer::with_capacity(16, 1024)
    }

    /// A buffer with `shards` ring buffers of `shard_cap` events each.
    pub fn with_capacity(shards: usize, shard_cap: usize) -> Arc<TraceBuffer> {
        let (tx, rx) = mpsc::channel();
        Arc::new(TraceBuffer {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(Vec::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            shard_cap: shard_cap.max(1),
            tx,
            rx: Mutex::new(rx),
        })
    }

    /// Flush every shard and drain all batches into one stream, sorted by
    /// timestamp. Per-thread event order is preserved (the sort is stable
    /// and a thread's batches arrive in emission order).
    ///
    /// Call after [`Runtime::quiesce`](crate::Runtime::quiesce) for a
    /// complete trace; draining mid-run yields a consistent prefix per
    /// thread but may miss in-flight events.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let rx = self.rx.lock();
        let mut out: Vec<TraceEvent> = Vec::new();
        for batch in rx.try_iter() {
            out.extend(batch);
        }
        for shard in self.shards.iter() {
            out.extend(std::mem::take(&mut *shard.lock()));
        }
        out.sort_by_key(|e| e.t_ns);
        out
    }
}

impl TraceSink for TraceBuffer {
    fn event(&self, ev: TraceEvent) {
        let idx = thread_shard(self.shards.len());
        let mut buf = self.shards[idx].lock();
        buf.push(ev);
        if buf.len() >= self.shard_cap {
            let batch = std::mem::take(&mut *buf);
            drop(buf);
            // A send can only fail if the receiver half is gone, which
            // cannot happen while `self` is alive.
            let _ = self.tx.send(batch);
        }
    }
}

impl std::fmt::Debug for TraceBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBuffer")
            .field("shards", &self.shards.len())
            .field("shard_cap", &self.shard_cap)
            .finish()
    }
}

/// This thread's shard index: thread-id hash, cached per thread.
fn thread_shard(n: usize) -> usize {
    use std::cell::Cell;
    use std::hash::{Hash, Hasher};
    thread_local! {
        static SHARD_HASH: Cell<u64> = const { Cell::new(u64::MAX) };
    }
    let h = SHARD_HASH.with(|c| {
        let mut v = c.get();
        if v == u64::MAX {
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            std::thread::current().id().hash(&mut hasher);
            v = hasher.finish() & (u64::MAX >> 1); // reserve the sentinel
            c.set(v);
        }
        v
    });
    (h % n as u64) as usize
}

// ---------------------------------------------------------------------------
// Runtime-side control block: timestamps + wait-for registry
// ---------------------------------------------------------------------------

/// One edge of the wait-for graph: `waiter` is blocked in admission on
/// `protocol`, waiting for `blocker` to release it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitEdge {
    /// The blocked computation.
    pub waiter: CompId,
    /// The microprotocol whose admission is awaited.
    pub protocol: ProtocolId,
    /// The oldest still-active predecessor holding the microprotocol
    /// (`None` for 2PL lock waits).
    pub blocker: Option<CompId>,
}

/// A point-in-time snapshot of who blocks whom
/// ([`Runtime::waiters`](crate::Runtime::waiters)).
#[derive(Debug, Clone, Default)]
pub struct WaitForGraph {
    /// The blocked-on edges at snapshot time.
    pub edges: Vec<WaitEdge>,
}

impl WaitForGraph {
    /// No computation is blocked.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Does the waiter → blocker relation contain a cycle? Versioning waits
    /// always point from younger to strictly older computations, so a cycle
    /// here means the runtime's deadlock-freedom argument has been violated
    /// (or the snapshot mixes runtimes) — surface it loudly.
    pub fn has_cycle(&self) -> bool {
        let mut succ: HashMap<CompId, Vec<CompId>> = HashMap::new();
        for e in &self.edges {
            if let Some(b) = e.blocker {
                succ.entry(e.waiter).or_default().push(b);
            }
        }
        // Iterative DFS with tri-state marks.
        let mut state: HashMap<CompId, u8> = HashMap::new(); // 1 = open, 2 = done
        for &start in succ.keys() {
            if state.contains_key(&start) {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            state.insert(start, 1);
            while let Some(&mut (node, ref mut i)) = stack.last_mut() {
                let next = succ.get(&node).and_then(|s| s.get(*i)).copied();
                *i += 1;
                match next {
                    Some(n) => match state.get(&n) {
                        Some(1) => return true,
                        Some(_) => {}
                        None => {
                            state.insert(n, 1);
                            stack.push((n, 0));
                        }
                    },
                    None => {
                        state.insert(node, 2);
                        stack.pop();
                    }
                }
            }
        }
        false
    }

    /// Human-readable rendering with microprotocol names, one edge per
    /// line: `k4 waits on RelComm held by k2`.
    pub fn render(&self, stack: &Stack) -> String {
        if self.edges.is_empty() {
            return "no computation is blocked\n".to_string();
        }
        let mut out = String::new();
        for e in &self.edges {
            match e.blocker {
                Some(b) => out.push_str(&format!(
                    "k{} waits on {} held by k{}\n",
                    e.waiter,
                    stack.protocol_name(e.protocol),
                    b
                )),
                None => out.push_str(&format!(
                    "k{} waits on {} (2PL lock)\n",
                    e.waiter,
                    stack.protocol_name(e.protocol)
                )),
            }
        }
        out
    }
}

/// Runtime-held trace state: the sink, the timestamp epoch, and the
/// wait-for registry behind [`Runtime::waiters`](crate::Runtime::waiters).
/// Present only when a sink is attached; the untraced runtime carries
/// `None` and pays one branch per instrumentation site.
pub(crate) struct TraceCtl {
    sink: Arc<dyn TraceSink>,
    epoch: Instant,
    reg: Mutex<WaitRegistry>,
}

#[derive(Default)]
struct WaitRegistry {
    /// Per protocol index: private version → holding computation, for every
    /// still-active writer declaration. The blocker of a wait is the
    /// holder with the smallest `pv` still ahead of `lv`.
    holders: Vec<BTreeMap<u64, CompId>>,
    /// Reverse index for O(1) removal at completion.
    by_comp: HashMap<CompId, Vec<(usize, u64)>>,
    /// Live waits (the wait-for edges).
    waits: Vec<WaitEdge>,
}

impl TraceCtl {
    pub(crate) fn new(sink: Arc<dyn TraceSink>, protocol_count: usize) -> TraceCtl {
        TraceCtl {
            sink,
            epoch: Instant::now(),
            reg: Mutex::new(WaitRegistry {
                holders: (0..protocol_count).map(|_| BTreeMap::new()).collect(),
                by_comp: HashMap::new(),
                waits: Vec::new(),
            }),
        }
    }

    /// Nanoseconds since this runtime's construction.
    pub(crate) fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Emit `kind` stamped now.
    pub(crate) fn emit(&self, kind: TraceKind) {
        deliver(&self.sink, self.epoch, kind);
    }

    /// Emit `kind` with an already-taken timestamp.
    pub(crate) fn emit_at(&self, t_ns: u64, kind: TraceKind) {
        deliver_at(&self.sink, t_ns, kind);
    }

    /// Rule 1 ran: register `comp`'s writer holds.
    pub(crate) fn on_spawn(&self, comp: CompId, holds: impl Iterator<Item = (usize, u64)>) {
        let mut reg = self.reg.lock();
        let mut mine = Vec::new();
        for (idx, pv) in holds {
            reg.holders[idx].insert(pv, comp);
            mine.push((idx, pv));
        }
        if !mine.is_empty() {
            reg.by_comp.insert(comp, mine);
        }
    }

    /// `comp` is about to block on protocol `idx` with private version
    /// `my_pv` while `lv` is the current local version: record the wait
    /// edge and return the blocker — the oldest still-active predecessor.
    pub(crate) fn wait_begin(
        &self,
        comp: CompId,
        idx: usize,
        my_pv: u64,
        lv: u64,
    ) -> Option<CompId> {
        let mut reg = self.reg.lock();
        let blocker = reg.holders[idx]
            .range(lv + 1..my_pv)
            .map(|(_, &c)| c)
            .find(|&c| c != comp);
        reg.waits.push(WaitEdge {
            waiter: comp,
            protocol: ProtocolId(idx as u32),
            blocker,
        });
        blocker
    }

    /// 2PL variant of [`TraceCtl::wait_begin`]: the lock table tracks no
    /// owner, so the edge has no blocker.
    pub(crate) fn lock_wait_begin(&self, comp: CompId, idx: usize) {
        self.reg.lock().waits.push(WaitEdge {
            waiter: comp,
            protocol: ProtocolId(idx as u32),
            blocker: None,
        });
    }

    /// The wait of `comp` on protocol `idx` ended; drop its edge.
    pub(crate) fn wait_end(&self, comp: CompId, idx: usize) {
        let mut reg = self.reg.lock();
        if let Some(pos) = reg
            .waits
            .iter()
            .position(|e| e.waiter == comp && e.protocol.index() == idx)
        {
            reg.waits.swap_remove(pos);
        }
    }

    /// `comp` released protocol `idx` ahead of completion (VCAroute): its
    /// hold no longer blocks anyone.
    pub(crate) fn on_release(&self, comp: CompId, idx: usize) {
        let mut reg = self.reg.lock();
        if let Some(mine) = reg.by_comp.get_mut(&comp) {
            let mut released = Vec::new();
            mine.retain(|&(i, pv)| {
                if i == idx {
                    released.push(pv);
                    false
                } else {
                    true
                }
            });
            for pv in released {
                reg.holders[idx].remove(&pv);
            }
        }
    }

    /// Rule 3 ran: `comp` holds nothing any more.
    pub(crate) fn on_complete(&self, comp: CompId) {
        let mut reg = self.reg.lock();
        if let Some(mine) = reg.by_comp.remove(&comp) {
            for (idx, pv) in mine {
                reg.holders[idx].remove(&pv);
            }
        }
    }

    /// Snapshot the live wait edges.
    pub(crate) fn snapshot_waits(&self) -> Vec<WaitEdge> {
        self.reg.lock().waits.clone()
    }
}

impl std::fmt::Debug for TraceCtl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCtl").finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Contention profiles
// ---------------------------------------------------------------------------

/// Per-microprotocol contention statistics aggregated from a trace stream.
#[derive(Debug, Clone)]
pub struct ProtocolProfile {
    /// The microprotocol.
    pub protocol: ProtocolId,
    /// Its name in the stack.
    pub name: String,
    /// Admission waits that actually blocked.
    pub waits: u64,
    /// Summed blocked time (across threads; can exceed wall clock).
    pub wait_total: Duration,
    /// Admission-wait latency percentiles, in microseconds.
    pub wait_p50_us: f64,
    /// 95th percentile admission wait (µs).
    pub wait_p95_us: f64,
    /// 99th percentile admission wait (µs).
    pub wait_p99_us: f64,
    /// Worst observed admission wait (µs).
    pub wait_max_us: f64,
    /// Handler calls executed on this microprotocol.
    pub handler_calls: u64,
    /// Handler service-time percentiles, in microseconds.
    pub service_p50_us: f64,
    /// 95th percentile handler service time (µs).
    pub service_p95_us: f64,
    /// 99th percentile handler service time (µs).
    pub service_p99_us: f64,
    /// Rule 4 bound-visit releases observed on this microprotocol.
    pub bound_releases: u64,
    /// Rule 4 route-unreachable releases observed on this microprotocol.
    pub route_releases: u64,
}

/// Per-algorithm rollup of the same stream: how much each declaration style
/// paid in admission waits.
#[derive(Debug, Clone)]
pub struct AlgoProfile {
    /// The algorithm.
    pub algo: Algo,
    /// Computations spawned under it.
    pub computations: u64,
    /// Admission waits its computations suffered.
    pub waits: u64,
    /// Their summed blocked time.
    pub wait_total: Duration,
    /// Median admission wait (µs).
    pub wait_p50_us: f64,
    /// 95th percentile admission wait (µs).
    pub wait_p95_us: f64,
    /// 99th percentile admission wait (µs).
    pub wait_p99_us: f64,
    /// Rule 4 early releases its computations performed.
    pub early_releases: u64,
}

/// The aggregate view over a drained trace stream: where concurrency was
/// won or lost, per microprotocol and per algorithm.
#[derive(Debug, Clone, Default)]
pub struct ContentionProfile {
    /// One entry per microprotocol of the stack, in stack order.
    pub protocols: Vec<ProtocolProfile>,
    /// One entry per algorithm that spawned at least one computation.
    pub algos: Vec<AlgoProfile>,
}

impl ContentionProfile {
    /// Aggregate a drained stream against the stack it was recorded on.
    pub fn from_events(events: &[TraceEvent], stack: &Stack) -> ContentionProfile {
        let n = stack.protocol_count();
        let mut waits: Vec<Vec<u64>> = vec![Vec::new(); n];
        let mut services: Vec<Vec<u64>> = vec![Vec::new(); n];
        let mut bound_rel = vec![0u64; n];
        let mut route_rel = vec![0u64; n];
        let mut algo_of: HashMap<CompId, Algo> = HashMap::new();
        let mut algo_waits: HashMap<Algo, Vec<u64>> = HashMap::new();
        let mut algo_comps: HashMap<Algo, u64> = HashMap::new();
        let mut algo_releases: HashMap<Algo, u64> = HashMap::new();

        for ev in events {
            match ev.kind {
                TraceKind::Spawn { comp, algo } => {
                    algo_of.insert(comp, algo);
                    *algo_comps.entry(algo).or_default() += 1;
                }
                TraceKind::WaitEnd {
                    comp,
                    protocol,
                    wait_ns,
                    ..
                } => {
                    if let Some(w) = waits.get_mut(protocol.index()) {
                        w.push(wait_ns);
                    }
                    if let Some(&a) = algo_of.get(&comp) {
                        algo_waits.entry(a).or_default().push(wait_ns);
                    }
                }
                TraceKind::HandlerExit {
                    protocol,
                    service_ns,
                    ..
                } => {
                    if let Some(s) = services.get_mut(protocol.index()) {
                        s.push(service_ns);
                    }
                }
                TraceKind::EarlyRelease {
                    comp,
                    protocol,
                    reason,
                } => {
                    match reason {
                        ReleaseReason::BoundVisit => bound_rel[protocol.index()] += 1,
                        ReleaseReason::RouteUnreachable => route_rel[protocol.index()] += 1,
                    }
                    if let Some(&a) = algo_of.get(&comp) {
                        *algo_releases.entry(a).or_default() += 1;
                    }
                }
                _ => {}
            }
        }

        let protocols = (0..n)
            .map(|i| {
                waits[i].sort_unstable();
                services[i].sort_unstable();
                let w = &waits[i];
                let s = &services[i];
                ProtocolProfile {
                    protocol: ProtocolId(i as u32),
                    name: stack.protocol_name(ProtocolId(i as u32)).to_string(),
                    waits: w.len() as u64,
                    wait_total: Duration::from_nanos(w.iter().sum()),
                    wait_p50_us: percentile_us(w, 0.50),
                    wait_p95_us: percentile_us(w, 0.95),
                    wait_p99_us: percentile_us(w, 0.99),
                    wait_max_us: w.last().map_or(0.0, |&v| v as f64 / 1e3),
                    handler_calls: s.len() as u64,
                    service_p50_us: percentile_us(s, 0.50),
                    service_p95_us: percentile_us(s, 0.95),
                    service_p99_us: percentile_us(s, 0.99),
                    bound_releases: bound_rel[i],
                    route_releases: route_rel[i],
                }
            })
            .collect();

        let mut algos: Vec<AlgoProfile> = algo_comps
            .iter()
            .map(|(&algo, &computations)| {
                let mut w = algo_waits.remove(&algo).unwrap_or_default();
                w.sort_unstable();
                AlgoProfile {
                    algo,
                    computations,
                    waits: w.len() as u64,
                    wait_total: Duration::from_nanos(w.iter().sum()),
                    wait_p50_us: percentile_us(&w, 0.50),
                    wait_p95_us: percentile_us(&w, 0.95),
                    wait_p99_us: percentile_us(&w, 0.99),
                    early_releases: algo_releases.get(&algo).copied().unwrap_or(0),
                }
            })
            .collect();
        algos.sort_by_key(|a| a.algo.label());

        ContentionProfile { protocols, algos }
    }

    /// The profile of the microprotocol named `name`, if present.
    pub fn protocol(&self, name: &str) -> Option<&ProtocolProfile> {
        self.protocols.iter().find(|p| p.name == name)
    }

    /// Fixed-width text rendering: one row per microprotocol, then the
    /// per-algorithm rollup.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:>6} {:>10} {:>9} {:>9} {:>9} {:>7} {:>9} {:>8}\n",
            "microprotocol",
            "waits",
            "wait_ms",
            "p50_us",
            "p95_us",
            "p99_us",
            "calls",
            "svc_p50",
            "early"
        ));
        for p in &self.protocols {
            out.push_str(&format!(
                "{:<16} {:>6} {:>10.2} {:>9.1} {:>9.1} {:>9.1} {:>7} {:>9.1} {:>8}\n",
                p.name,
                p.waits,
                p.wait_total.as_secs_f64() * 1e3,
                p.wait_p50_us,
                p.wait_p95_us,
                p.wait_p99_us,
                p.handler_calls,
                p.service_p50_us,
                p.bound_releases + p.route_releases,
            ));
        }
        if !self.algos.is_empty() {
            out.push_str(&format!(
                "\n{:<12} {:>6} {:>6} {:>10} {:>9} {:>9} {:>9} {:>8}\n",
                "algorithm", "comps", "waits", "wait_ms", "p50_us", "p95_us", "p99_us", "early"
            ));
            for a in &self.algos {
                out.push_str(&format!(
                    "{:<12} {:>6} {:>6} {:>10.2} {:>9.1} {:>9.1} {:>9.1} {:>8}\n",
                    a.algo.label(),
                    a.computations,
                    a.waits,
                    a.wait_total.as_secs_f64() * 1e3,
                    a.wait_p50_us,
                    a.wait_p95_us,
                    a.wait_p99_us,
                    a.early_releases,
                ));
            }
        }
        out
    }

    /// Hand-emitted JSON (the workspace has no serde): an object with
    /// `protocols` and `algos` arrays.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"protocols\": [");
        for (i, p) in self.protocols.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"protocol\": {}, \"waits\": {}, \"wait_total_ms\": {:.3}, \
                 \"wait_p50_us\": {:.1}, \"wait_p95_us\": {:.1}, \"wait_p99_us\": {:.1}, \
                 \"handler_calls\": {}, \"service_p50_us\": {:.1}, \
                 \"bound_releases\": {}, \"route_releases\": {}}}",
                json_str(&p.name),
                p.waits,
                p.wait_total.as_secs_f64() * 1e3,
                p.wait_p50_us,
                p.wait_p95_us,
                p.wait_p99_us,
                p.handler_calls,
                p.service_p50_us,
                p.bound_releases,
                p.route_releases,
            ));
        }
        out.push_str("], \"algos\": [");
        for (i, a) in self.algos.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"algo\": {}, \"computations\": {}, \"waits\": {}, \
                 \"wait_total_ms\": {:.3}, \"wait_p50_us\": {:.1}, \"wait_p95_us\": {:.1}, \
                 \"wait_p99_us\": {:.1}, \"early_releases\": {}}}",
                json_str(a.algo.label()),
                a.computations,
                a.waits,
                a.wait_total.as_secs_f64() * 1e3,
                a.wait_p50_us,
                a.wait_p95_us,
                a.wait_p99_us,
                a.early_releases,
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Percentile of a sorted nanosecond series, in microseconds (nearest-rank).
///
/// Shared by [`ContentionProfile`] and external latency harnesses (the bench
/// crate's cluster fleet driver) so every reported pNN uses one definition.
/// The input must already be sorted ascending; an empty series yields `0.0`.
pub fn percentile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_ns.len() as f64).ceil() as usize).clamp(1, sorted_ns.len());
    sorted_ns[rank - 1] as f64 / 1e3
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

/// Builder for Chrome `trace_event` JSON covering one or more traced runs
/// ("processes"): load the output in `chrome://tracing` or
/// <https://ui.perfetto.dev>. One track (`tid`) per computation; admission
/// waits and handler executions become duration spans, spawn/release/
/// completion become instant markers.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    entries: Vec<String>,
}

impl ChromeTrace {
    /// An empty trace document.
    pub fn new() -> ChromeTrace {
        ChromeTrace::default()
    }

    /// Add a traced run as process `pid` named `name`. Events must come
    /// from a runtime over `stack` (names are resolved against it).
    pub fn add_process(&mut self, pid: u32, name: &str, events: &[TraceEvent], stack: &Stack) {
        self.entries.push(format!(
            "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \
             \"args\": {{\"name\": {}}}}}",
            json_str(name)
        ));
        let mut named: HashMap<CompId, ()> = HashMap::new();
        let mut site_named: HashMap<u16, ()> = HashMap::new();
        let mut name_site = |entries: &mut Vec<String>, site: u16| {
            site_named.entry(site).or_insert_with(|| {
                entries.push(format!(
                    "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {pid}, \
                     \"tid\": {}, \"args\": {{\"name\": {}}}}}",
                    site_tid(site),
                    json_str(&format!("site{site}"))
                ));
            });
        };
        for ev in events {
            let us = ev.t_ns as f64 / 1e3;
            match ev.kind {
                TraceKind::Spawn { comp, algo } => {
                    named.entry(comp).or_insert_with(|| {
                        self.entries.push(format!(
                            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {pid}, \
                             \"tid\": {comp}, \"args\": {{\"name\": {}}}}}",
                            json_str(&format!("k{comp} ({})", algo.label()))
                        ));
                    });
                    self.entries.push(format!(
                        "{{\"name\": {}, \"cat\": \"spawn\", \"ph\": \"i\", \"s\": \"t\", \
                         \"ts\": {us:.3}, \"pid\": {pid}, \"tid\": {comp}}}",
                        json_str(&format!("spawn ({})", algo.label()))
                    ));
                }
                TraceKind::WaitEnd {
                    comp,
                    protocol,
                    wait_ns,
                    blocker,
                } => {
                    let name = match blocker {
                        Some(b) => {
                            format!("wait {} (\u{2190} k{b})", stack.protocol_name(protocol))
                        }
                        None => format!("wait {}", stack.protocol_name(protocol)),
                    };
                    let args = match blocker {
                        Some(b) => format!("{{\"blocked_by\": \"k{b}\"}}"),
                        None => "{}".to_string(),
                    };
                    self.entries.push(format!(
                        "{{\"name\": {}, \"cat\": \"admission-wait\", \"ph\": \"X\", \
                         \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": {pid}, \"tid\": {comp}, \
                         \"args\": {args}}}",
                        json_str(&name),
                        (ev.t_ns.saturating_sub(wait_ns)) as f64 / 1e3,
                        wait_ns as f64 / 1e3,
                    ));
                }
                TraceKind::HandlerExit {
                    comp,
                    handler,
                    protocol,
                    service_ns,
                } => {
                    self.entries.push(format!(
                        "{{\"name\": {}, \"cat\": \"handler\", \"ph\": \"X\", \
                         \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": {pid}, \"tid\": {comp}}}",
                        json_str(&format!(
                            "{}.{}",
                            stack.protocol_name(protocol),
                            stack.handler_name(handler)
                        )),
                        (ev.t_ns.saturating_sub(service_ns)) as f64 / 1e3,
                        service_ns as f64 / 1e3,
                    ));
                }
                TraceKind::EarlyRelease {
                    comp,
                    protocol,
                    reason,
                } => {
                    let why = match reason {
                        ReleaseReason::BoundVisit => "bound",
                        ReleaseReason::RouteUnreachable => "route",
                    };
                    self.entries.push(format!(
                        "{{\"name\": {}, \"cat\": \"early-release\", \"ph\": \"i\", \
                         \"s\": \"t\", \"ts\": {us:.3}, \"pid\": {pid}, \"tid\": {comp}}}",
                        json_str(&format!(
                            "release {} ({why})",
                            stack.protocol_name(protocol)
                        ))
                    ));
                }
                TraceKind::Complete { comp } => {
                    self.entries.push(format!(
                        "{{\"name\": \"complete\", \"cat\": \"complete\", \"ph\": \"i\", \
                         \"s\": \"t\", \"ts\": {us:.3}, \"pid\": {pid}, \"tid\": {comp}}}"
                    ));
                }
                TraceKind::OccValidate { tx, cells } => {
                    self.entries.push(format!(
                        "{{\"name\": {}, \"cat\": \"occ\", \"ph\": \"i\", \"s\": \"t\", \
                         \"ts\": {us:.3}, \"pid\": {pid}, \"tid\": {}}}",
                        json_str(&format!("validate ({cells} cells)")),
                        occ_tid(tx)
                    ));
                }
                TraceKind::OccCommit { tx, retries } => {
                    self.entries.push(format!(
                        "{{\"name\": {}, \"cat\": \"occ\", \"ph\": \"i\", \"s\": \"t\", \
                         \"ts\": {us:.3}, \"pid\": {pid}, \"tid\": {}}}",
                        json_str(&format!("commit (after {retries} retries)")),
                        occ_tid(tx)
                    ));
                }
                TraceKind::OccAbort { tx, attempt } => {
                    self.entries.push(format!(
                        "{{\"name\": {}, \"cat\": \"occ\", \"ph\": \"i\", \"s\": \"t\", \
                         \"ts\": {us:.3}, \"pid\": {pid}, \"tid\": {}}}",
                        json_str(&format!("abort attempt {attempt}")),
                        occ_tid(tx)
                    ));
                }
                TraceKind::ClientSubmit { site, op } => {
                    name_site(&mut self.entries, site);
                    self.cluster_instant(
                        pid,
                        site,
                        us,
                        "cluster",
                        &format!("submit op {op}@s{site}"),
                    );
                    self.flow(pid, site, us, "s", site, op);
                }
                TraceKind::CtxSend {
                    from,
                    to,
                    origin,
                    op,
                    hop,
                } => {
                    name_site(&mut self.entries, from);
                    self.cluster_instant(
                        pid,
                        from,
                        us,
                        "cluster",
                        &format!("send\u{2192}s{to} op {op}@s{origin} hop {hop}"),
                    );
                    self.flow(pid, from, us, "t", origin, op);
                }
                TraceKind::CtxRecv {
                    site,
                    origin,
                    op,
                    hop,
                } => {
                    name_site(&mut self.entries, site);
                    self.cluster_instant(
                        pid,
                        site,
                        us,
                        "cluster",
                        &format!("recv op {op}@s{origin} hop {hop}"),
                    );
                    self.flow(pid, site, us, "t", origin, op);
                }
                TraceKind::AbDeliver {
                    site,
                    origin,
                    op,
                    lag_ns,
                } => {
                    name_site(&mut self.entries, site);
                    self.cluster_instant(
                        pid,
                        site,
                        us,
                        "cluster",
                        &format!(
                            "adeliver op {op}@s{origin} ({:.0}\u{b5}s)",
                            lag_ns as f64 / 1e3
                        ),
                    );
                    self.flow(pid, site, us, "t", origin, op);
                }
                TraceKind::KvApply { site, origin, op } => {
                    name_site(&mut self.entries, site);
                    self.cluster_instant(
                        pid,
                        site,
                        us,
                        "cluster",
                        &format!("kv apply op {op}@s{origin}"),
                    );
                    self.flow(pid, site, us, "f", origin, op);
                }
                TraceKind::Retransmit { site, to, attempts } => {
                    name_site(&mut self.entries, site);
                    self.cluster_instant(
                        pid,
                        site,
                        us,
                        "retransmit",
                        &format!("retransmit\u{2192}s{to} (attempt {attempts})"),
                    );
                }
                TraceKind::ClusterViewChange {
                    site,
                    view_id,
                    members,
                } => {
                    name_site(&mut self.entries, site);
                    self.cluster_instant(
                        pid,
                        site,
                        us,
                        "view-change",
                        &format!("view {view_id} ({members} members)"),
                    );
                }
                TraceKind::WaitBegin { .. } | TraceKind::HandlerEnter { .. } => {
                    // Folded into the matching WaitEnd / HandlerExit span.
                }
            }
        }
    }

    /// An instant marker on a site track.
    fn cluster_instant(&mut self, pid: u32, site: u16, us: f64, cat: &str, name: &str) {
        self.entries.push(format!(
            "{{\"name\": {}, \"cat\": \"{cat}\", \"ph\": \"i\", \"s\": \"t\", \
             \"ts\": {us:.3}, \"pid\": {pid}, \"tid\": {}}}",
            json_str(name),
            site_tid(site)
        ));
    }

    /// A Perfetto flow event (`ph` ∈ {s, t, f}) linking every marker of one
    /// cluster operation `(origin, op)` into a single causal arrow chain.
    fn flow(&mut self, pid: u32, site: u16, us: f64, ph: &str, origin: u16, op: u64) {
        let bp = if ph == "f" { ", \"bp\": \"e\"" } else { "" };
        self.entries.push(format!(
            "{{\"name\": {}, \"cat\": \"causal\", \"ph\": \"{ph}\", \"id\": {}, \
             \"ts\": {us:.3}, \"pid\": {pid}, \"tid\": {}{bp}}}",
            json_str(&format!("op {op}@s{origin}")),
            flow_id(origin, op),
            site_tid(site)
        ));
    }

    /// Render the `{"traceEvents": [...]}` document.
    pub fn render(&self) -> String {
        let mut out = String::from("{\"traceEvents\": [\n");
        out.push_str(&self.entries.join(",\n"));
        out.push_str("\n], \"displayTimeUnit\": \"ms\"}\n");
        out
    }
}

/// OCC transactions get their own track block, clear of computation ids.
fn occ_tid(tx: u64) -> u64 {
    1_000_000 + tx
}

/// Cluster sites get their own track block, clear of computation and OCC
/// ids.
fn site_tid(site: u16) -> u64 {
    500_000 + site as u64
}

/// Stable flow id for one cluster operation: origin site in the top 16 bits,
/// operation id below.
fn flow_id(origin: u16, op: u64) -> u64 {
    ((origin as u64) << 48) | (op & 0xFFFF_FFFF_FFFF)
}

/// Export one traced run as a single-process Chrome `trace_event` JSON
/// document — the one-call version of [`ChromeTrace`].
pub fn chrome_trace(events: &[TraceEvent], stack: &Stack) -> String {
    let mut b = ChromeTrace::new();
    b.add_process(1, "samoa", events, stack);
    b.render()
}

/// Human-readable digest of a drained stream: event counts and the full
/// contention profile.
pub fn render_summary(events: &[TraceEvent], stack: &Stack) -> String {
    let mut spawns = 0u64;
    let mut completes = 0u64;
    let mut waits = 0u64;
    let mut calls = 0u64;
    let mut releases = 0u64;
    let mut occ = 0u64;
    for ev in events {
        match ev.kind {
            TraceKind::Spawn { .. } => spawns += 1,
            TraceKind::Complete { .. } => completes += 1,
            TraceKind::WaitEnd { .. } => waits += 1,
            TraceKind::HandlerExit { .. } => calls += 1,
            TraceKind::EarlyRelease { .. } => releases += 1,
            TraceKind::OccValidate { .. }
            | TraceKind::OccCommit { .. }
            | TraceKind::OccAbort { .. } => occ += 1,
            _ => {}
        }
    }
    let span_ms = events.last().map_or(0.0, |e| e.t_ns as f64 / 1e6);
    let mut out = format!(
        "{} events over {span_ms:.2}ms: {spawns} spawns, {completes} completions, \
         {calls} handler calls, {waits} admission waits, {releases} early releases",
        events.len()
    );
    if occ > 0 {
        out.push_str(&format!(", {occ} occ events"));
    }
    out.push_str("\n\n");
    out.push_str(&ContentionProfile::from_events(events, stack).render());
    out
}

/// Quote and escape a JSON string (local copy; core does not depend on the
/// bench crate's report module).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::StackBuilder;

    fn ev(t_ns: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent { t_ns, kind }
    }

    fn two_proto_stack() -> Stack {
        let mut b = StackBuilder::new();
        let p = b.protocol("P");
        let q = b.protocol("Q");
        let e1 = b.event("E1");
        let e2 = b.event("E2");
        b.bind(e1, p, "hp", |_, _| Ok(()));
        b.bind(e2, q, "hq", |_, _| Ok(()));
        b.build()
    }

    #[test]
    fn percentiles_nearest_rank() {
        let v: Vec<u64> = (1..=100).map(|i| i * 1000).collect();
        assert_eq!(percentile_us(&v, 0.50), 50.0);
        assert_eq!(percentile_us(&v, 0.95), 95.0);
        assert_eq!(percentile_us(&v, 0.99), 99.0);
        assert_eq!(percentile_us(&[], 0.5), 0.0);
        assert_eq!(percentile_us(&[7000], 0.99), 7.0);
    }

    #[test]
    fn buffer_flushes_batches_and_drains_in_time_order() {
        let buf = TraceBuffer::with_capacity(2, 3);
        for t in [5u64, 1, 4, 2, 3, 6, 0] {
            buf.event(ev(t, TraceKind::Complete { comp: t }));
        }
        let drained = buf.drain();
        let ts: Vec<u64> = drained.iter().map(|e| e.t_ns).collect();
        assert_eq!(ts, vec![0, 1, 2, 3, 4, 5, 6]);
        // A second drain is empty: everything was taken.
        assert!(buf.drain().is_empty());
    }

    #[test]
    fn profile_aggregates_waits_and_services() {
        let stack = two_proto_stack();
        let p = ProtocolId(0);
        let q = ProtocolId(1);
        let events = vec![
            ev(
                0,
                TraceKind::Spawn {
                    comp: 1,
                    algo: Algo::Basic,
                },
            ),
            ev(
                1,
                TraceKind::Spawn {
                    comp: 2,
                    algo: Algo::Bound,
                },
            ),
            ev(
                10_000,
                TraceKind::WaitEnd {
                    comp: 2,
                    protocol: p,
                    wait_ns: 8_000,
                    blocker: Some(1),
                },
            ),
            ev(
                12_000,
                TraceKind::HandlerExit {
                    comp: 2,
                    handler: HandlerId(0),
                    protocol: p,
                    service_ns: 2_000,
                },
            ),
            ev(
                13_000,
                TraceKind::EarlyRelease {
                    comp: 2,
                    protocol: p,
                    reason: ReleaseReason::BoundVisit,
                },
            ),
            ev(
                20_000,
                TraceKind::WaitEnd {
                    comp: 2,
                    protocol: q,
                    wait_ns: 4_000,
                    blocker: None,
                },
            ),
            ev(21_000, TraceKind::Complete { comp: 2 }),
        ];
        let prof = ContentionProfile::from_events(&events, &stack);
        let pp = prof.protocol("P").unwrap();
        assert_eq!(pp.waits, 1);
        assert_eq!(pp.wait_p50_us, 8.0);
        assert_eq!(pp.handler_calls, 1);
        assert_eq!(pp.service_p50_us, 2.0);
        assert_eq!(pp.bound_releases, 1);
        let qq = prof.protocol("Q").unwrap();
        assert_eq!(qq.waits, 1);
        assert_eq!(qq.wait_p50_us, 4.0);
        // Per-algo rollup: both waits belong to the Bound computation.
        let bound = prof.algos.iter().find(|a| a.algo == Algo::Bound).unwrap();
        assert_eq!(bound.waits, 2);
        assert_eq!(bound.early_releases, 1);
        let basic = prof.algos.iter().find(|a| a.algo == Algo::Basic).unwrap();
        assert_eq!(basic.waits, 0);
        // JSON contains the percentile fields.
        let j = prof.to_json();
        assert!(j.contains("\"wait_p95_us\""), "{j}");
    }

    #[test]
    fn chrome_trace_has_spans_and_metadata() {
        let stack = two_proto_stack();
        let events = vec![
            ev(
                0,
                TraceKind::Spawn {
                    comp: 1,
                    algo: Algo::Route,
                },
            ),
            ev(
                9_000,
                TraceKind::WaitEnd {
                    comp: 1,
                    protocol: ProtocolId(0),
                    wait_ns: 5_000,
                    blocker: Some(7),
                },
            ),
            ev(
                11_500,
                TraceKind::HandlerExit {
                    comp: 1,
                    handler: HandlerId(0),
                    protocol: ProtocolId(0),
                    service_ns: 2_500,
                },
            ),
            ev(12_000, TraceKind::Complete { comp: 1 }),
        ];
        let json = chrome_trace(&events, &stack);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"cat\": \"admission-wait\""));
        assert!(json.contains("blocked_by"));
        assert!(json.contains("P.hp"));
        assert!(json.contains("thread_name"));
    }

    #[test]
    fn wait_for_graph_renders_and_detects_cycles() {
        let stack = two_proto_stack();
        let acyclic = WaitForGraph {
            edges: vec![
                WaitEdge {
                    waiter: 3,
                    protocol: ProtocolId(0),
                    blocker: Some(2),
                },
                WaitEdge {
                    waiter: 2,
                    protocol: ProtocolId(1),
                    blocker: Some(1),
                },
            ],
        };
        assert!(!acyclic.has_cycle());
        let r = acyclic.render(&stack);
        assert!(r.contains("k3 waits on P held by k2"), "{r}");
        let cyclic = WaitForGraph {
            edges: vec![
                WaitEdge {
                    waiter: 1,
                    protocol: ProtocolId(0),
                    blocker: Some(2),
                },
                WaitEdge {
                    waiter: 2,
                    protocol: ProtocolId(1),
                    blocker: Some(1),
                },
            ],
        };
        assert!(cyclic.has_cycle());
        assert!(WaitForGraph::default().is_empty());
    }

    #[test]
    fn registry_names_the_oldest_unreleased_predecessor() {
        let buf = TraceBuffer::new();
        let ctl = TraceCtl::new(buf, 2);
        // k1 holds P@1, k2 holds P@2.
        ctl.on_spawn(1, [(0usize, 1u64)].into_iter());
        ctl.on_spawn(2, [(0usize, 2u64)].into_iter());
        // k3 (pv 3) blocks while lv = 0: blocked by k1 (oldest).
        assert_eq!(ctl.wait_begin(3, 0, 3, 0), Some(1));
        ctl.wait_end(3, 0);
        // After k1 completes (lv -> 1), the blocker is k2.
        ctl.on_complete(1);
        assert_eq!(ctl.wait_begin(3, 0, 3, 1), Some(2));
        assert_eq!(ctl.snapshot_waits().len(), 1);
        // Early release of P by k2 clears its hold: no blocker left.
        ctl.wait_end(3, 0);
        ctl.on_release(2, 0);
        assert_eq!(ctl.wait_begin(3, 0, 3, 1), None);
        ctl.wait_end(3, 0);
        assert!(ctl.snapshot_waits().is_empty());
    }

    #[test]
    fn summary_counts_events() {
        let stack = two_proto_stack();
        let events = vec![
            ev(
                0,
                TraceKind::Spawn {
                    comp: 1,
                    algo: Algo::Basic,
                },
            ),
            ev(5, TraceKind::OccCommit { tx: 1, retries: 0 }),
            ev(9, TraceKind::Complete { comp: 1 }),
        ];
        let s = render_summary(&events, &stack);
        assert!(s.contains("1 spawns"), "{s}");
        assert!(s.contains("1 occ events"), "{s}");
    }
}
