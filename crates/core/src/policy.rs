//! Concurrency-control policies and per-computation specifications.
//!
//! The paper's three versioning algorithms (`VCAbasic`, `VCAbound`,
//! `VCAroute`, §5) plus the comparators used by the evaluation:
//!
//! * [`Policy::Serial`] — Appia-style: each computation declares *all*
//!   microprotocols, so computations execute one after another.
//! * [`Policy::Unsync`] — Cactus-style with no programmer-supplied locks:
//!   no admission control at all; used to demonstrate isolation violations.
//! * [`Policy::TwoPhase`] — conservative two-phase locking over the declared
//!   set, the classical algorithm the paper's Related Work compares against.
//!
//! All versioning computations share one `(gv, lv)` counter machinery and
//! can safely run concurrently with each other (a `VCAbasic` computation is
//! a `VCAbound` computation with every bound = 1 that releases only at
//! completion); `TwoPhase` uses a separate lock table and must not be mixed
//! with versioning computations on overlapping microprotocols.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{Condvar, Mutex};

use crate::graph::RouteState;
use crate::protocol::ProtocolId;

/// The concurrency-control algorithm a computation (or a whole experiment)
/// runs under. Mainly a label for benches and tables; the runtime picks the
/// algorithm per `isolated*` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Appia baseline: fully serial computations.
    Serial,
    /// Cactus-without-locks baseline: no isolation at all.
    Unsync,
    /// The basic version-counting algorithm (paper §5.1).
    VcaBasic,
    /// Version counting with least upper bounds (paper §5.2).
    VcaBound,
    /// Version counting with a routing pattern (paper §5.3).
    VcaRoute,
    /// Conservative two-phase locking comparator.
    TwoPhase,
}

impl Policy {
    /// All policies, in the order the experiment tables print them.
    pub const ALL: [Policy; 6] = [
        Policy::Unsync,
        Policy::Serial,
        Policy::TwoPhase,
        Policy::VcaBasic,
        Policy::VcaBound,
        Policy::VcaRoute,
    ];

    /// Does this policy guarantee the isolation property?
    pub fn isolating(self) -> bool {
        !matches!(self, Policy::Unsync)
    }

    /// The kind of per-microprotocol cell this policy contends on, if any
    /// — what the static conflict analysis
    /// ([`ConflictMatrix`](crate::analysis::ConflictMatrix)) uses to decide
    /// which handler pairs can meet on the same cell.
    pub fn cell(self) -> Option<CellKind> {
        match self {
            Policy::Unsync => None,
            Policy::Serial | Policy::VcaBasic | Policy::VcaBound | Policy::VcaRoute => {
                Some(CellKind::Version)
            }
            Policy::TwoPhase => Some(CellKind::Lock),
        }
    }
}

/// The kind of per-microprotocol synchronisation cell a [`Policy`]'s
/// admission control waits on. Versioning policies share one `(gv, lv)`
/// counter pair per microprotocol; the two-phase comparator uses a separate
/// lock table (and the two must not be mixed on overlapping
/// microprotocols).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// A `(gv_p, lv_p)` version-counter pair (Rules 1–4).
    Version,
    /// A slot of the two-phase-locking lock table.
    Lock,
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Policy::Serial => "serial",
            Policy::Unsync => "unsync",
            Policy::VcaBasic => "vca-basic",
            Policy::VcaBound => "vca-bound",
            Policy::VcaRoute => "vca-route",
            Policy::TwoPhase => "two-phase",
        };
        f.write_str(s)
    }
}

/// Which admission/completion rules a spawned computation follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CompMode {
    Unsync,
    Basic,
    Bound,
    Route,
    Locked,
}

/// How a computation may access a declared microprotocol (paper §7 future
/// work: "different types of handlers (read-only, read-and-write) and
/// several levels of isolation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AccessMode {
    /// Full access: the computation serialises with every other computation
    /// on this microprotocol (the paper's original semantics).
    #[default]
    Write,
    /// Read-only access: the computation may only call this microprotocol's
    /// read-only handlers; read-only computations of the same epoch share
    /// the microprotocol, serialising only against writers.
    Read,
}

/// Private version bookkeeping for one declared microprotocol (`pv[p]_k`,
/// `bound[p]_k`, and the number of visits consumed so far).
#[derive(Debug)]
pub(crate) struct PvEntry {
    pub(crate) pid: ProtocolId,
    /// The private version this computation obtained in Rule 1 (for readers:
    /// the snapshot epoch — `gv_p` at spawn, without incrementing).
    pub(crate) pv: u64,
    /// Declared least upper bound on visits (1 for basic/route).
    pub(crate) bound: u64,
    /// Visits consumed; admission reserves before calling so that concurrent
    /// threads of the same computation cannot overrun the bound.
    pub(crate) used: AtomicU64,
    /// Declared access mode.
    pub(crate) mode: AccessMode,
}

/// The resolved specification of a computation: its mode plus the version
/// snapshot produced by Rule 1 (and the routing state for `VCAroute`).
pub(crate) struct CompSpec {
    pub(crate) mode: CompMode,
    /// Sorted by `pid` for binary search. Empty for `Unsync`.
    pub(crate) entries: Vec<PvEntry>,
    pub(crate) route: Option<Mutex<RouteState>>,
}

impl CompSpec {
    pub(crate) fn entry(&self, pid: ProtocolId) -> Option<&PvEntry> {
        self.entries
            .binary_search_by_key(&pid, |e| e.pid)
            .ok()
            .map(|i| &self.entries[i])
    }
}

impl fmt::Debug for CompSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompSpec")
            .field("mode", &self.mode)
            .field("entries", &self.entries)
            .finish_non_exhaustive()
    }
}

/// One slot of the two-phase-locking lock table: a blocking binary lock
/// whose guard can be released from a different thread than the one that
/// acquired it (a computation's completion may run on any of its worker
/// threads).
///
/// Like [`VersionCell`](crate::version), the uncontended paths are pure
/// atomics — acquire is one CAS, release one store — and a thread parks
/// only after the CAS actually fails; the release side takes the park lock
/// only when the waiter count says someone is parked. Same Dekker-style
/// lost-wakeup argument over the `SeqCst` order as the version cell: the
/// waiter registers in `waiters` before retrying the CAS, the releaser
/// clears `held` before reading `waiters`.
#[derive(Debug, Default)]
pub(crate) struct LockCell {
    /// 0 = free, 1 = held.
    held: AtomicU64,
    /// Threads inside the parking protocol (registered under `park`).
    waiters: AtomicU64,
    park: Mutex<()>,
    cv: Condvar,
}

impl LockCell {
    pub(crate) fn new() -> Self {
        LockCell::default()
    }

    /// Full blocking acquire; the runtime drives the two phases separately
    /// (the parked phase is what its blocked-time accounting brackets).
    #[cfg(test)]
    pub(crate) fn acquire(&self) {
        if self.spin_acquire() {
            return;
        }
        self.park_acquire();
    }

    /// The bounded non-parking prefix of [`Self::acquire`]: the one-CAS
    /// probe, then busy probes, then yielding probes (same window as
    /// `VersionCell::spin_until`). `false` means the caller should park.
    pub(crate) fn spin_acquire(&self) -> bool {
        if self.try_acquire() {
            return true;
        }
        for _ in 0..crate::version::SPIN_LIMIT {
            std::hint::spin_loop();
            if self.try_acquire() {
                return true;
            }
        }
        let deadline = std::time::Instant::now() + crate::version::YIELD_WINDOW;
        loop {
            for _ in 0..crate::version::YIELD_CHECK {
                std::thread::yield_now();
                if self.try_acquire() {
                    return true;
                }
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
        }
    }

    /// The parking tail of [`Self::acquire`].
    pub(crate) fn park_acquire(&self) {
        let mut guard = self.park.lock();
        self.waiters.fetch_add(1, Ordering::SeqCst);
        while !self.try_acquire() {
            crate::version::note_park();
            self.cv.wait(&mut guard);
        }
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }

    /// Non-blocking acquire — one CAS. Also the cooperative-scheduling
    /// path's probe.
    pub(crate) fn try_acquire(&self) -> bool {
        self.held
            .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    pub(crate) fn release(&self) {
        let prev = self.held.swap(0, Ordering::SeqCst);
        debug_assert!(prev == 1, "releasing a lock that is not held");
        if self.waiters.load(Ordering::SeqCst) > 0 {
            crate::version::note_park_notify();
            let _guard = self.park.lock();
            self.cv.notify_all();
        }
    }
}

/// Remaining-budget view used by tests and diagnostics.
impl PvEntry {
    pub(crate) fn reserve(&self) -> bool {
        // fetch_add returns the previous value; previous < bound means this
        // reservation is within budget.
        self.used.fetch_add(1, Ordering::AcqRel) < self.bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn policy_display_names() {
        assert_eq!(Policy::VcaBasic.to_string(), "vca-basic");
        assert_eq!(Policy::Serial.to_string(), "serial");
        assert!(Policy::Serial.isolating());
        assert!(!Policy::Unsync.isolating());
        assert_eq!(Policy::ALL.len(), 6);
    }

    #[test]
    fn policy_cell_kinds() {
        assert_eq!(Policy::Unsync.cell(), None);
        assert_eq!(Policy::TwoPhase.cell(), Some(CellKind::Lock));
        for p in [
            Policy::Serial,
            Policy::VcaBasic,
            Policy::VcaBound,
            Policy::VcaRoute,
        ] {
            assert_eq!(p.cell(), Some(CellKind::Version), "{p}");
        }
    }

    #[test]
    fn pv_entry_reserve_respects_bound() {
        let e = PvEntry {
            pid: ProtocolId(0),
            pv: 3,
            bound: 2,
            used: AtomicU64::new(0),
            mode: AccessMode::Write,
        };
        assert!(e.reserve());
        assert!(e.reserve());
        assert!(!e.reserve());
        assert!(!e.reserve());
    }

    #[test]
    fn lock_cell_mutual_exclusion() {
        let cell = Arc::new(LockCell::new());
        cell.acquire();
        let c2 = Arc::clone(&cell);
        let t = std::thread::spawn(move || {
            c2.acquire();
            c2.release();
            true
        });
        std::thread::sleep(Duration::from_millis(10));
        assert!(!t.is_finished(), "second acquire should block");
        cell.release();
        assert!(t.join().unwrap());
    }

    #[test]
    fn lock_cell_try_acquire() {
        let cell = LockCell::new();
        assert!(cell.try_acquire());
        assert!(!cell.try_acquire());
        cell.release();
        assert!(cell.try_acquire());
        cell.release();
    }

    #[test]
    fn lock_cell_cross_thread_release() {
        let cell = Arc::new(LockCell::new());
        cell.acquire();
        let c2 = Arc::clone(&cell);
        // Release from another thread, as completion may do.
        std::thread::spawn(move || c2.release()).join().unwrap();
        cell.acquire();
        cell.release();
    }

    #[test]
    fn comp_spec_entry_lookup() {
        let spec = CompSpec {
            mode: CompMode::Basic,
            entries: vec![
                PvEntry {
                    pid: ProtocolId(1),
                    pv: 1,
                    bound: 1,
                    used: AtomicU64::new(0),
                    mode: AccessMode::Write,
                },
                PvEntry {
                    pid: ProtocolId(4),
                    pv: 2,
                    bound: 1,
                    used: AtomicU64::new(0),
                    mode: AccessMode::Write,
                },
            ],
            route: None,
        };
        assert_eq!(spec.entry(ProtocolId(4)).unwrap().pv, 2);
        assert!(spec.entry(ProtocolId(2)).is_none());
    }
}
